"""Churn demo: servers crash mid-run, clients fail over to replicas.

Run with::

    python examples/churn_failover.py

Builds the standard federated scenario twice — each store as a single
server, then as a two-replica group — and subjects both to the same seeded
Poisson crash/rejoin schedule while a fleet issues traffic.  The printed
report shows what the paper's long-lived-registrant assumption hides: with
one replica, TTL-stale caches keep sending clients to dead servers and
requests fail; with two, the same churn costs only a measured failover
latency.
"""

from __future__ import annotations

from repro.churn import ChurnSchedule, RetryPolicy
from repro.core.config import FederationConfig
from repro.simulation.queueing import ServiceTimeModel
from repro.workload import WorkloadConfig, WorkloadEngine
from repro.worldgen.scenario import build_scenario

STORE_COUNT = 2
STEPS = 10
STEP_SECONDS = 20.0


def run(replicas: int):
    config = FederationConfig(
        device_discovery_cache_ttl_seconds=120.0,
        client_tile_cache_entries=256,
        service_times=ServiceTimeModel(default_ms=2.0),
        retry_policy=RetryPolicy.utilization_aware(),
    )
    scenario = build_scenario(
        store_count=STORE_COUNT, city_rows=5, city_cols=5, config=config,
        seed=9, store_replicas=replicas,
    )
    eligible = [
        server_id
        for index in range(STORE_COUNT)
        for server_id in scenario.store_replica_ids(index)
    ]
    schedule = ChurnSchedule.poisson(
        eligible,
        rate_per_minute=3.0,
        horizon_seconds=STEPS * STEP_SECONDS,
        downtime_seconds=45.0,
        seed=5,
    )
    engine = WorkloadEngine(
        scenario,
        WorkloadConfig(
            clients=30, steps=STEPS, seed=1, step_seconds=STEP_SECONDS,
            churn=schedule,
        ),
    )
    return engine.run()


def main() -> None:
    for replicas in (1, 2):
        report = run(replicas)
        availability = report.availability()
        print(f"=== {replicas} replica(s) per store, 3 crashes/min ===")
        print(f"requests: {report.requests + report.errors}, "
              f"churn events applied: {report.churn_events_applied}")
        print(f"failed-request rate: {availability['failed_request_rate']:.2%}  "
              f"(chains exhausted: {int(availability['failed_chains'])})")
        print(f"stale attempts on dead servers: {int(availability['stale_attempts'])}")
        if availability["failovers"]:
            print(f"failovers: {int(availability['failovers'])}  "
                  f"latency p50={availability['failover_p50_ms']:.0f}ms "
                  f"p95={availability['failover_p95_ms']:.0f}ms")
        if report.rediscoveries:
            print(f"crashed servers rediscovered after rejoin: {report.rediscoveries} "
                  f"(mean {availability['rediscovery_seconds_mean']:.0f}s)")
        print()


if __name__ == "__main__":
    main()
