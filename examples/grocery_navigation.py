"""The Section 2 walkthrough: navigate a user to a product on a store shelf.

Run with::

    python examples/grocery_navigation.py

The user stands on the sidewalk, searches for "wasabi seaweed", and the
application (a) discovers the grocery store's own map server, (b) finds the
shelf, (c) computes a route whose outdoor leg comes from the city map and
whose indoor leg comes from the store's map, and (d) tracks the user along
the route — with GNSS outdoors and the store's beacon/image localization
indoors — printing the live position error at each step.
"""

from __future__ import annotations

import random

from repro.localization.imu import DeadReckoningTracker, MotionUpdate
from repro.worldgen.scenario import build_scenario, outdoor_point_near


def main() -> None:
    scenario = build_scenario(store_count=1, include_campus=False, seed=13)
    client = scenario.federation.client()
    store = scenario.stores[0]
    rng = random.Random(3)

    user_location = outdoor_point_near(scenario, store_index=0, distance_meters=180.0)
    print(f"User is standing at {user_location} (on the street)")

    # ------------------------------------------------------------------
    # 1. Search for the product.
    # ------------------------------------------------------------------
    hits = client.search("wasabi seaweed", near=user_location, radius_meters=400.0)
    if not hits.results:
        print("No store nearby stocks the product.")
        return
    target = hits.results[0]
    print(f"Found: {target.label!r} stocked by {target.map_name}")
    print(f"  ({hits.servers_consulted} map servers consulted, {hits.dns_lookups} DNS lookups)")

    # ------------------------------------------------------------------
    # 2. Route from the sidewalk to the shelf.
    # ------------------------------------------------------------------
    route = client.route(user_location, target.location)
    print("\nRoute:")
    print(f"  total length : {route.length_meters:.1f} m")
    for leg in route.route.legs:
        print(f"  leg from {leg.server_id:25s} {leg.length_meters():7.1f} m")
    print(f"  hand-over gap (connectors): {route.route.connector_meters:.1f} m")

    # ------------------------------------------------------------------
    # 3. Walk the route, localizing continuously.
    # ------------------------------------------------------------------
    print("\nWalking the route:")
    points = route.route.points
    tracker = DeadReckoningTracker(anchor=user_location, anchor_accuracy_meters=8.0, drift_rate=0.08)
    inside_store = False

    for index in range(1, len(points)):
        previous, current = points[index - 1], points[index]
        step = previous.distance_to(current)
        if step <= 0.01:
            continue
        tracker.apply(MotionUpdate(previous.initial_bearing_to(current), step))

        # Decide which cues the device can sense at this point.
        if store.map_data.covers_point(current):
            inside_store = True
        if inside_store:
            local = store.geographic_to_local(current)
            cues = store.sense_cues(local, rng, gnss_error_meters=18.0)
        else:
            from repro.localization.cues import CueBundle, GnssCue

            noisy = current.destination(rng.uniform(0, 360), abs(rng.gauss(0.0, 8.0)))
            cues = CueBundle(gnss=GnssCue(noisy, accuracy_meters=10.0))

        fix = client.localize(current, cues, tracker=tracker)
        if fix.best is None:
            continue
        error = fix.location.distance_to(current)
        tracker.re_anchor(fix.location, fix.accuracy_meters or 5.0)
        where = "indoors " if inside_store else "outdoors"
        print(
            f"  step {index:2d} [{where}] fix from {fix.best.result.server_id:22s} "
            f"({fix.best.result.cue_type.value:8s}) error {error:5.1f} m"
        )

    print("\nArrived at the shelf.")
    print(f"Network messages for the whole task: {client.network_messages}")


if __name__ == "__main__":
    main()
