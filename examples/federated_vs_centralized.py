"""Compare the federated architecture (Figure 2) against the centralized one (Figure 1).

Run with::

    python examples/federated_vs_centralized.py

For the same synthetic world the script measures, side by side:

* search recall for indoor products (the centralized provider never got the
  stores' private maps);
* indoor localization error (GNSS-only vs the stores' cue-based services);
* end-to-end request latency and message counts for the outdoor services
  (the federation pays a discovery overhead, amortised by DNS caching).
"""

from __future__ import annotations

import random

from repro.simulation.metrics import Summary
from repro.worldgen.scenario import build_scenario


def main() -> None:
    scenario = build_scenario(store_count=3, include_campus=False, seed=17)
    federation = scenario.federation
    centralized = scenario.centralized
    client = federation.client()
    rng = random.Random(5)

    # ------------------------------------------------------------------
    # Indoor product search recall.
    # ------------------------------------------------------------------
    total_queries = 0
    federated_hits = 0
    centralized_hits = 0
    for store in scenario.stores:
        user_location = store.entrance.destination(180.0, 80.0)
        for product in store.products[:10]:
            total_queries += 1
            fed = client.search(product.name, near=user_location, radius_meters=300.0)
            if any(product.name in r.label or product.name in (r.tag_dict().get("product") or "") for r in fed.results):
                federated_hits += 1
            central = centralized.search(product.name, near=user_location, radius_meters=300.0)
            if central:
                centralized_hits += 1

    print("=== Indoor product search recall ===")
    print(f"  queries               : {total_queries}")
    print(f"  federated recall      : {federated_hits / total_queries:.2f}")
    print(f"  centralized recall    : {centralized_hits / total_queries:.2f}   (indoor maps were never shared)")

    # ------------------------------------------------------------------
    # Indoor localization error.
    # ------------------------------------------------------------------
    federated_error = Summary("federated")
    gnss_error = Summary("gnss")
    store = scenario.stores[0]
    for _ in range(25):
        true_local = store.random_interior_point(rng)
        true_geo = store.local_to_geographic(true_local)
        cues = store.sense_cues(true_local, rng)
        fix = client.localize(true_geo, cues)
        if fix.best is not None:
            federated_error.observe(fix.location.distance_to(true_geo))
        central_fix = centralized.localize(cues)
        if central_fix is not None:
            gnss_error.observe(central_fix.location.distance_to(true_geo))

    print("\n=== Indoor localization error (meters) ===")
    print(f"  federated (store map servers): mean {federated_error.mean:.2f}  max {federated_error.maximum:.2f}")
    print(f"  centralized (GNSS only)      : mean {gnss_error.mean:.2f}  max {gnss_error.maximum:.2f}")

    # ------------------------------------------------------------------
    # Outdoor service cost: latency and messages per request.
    # ------------------------------------------------------------------
    request_count = 30
    origin_destinations = [
        (scenario.city.random_street_point(rng), scenario.city.random_street_point(rng))
        for _ in range(request_count)
    ]

    federation.reset_network_stats()
    for origin, destination in origin_destinations:
        client.route(origin, destination)
    federated_messages = federation.network.stats.messages_sent
    federated_latency = federation.network.stats.total_latency_ms

    federation.reset_network_stats()
    for origin, destination in origin_destinations:
        centralized.route(origin, destination)
    central_messages = federation.network.stats.messages_sent
    central_latency = federation.network.stats.total_latency_ms

    print("\n=== Outdoor routing: cost per request ===")
    print(f"  federated  : {federated_messages / request_count:5.1f} messages, {federated_latency / request_count:6.1f} ms")
    print(f"  centralized: {central_messages / request_count:5.1f} messages, {central_latency / request_count:6.1f} ms")
    print("  (the federated overhead is DNS discovery; repeated queries hit the resolver cache)")


if __name__ == "__main__":
    main()
