"""Campus privacy example: the Section 5.3 fine-grained access-control model.

Run with::

    python examples/campus_privacy.py

A university deploys a map server for its campus.  Its policy is exactly the
one the paper sketches: anyone may view tiles, only people with a campus
email may search the fine-grained (room-level) data, and only the official
campus navigation application may use the localization service.  The example
issues the same requests as three different principals and shows what each
one gets.
"""

from __future__ import annotations

from repro.core.federation import Federation
from repro.localization.cues import CueBundle, GnssCue
from repro.mapserver.auth import Credential
from repro.mapserver.policy import AccessDenied
from repro.tiles.tile_math import tile_for_point
from repro.worldgen.campus import generate_campus
from repro.worldgen.outdoor import generate_city


def main() -> None:
    federation = Federation()

    city = generate_city(rows=5, cols=5, seed=2)
    federation.add_map_server("city.maps.example", city.map_data, is_world_provider=True)

    campus = generate_campus(anchor=city.intersections[2][2].location, seed=2)
    federation.add_map_server(campus.name, campus.map_data, policy=campus.recommended_policy())
    campus_server = federation.servers[campus.name]

    building_name, building_location = next(iter(campus.building_locations.items()))
    print(f"Campus map server deployed: {campus.name!r}")
    print(f"Probing around {building_name}\n")

    principals = {
        "anonymous visitor": Credential(),
        "student (campus email)": Credential(user_id="student", email="student@campus.edu"),
        "campus-nav app user": Credential(user_id="visitor", application_id=campus.navigation_app_id),
    }

    for label, credential in principals.items():
        print(f"--- {label} ---")
        client = federation.client(credential)

        # Tiles: allowed for everyone (service-level control).
        try:
            campus_server.get_tile(tile_for_point(building_location, 18), credential)
            print("  tiles        : allowed")
        except AccessDenied as denied:
            print(f"  tiles        : DENIED ({denied.reason})")

        # Search: room-level data needs a campus identity (user-level control).
        try:
            results = campus_server.search("lecture hall", near=building_location, radius_meters=300.0, credential=credential)
            print(f"  search       : allowed, {len(results)} room(s) visible")
        except AccessDenied as denied:
            print(f"  search       : DENIED ({denied.reason})")

        # Localization: only from the campus navigation app (application-level).
        try:
            campus_server.localize(CueBundle(gnss=GnssCue(building_location)), credential)
            print("  localization : allowed")
        except AccessDenied as denied:
            print(f"  localization : DENIED ({denied.reason})")

        # Federated search through the client shows the same effect end to
        # end: outsiders simply never see campus results.
        federated = client.search("lecture hall", near=building_location, radius_meters=300.0)
        campus_hits = [r for r in federated.results if r.map_name == campus.map_data.metadata.name]
        print(f"  federated search returns {len(campus_hits)} campus result(s)\n")


if __name__ == "__main__":
    main()
