"""Telemetry demo: render the federation's demand heatmap as ASCII / CSV.

Run with::

    python examples/telemetry_heatmap.py [--csv heatmap.csv]

Builds the standard federated scenario, runs a telemetry-enabled fleet,
and renders the spatial roll-up the pipeline accumulated: per-level
demand heatmaps over the covering-cell hierarchy, drawn as an ASCII
intensity grid (each glyph is one occupied cell, darker = more weighted
requests) and optionally dumped as CSV (level, cell token, center
lat/lng, weighted requests) for a real plotting tool.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.core.config import FederationConfig
from repro.spatialindex.cellid import CellId
from repro.telemetry import TelemetryConfig
from repro.workload import WorkloadConfig, WorkloadEngine
from repro.worldgen.scenario import build_scenario

INTENSITY = " .:-=+*#%@"
"""Ten intensity buckets, blank (no demand) through heaviest."""


def run_demo_fleet(clients: int = 48, steps: int = 6):
    """A small telemetry-enabled fleet over the standard demo world."""
    config = FederationConfig(
        device_discovery_cache_ttl_seconds=120.0,
        client_tile_cache_entries=256,
    )
    scenario = build_scenario(
        store_count=2, city_rows=5, city_cols=5, config=config, seed=9
    )
    engine = WorkloadEngine(
        scenario,
        WorkloadConfig(
            clients=clients,
            steps=steps,
            seed=1,
            telemetry=TelemetryConfig(window_seconds=60.0),
        ),
    )
    return engine.run()


def render_ascii(
    cells: dict[str, float], width: int = 56, height: int = 18
) -> str:
    """Draw one heatmap level as a character grid.

    Each occupied cell's center is quantized onto a ``width`` x ``height``
    grid spanning the occupied cells' bounding box; colliding cells sum.
    """
    if not cells:
        return "(no demand recorded)"
    centers = {token: CellId(token).center() for token in cells}
    lats = [center.latitude for center in centers.values()]
    lngs = [center.longitude for center in centers.values()]
    south, north = min(lats), max(lats)
    west, east = min(lngs), max(lngs)
    lat_span = (north - south) or 1.0
    lng_span = (east - west) or 1.0
    grid = [[0.0] * width for _ in range(height)]
    for token, weight in cells.items():
        center = centers[token]
        # North on top: high latitude maps to row 0.
        row = min(height - 1, int((north - center.latitude) / lat_span * height))
        col = min(width - 1, int((center.longitude - west) / lng_span * width))
        grid[row][col] += weight
    heaviest = max(max(row) for row in grid)
    lines = []
    for row in grid:
        glyphs = []
        for weight in row:
            bucket = (
                0
                if weight <= 0.0
                else 1 + int(weight / heaviest * (len(INTENSITY) - 2))
            )
            glyphs.append(INTENSITY[min(bucket, len(INTENSITY) - 1)])
        lines.append("".join(glyphs))
    return "\n".join(lines)


def csv_rows(heatmap: dict[int, dict[str, float]]) -> list[str]:
    """Flatten every level into ``level,cell,lat,lng,requests`` rows."""
    rows = ["level,cell,lat,lng,requests"]
    for level in sorted(heatmap):
        for token in sorted(heatmap[level]):
            center = CellId(token).center()
            rows.append(
                f"{level},{token},{center.latitude:.6f},{center.longitude:.6f},"
                f"{heatmap[level][token]:.1f}"
            )
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=48)
    parser.add_argument("--steps", type=int, default=6)
    parser.add_argument(
        "--csv", type=Path, default=None, help="also dump every level as CSV"
    )
    args = parser.parse_args(argv)

    report = run_demo_fleet(clients=args.clients, steps=args.steps)
    telemetry = report.telemetry
    heatmap = telemetry.demand_heatmap()

    summary = telemetry.summary()
    print("=== Telemetry ===")
    print(
        f"records: {summary['records']:.0f}, windows: {summary['windows']:.0f}, "
        f"distinct cells: {summary['cells']:.0f}"
    )

    coarsest = min(heatmap)
    print(f"\n=== Demand heatmap (cell level {coarsest}) ===")
    print(render_ascii(heatmap[coarsest]))

    rollup = telemetry.cell_rollup(coarsest)
    top = sorted(rollup.items(), key=lambda kv: -kv[1]["requests"])[:5]
    print(f"\n=== Hottest level-{coarsest} cells ===")
    for token, stats in top:
        print(
            f"{token:>{coarsest}s}: {stats['requests']:7.1f} requests  "
            f"p50={stats['p50_ms']:7.1f}ms  p95={stats['p95_ms']:7.1f}ms"
        )

    if args.csv is not None:
        args.csv.write_text("\n".join(csv_rows(heatmap)) + "\n")
        print(f"\nwrote {args.csv}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
