"""Workload engine demo: a fleet of clients hammering one federation.

Run with::

    python examples/workload_fleet.py

Builds the standard federated scenario with client-side caching enabled,
spawns a fleet of simulated devices (random-waypoint walkers, in-store
shoppers, commuters crossing between stores), runs a Zipf-skewed mix of
search/route/tile/localize requests, and prints the tail-latency and
cache-hit-rate report the paper's caching argument is about.
"""

from __future__ import annotations

from repro.core.config import FederationConfig
from repro.workload import WorkloadConfig, WorkloadEngine
from repro.worldgen.scenario import build_scenario


def main() -> None:
    config = FederationConfig(
        device_discovery_cache_ttl_seconds=120.0,
        client_tile_cache_entries=256,
    )
    scenario = build_scenario(store_count=2, city_rows=5, city_cols=5, config=config, seed=9)
    engine = WorkloadEngine(
        scenario, WorkloadConfig(clients=50, steps=6, seed=1)
    )
    report = engine.run()

    print("=== Fleet ===")
    print(f"clients: {len(engine.fleet)}, requests: {report.requests}, errors: {report.errors}")
    print(f"simulated time: {report.simulated_seconds:.1f}s")

    print("\n=== Tail latency (ms) ===")
    for service in ("all", "search", "route", "tiles", "localize"):
        tail = report.latency_percentiles(service)
        print(
            f"{service:>9s}: p50={tail['p50']:8.1f}  p95={tail['p95']:8.1f}  p99={tail['p99']:8.1f}"
        )

    print("\n=== Cache hit-rates ===")
    print(f"device discovery cache: {report.discovery_cache_hit_rate:.1%}")
    print(f"client tile LRU:        {report.tile_cache_hit_rate:.1%}")
    print(f"resolver DNS cache:     {report.dns_cache_hit_rate:.1%}")


if __name__ == "__main__":
    main()
