"""Quickstart: build a small federation and use every location-based service.

Run with::

    python examples/quickstart.py

The script builds a synthetic city, deploys it as the outdoor "world
provider" map server, adds one grocery store with its own private map, and
then exercises discovery, search, geocoding, routing, localization and tile
rendering through the :class:`repro.core.OpenFlameClient` public API.
"""

from __future__ import annotations

import random

from repro.geometry.bbox import BoundingBox
from repro.worldgen.scenario import build_scenario, outdoor_point_near


def main() -> None:
    # One call wires everything: a city map server (world provider), two
    # store map servers with indoor maps + localization databases, and the
    # DNS-based discovery layer that ties them together.
    scenario = build_scenario(store_count=2, include_campus=False, seed=7)
    federation = scenario.federation
    client = federation.client()
    store = scenario.stores[0]

    print("=== Federation ===")
    print(f"map servers deployed : {federation.server_count}")
    print(f"discovery DNS records: {federation.registry.total_records}")

    # ------------------------------------------------------------------
    # Discovery: what map servers cover the user's coarse location?
    # ------------------------------------------------------------------
    user_location = outdoor_point_near(scenario, store_index=0, distance_meters=150.0)
    discovery = client.discover(user_location, uncertainty_meters=100.0)
    print("\n=== Discovery near the user ===")
    print(f"servers: {list(discovery.server_ids)}")
    print(f"DNS lookups: {discovery.dns_lookups}")

    # ------------------------------------------------------------------
    # Location-based search: the Section 2 "seaweed" query.
    # ------------------------------------------------------------------
    hits = client.search("wasabi seaweed", near=user_location, radius_meters=400.0)
    print("\n=== Search: 'wasabi seaweed' near me ===")
    for result in hits.results[:3]:
        print(f"  {result.label:45s}  {result.distance_meters:6.1f} m  (from {result.map_name})")

    # ------------------------------------------------------------------
    # Geocoding a street address.
    # ------------------------------------------------------------------
    address = next(iter(scenario.city.building_addresses))
    geocoded = client.geocode(f"{address}, {scenario.city.city_name}")
    print(f"\n=== Geocode '{address}' ===")
    if geocoded.best is not None:
        print(f"  -> {geocoded.best.label} at {geocoded.best.location}")

    # ------------------------------------------------------------------
    # Routing: street -> store shelf, stitched across two map servers.
    # ------------------------------------------------------------------
    shelf = store.product_locations["wasabi seaweed snack"]
    route = client.route(user_location, shelf)
    print("\n=== Route to the seaweed shelf ===")
    print(f"  length  : {route.length_meters:.1f} m")
    print(f"  servers : {list(route.servers)}")
    print(f"  points  : {len(route.route.points)}")

    # ------------------------------------------------------------------
    # Localization: indoors, the store's map server localizes the device.
    # ------------------------------------------------------------------
    rng = random.Random(1)
    true_position = store.random_interior_point(rng)
    true_geo = store.local_to_geographic(true_position)
    cues = store.sense_cues(true_position, rng)
    fix = client.localize(true_geo, cues)
    print("\n=== Indoor localization ===")
    if fix.best is not None:
        error = fix.location.distance_to(true_geo)
        print(f"  served by : {fix.best.result.server_id} ({fix.best.result.cue_type.value})")
        print(f"  error     : {error:.2f} m (GNSS error was {cues.gnss.location.distance_to(true_geo):.1f} m)")

    # ------------------------------------------------------------------
    # Tiles: composite view of the storefront area.
    # ------------------------------------------------------------------
    viewport = BoundingBox.around(store.entrance, 60.0)
    view = client.render_viewport(viewport, zoom=19)
    print("\n=== Stitched viewport around the storefront ===")
    print(f"  tiles     : {len(view.composites)} from {view.servers_consulted} servers")
    print(f"  coverage  : {view.coverage_fraction:.3f}")

    print(f"\nTotal network messages used by this session: {client.network_messages}")


if __name__ == "__main__":
    main()
