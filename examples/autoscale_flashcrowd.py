"""Autoscaling demo: a flash crowd absorbed by warm-pool promotion.

Run with::

    python examples/autoscale_flashcrowd.py

Builds the standard two-store federated scenario, attaches a warm pool of
two zero-weight standby replicas to store 0, and aims a flash crowd at
store 0's base replicas for 60–240 s of simulated time.  The closed-loop
:class:`~repro.autoscale.Autoscaler` watches only the telemetry roll-ups
(zonal queue-wait and shed-rate over sealed windows — never the engine's
raw ``server_stats``) and reacts through the operator control plane:
promote standbys into the serving set while the crowd squeezes the zone,
ramp them back down the 4→2→1→0 weight ladder once it ebbs, and park the
drained standbys back into the pool.

The demo prints three views of one run:

* a per-window **zone pressure timeline** (mean queue-wait as an ASCII
  bar, shed rate, and how many replicas were serving) — the before /
  during / after picture of the crowd;
* the scaler's **action log**, straight from the control plane's audit
  trail (every decision is a batched, auditable operator op);
* the **closing stats**: promotions, ramp steps, parks, flaps (zero —
  hysteresis and cooldowns absorb TTL-delayed client convergence), and
  the replica-seconds the elasticity actually cost.
"""

from __future__ import annotations

import argparse

from repro.autoscale import AutoscalerConfig
from repro.churn.retry import RetryPolicy
from repro.core.config import FederationConfig
from repro.faults.schedule import FaultPlan
from repro.simulation.queueing import ServiceTimeModel
from repro.telemetry import SLOConfig, TelemetryConfig
from repro.telemetry.spatial import server_zonal
from repro.workload import WorkloadConfig, WorkloadEngine
from repro.worldgen.scenario import build_scenario

CROWD_START_S = 60.0
CROWD_END_S = 240.0
BASE_REPLICAS = 2
"""The crowd is pinned to the group's base replicas (deployed capacity
must not change offered load — same discipline as BENCH_e19)."""

BAR_GLYPH = "#"
BAR_FULL_MS = 160.0
"""Queue-wait that renders as a full-width pressure bar."""


def build_run(clients: int = 24, steps: int = 36):
    """One flash-crowd run with the autoscaler on; returns (engine, report)."""
    config = FederationConfig(
        device_discovery_cache_ttl_seconds=30.0,
        registration_ttl_seconds=60.0,
        client_tile_cache_entries=256,
        service_times=ServiceTimeModel(
            default_ms=2.0,
            per_kind_ms={"search": 1.5, "routing": 4.0, "tiles": 0.5, "localization": 2.5},
        ),
        server_queue_capacity=256,
        retry_policy=RetryPolicy.full_jitter(),
    )
    scenario = build_scenario(
        store_count=2,
        city_rows=5,
        city_cols=5,
        config=config,
        seed=33,
        reuse_worlds=True,
        store_replicas=BASE_REPLICAS,
    )
    federation = scenario.federation
    group_id = sorted(federation.replica_groups)[0]
    federation.attach_warm_pool(group_id, 2)
    crowd_targets = tuple(scenario.store_replica_ids(0)[:BASE_REPLICAS])
    workload = WorkloadConfig(
        clients=clients,
        steps=steps,
        seed=7,
        step_seconds=20.0,
        resolver_pools=2,
        faults=FaultPlan.flash_crowd(crowd_targets, CROWD_START_S, CROWD_END_S, extra_load=300),
        telemetry=TelemetryConfig(window_seconds=40.0, slo=SLOConfig(latency_ms=250.0)),
        autoscale=AutoscalerConfig(
            wait_high_ms=25.0,
            wait_low_ms=8.0,
            burn_high=0.0,
            breach_evals=1,
            recover_evals=2,
            cooldown_seconds=60.0,
            ramp_cooldown_seconds=30.0,
            park_delay_seconds=40.0,
        ),
    )
    engine = WorkloadEngine(scenario, workload)
    return engine, engine.run()


def pressure_timeline(engine, width: int = 24) -> list[str]:
    """Per sealed window: the hottest zone's wait bar, shed rate, and the
    serving-weight roster the scaler left behind by window end."""
    scaler = engine.autoscaler
    pipeline = engine.telemetry
    serving_by_time = _serving_counts(scaler)
    lines = [
        f"{'window':>13s}  {'crowd':>5s}  {'wait_ms':>8s}  {'shed':>5s}  "
        f"{'serving':>7s}  pressure"
    ]
    base_serving = BASE_REPLICAS
    for window in pipeline.windows:
        zonal = server_zonal((window,), pipeline.server_cells, scaler.config.zone_level)
        wait = max((zone["mean_wait_ms"] for zone in zonal.values()), default=0.0)
        shed = max((zone["shed_rate"] for zone in zonal.values()), default=0.0)
        in_crowd = window.start_seconds < CROWD_END_S and window.end_seconds > CROWD_START_S
        serving = base_serving + _serving_at(serving_by_time, window.end_seconds)
        bar = BAR_GLYPH * min(width, round(wait / BAR_FULL_MS * width))
        lines.append(
            f"{window.start_seconds:5.0f}–{window.end_seconds:<5.0f}s  "
            f"{'yes' if in_crowd else '':>5s}  {wait:8.1f}  {shed:5.2f}  "
            f"{serving:>7d}  {bar}"
        )
    return lines


def _serving_counts(scaler) -> list[tuple[float, int]]:
    """(time, extra serving standbys) steps recovered from the action log."""
    weights: dict[str, int] = {}
    steps: list[tuple[float, int]] = []
    standbys = {
        standby for pool in scaler.pools.values() for standby in pool.standby_ids
    }
    for event in scaler.control.applied:
        if not event.applied or event.server_id not in standbys:
            continue
        weights[event.server_id] = event.weight
        steps.append((event.at_seconds, sum(1 for w in weights.values() if w > 0)))
    return steps


def _serving_at(steps: list[tuple[float, int]], instant: float) -> int:
    serving = 0
    for at_seconds, count in steps:
        if at_seconds > instant:
            break
        serving = count
    return serving


def action_log(scaler) -> list[str]:
    lines = []
    for event in scaler.control.applied:
        lines.append(
            f"t={event.at_seconds:6.1f}s  {event.kind:<10s} {event.server_id:<28s} "
            f"-> weight {event.weight}"
            + ("" if event.applied else "  [REJECTED]")
        )
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=24)
    parser.add_argument("--steps", type=int, default=36)
    args = parser.parse_args(argv)

    engine, report = build_run(clients=args.clients, steps=args.steps)
    scaler = engine.autoscaler

    print("=== Flash crowd vs the closed loop ===")
    print(
        f"crowd: +300 search req/round on store 0's {BASE_REPLICAS} base replicas, "
        f"{CROWD_START_S:.0f}–{CROWD_END_S:.0f}s; warm pool: "
        f"{sum(len(pool.standby_ids) for pool in scaler.pools.values())} standbys"
    )

    print("\n=== Zone pressure per telemetry window ===")
    for line in pressure_timeline(engine):
        print(line)

    print("\n=== Autoscaler action log (control-plane audit trail) ===")
    for line in action_log(scaler):
        print(line)

    stats = report.autoscale_stats
    print("\n=== Closing stats ===")
    for key in (
        "promotions",
        "ramp_steps",
        "parks",
        "flaps",
        "ops_rejected",
        "active_peak",
        "replica_seconds",
    ):
        print(f"{key:>16s}: {stats[key]:.1f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
