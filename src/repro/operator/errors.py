"""Structured error taxonomy for the operator API layer.

Every failure the API can hand back to an operator belongs to exactly one
of four families, mirroring the coarse HTTP classes a real control plane
would use without dragging HTTP itself into the simulation:

* :class:`UnauthorizedError` — the caller is unknown, or known but not
  granted the permission the route demands (401/403 territory).
* :class:`MalformedError` — the payload failed schema validation before
  any route logic ran (400 territory).
* :class:`ConflictError` — the request was well-formed and authorized but
  lost to the federation's current state: a group guard (draining the last
  positive weight), a lifecycle conflict (parking an offline server), or a
  competing operator's earlier op (409 territory).
* :class:`UnavailableError` — the endpoint or its target cannot serve the
  request *right now* (unknown/undeployed server, control queue full).
  This is the only retryable family: clients may re-issue with the same
  idempotency token; the API deliberately does not cache these responses.

The ``code`` attribute is the wire-visible error family carried in
:class:`~repro.operator.schemas.ControlResponse.error` and in audit
records, so replay and tests match on stable strings, not exception
identities.
"""

from __future__ import annotations


class ApiError(Exception):
    """Base class for operator API failures; ``code`` names the family."""

    code = "error"
    retryable = False


class UnauthorizedError(ApiError):
    """Unknown principal, or one lacking the action's permission."""

    code = "unauthorized"


class MalformedError(ApiError):
    """The request failed schema validation before reaching any route."""

    code = "malformed"


class ConflictError(ApiError):
    """Valid request, but the federation's current state wins.

    Conflicts are *terminal* for an idempotency token: the response is
    cached, so a retried request replays the same rejection instead of
    racing whatever state change caused it.
    """

    code = "conflict"


class UnavailableError(ApiError):
    """The request cannot be served right now — the one retryable family."""

    code = "unavailable"
    retryable = True
