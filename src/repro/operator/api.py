"""The operator API: routes, middleware, and dispatch over one federation.

:class:`OperatorApi` is the server side of the control plane's message
layer.  One :meth:`~OperatorApi.handle` call is one request's complete
middleware walk, in a fixed order any web framework would recognize:

1. **validate** — :meth:`ControlRequest.from_payload` (malformed stops here);
2. **authenticate / authorize** — the principal registry (unauthorized
   stops here, before any state is read);
3. **idempotency** — a ``(principal, token)`` cache of terminal responses;
   a hit replays the original outcome with ``replayed=True`` and applies
   nothing twice;
4. **queue contention** (optional) — when ``contend_for_queue`` is set and
   the target server carries a :class:`~repro.simulation.queueing.ServerQueue`,
   the request occupies one ``"control"`` slot like any data request; a
   full queue is an ``unavailable`` rejection, *not* cached, so the retry
   genuinely re-contends;
5. **dispatch** — the route itself (SRV mutation through a
   :class:`~repro.control.plane.ControlPlane`, warm-pool park/unpark,
   health ingest, audit tail);
6. **audit** — every outcome appends one
   :class:`~repro.operator.audit.AuditRecord`; the assigned ``seq`` rides
   back in the response.

Error mapping is uniform across routes: a
:class:`~repro.core.errors.FederationConfigError` (unknown / undeployed /
offline target) becomes ``unavailable``; a ``ValueError`` (a federation
guard like "last positive weight in the group") becomes ``conflict``.
Conflicts are terminal and cached; unavailable is retryable and not.

SRV routes also append an :class:`~repro.control.plane.AppliedControlEvent`
to the API's plane — rejected ops record the target's *live* SRV state,
the same record-don't-raise contract :meth:`ControlPlane._perform` keeps —
so engine convergence tracking works identically whichever door an op
came through.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Mapping

from repro.control.plane import AppliedControlEvent, ControlPlane
from repro.core.errors import FederationConfigError
from repro.operator.audit import AuditLog
from repro.operator.errors import (
    ApiError,
    ConflictError,
    MalformedError,
    UnauthorizedError,
    UnavailableError,
)
from repro.operator.permissions import PrincipalRegistry
from repro.operator.schemas import ControlRequest, ControlResponse
from repro.simulation.queueing import ServerOverloadedError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.federation import Federation

_SRV_ACTIONS = frozenset({"set-weight", "drain", "undrain", "promote"})
_POOL_ACTIONS = frozenset({"park", "unpark"})
_CONTENDING_ACTIONS = _SRV_ACTIONS | _POOL_ACTIONS


@dataclass
class OperatorApi:
    """One federation's operator-facing control endpoint."""

    federation: "Federation"
    principals: PrincipalRegistry = field(default_factory=PrincipalRegistry)
    audit: AuditLog = field(default_factory=AuditLog)
    plane: ControlPlane | None = None
    contend_for_queue: bool = False
    health_board: dict[str, tuple[float, int]] = field(default_factory=dict)
    """Latest ``(at_seconds, value)`` gossip per server from the
    ``health`` route — observability state, never consulted by routing."""
    last_record: AppliedControlEvent | None = field(default=None, repr=False)
    """The SRV convergence record produced by the most recent ``handle``
    call (``None`` for non-SRV routes and pre-dispatch rejections) — how
    clients hand the engine its device-convergence target without parsing
    the response."""
    _responses: dict[tuple[str, str], ControlResponse] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        if self.plane is None:
            self.plane = ControlPlane(self.federation)

    # ------------------------------------------------------------------
    # The one entry point
    # ------------------------------------------------------------------
    def handle(
        self, payload: Any, now: float, transport: str = "direct"
    ) -> ControlResponse:
        """Walk one request through the middleware chain; always returns
        a response (errors become ``status="error"``, never raises)."""
        self.last_record = None
        try:
            request = ControlRequest.from_payload(payload)
        except MalformedError as exc:
            return self._reject_unparsed(payload, now, transport, exc)
        try:
            principal = self.principals.authenticate(request.principal)
            self.principals.authorize(principal, request.action)
        except UnauthorizedError as exc:
            return self._finish(request, now, transport, error=exc)

        cached = self._responses.get((request.principal, request.token))
        if cached is not None:
            replayed = replace(cached, replayed=True)
            self.audit.append(
                at_seconds=now,
                principal=request.principal,
                action=request.action,
                server_id=request.server_id,
                value=request.value,
                token=request.token,
                outcome="replayed",
                error=cached.error,
                priority=cached.priority,
                weight=cached.weight,
                transport=transport,
            )
            return replayed

        try:
            self._contend(request)
            priority, weight, events = self._dispatch(request, now)
        except ApiError as exc:
            return self._finish(request, now, transport, error=exc)
        return self._finish(
            request, now, transport, priority=priority, weight=weight, events=events
        )

    # ------------------------------------------------------------------
    # Middleware pieces
    # ------------------------------------------------------------------
    def _contend(self, request: ControlRequest) -> None:
        """Charge the request one ``"control"`` queue slot on its target."""
        if not self.contend_for_queue or request.action not in _CONTENDING_ACTIONS:
            return
        server = self.federation.servers.get(request.server_id or "")
        if server is None or server.queue is None:
            return
        try:
            server.queue.process("control")
        except ServerOverloadedError as exc:
            raise UnavailableError(
                f"control queue full on {request.server_id!r}"
            ) from exc

    def _dispatch(
        self, request: ControlRequest, now: float
    ) -> tuple[int, int, tuple[dict[str, Any], ...] | None]:
        if request.action in _SRV_ACTIONS:
            priority, weight = self._srv_op(request, now)
            return priority, weight, None
        if request.action in _POOL_ACTIONS:
            priority, weight = self._pool_op(request)
            return priority, weight, None
        if request.action == "health":
            priority, weight = self._health(request, now)
            return priority, weight, None
        tail = self.audit.tail(request.value)
        return 0, 0, tuple(record.to_payload() for record in tail)

    def _srv_op(self, request: ControlRequest, now: float) -> tuple[int, int]:
        plane = self.plane
        server_id = request.server_id or ""
        assert plane is not None  # __post_init__ guarantees it
        try:
            if request.action == "set-weight":
                priority, weight = plane.set_weight(server_id, request.value or 0)
            elif request.action == "drain":
                priority, weight = plane.drain(server_id)
            elif request.action == "undrain":
                priority, weight = plane.undrain(server_id, request.value)
            else:
                priority, weight = plane.promote(server_id, request.value or 0)
        except FederationConfigError as exc:
            self._record_srv(now, request, applied=False)
            raise UnavailableError(str(exc)) from exc
        except ValueError as exc:
            self._record_srv(now, request, applied=False)
            raise ConflictError(str(exc)) from exc
        record = AppliedControlEvent(
            now, request.action, server_id, priority=priority, weight=weight
        )
        plane.applied.append(record)
        self.last_record = record
        return priority, weight

    def _record_srv(
        self, now: float, request: ControlRequest, *, applied: bool
    ) -> None:
        """Append a rejected SRV record at the target's live state (the
        same contract as ``ControlPlane._perform``)."""
        priority, weight = self._live_srv(request.server_id)
        record = AppliedControlEvent(
            now,
            request.action,
            request.server_id or "",
            applied=applied,
            priority=priority,
            weight=weight,
        )
        assert self.plane is not None
        self.plane.applied.append(record)
        self.last_record = record

    def _pool_op(self, request: ControlRequest) -> tuple[int, int]:
        federation = self.federation
        server_id = request.server_id or ""
        try:
            priority, weight = federation.srv_of(server_id)
        except FederationConfigError as exc:
            raise UnavailableError(str(exc)) from exc
        if federation.is_offline(server_id):
            raise ConflictError(
                f"map server {server_id!r} is offline — revive it first"
            )
        try:
            if request.action == "park":
                if weight > 0:
                    raise ConflictError(
                        f"map server {server_id!r} still carries weight {weight} — "
                        "drain it before parking"
                    )
                federation.park_map_server(server_id)
            else:
                federation.unpark_map_server(server_id)
        except FederationConfigError as exc:
            # Lifecycle races (crashed between the checks above and the
            # mutation) surface as conflicts: the request was valid, the
            # state won.
            raise ConflictError(str(exc)) from exc
        return federation.srv_of(server_id)

    def _health(self, request: ControlRequest, now: float) -> tuple[int, int]:
        server_id = request.server_id or ""
        self.health_board[server_id] = (now, request.value or 0)
        return self._live_srv(server_id)

    # ------------------------------------------------------------------
    # Response/audit assembly
    # ------------------------------------------------------------------
    def _live_srv(self, server_id: str | None) -> tuple[int, int]:
        if not server_id:
            return 0, 0
        try:
            return self.federation.srv_of(server_id)
        except FederationConfigError:
            return 0, 0

    def _finish(
        self,
        request: ControlRequest,
        now: float,
        transport: str,
        *,
        error: ApiError | None = None,
        priority: int | None = None,
        weight: int | None = None,
        events: tuple[dict[str, Any], ...] | None = None,
    ) -> ControlResponse:
        if priority is None or weight is None:
            priority, weight = self._live_srv(request.server_id)
        record = self.audit.append(
            at_seconds=now,
            principal=request.principal,
            action=request.action,
            server_id=request.server_id,
            value=request.value,
            token=request.token,
            outcome="applied" if error is None else "rejected",
            error=None if error is None else error.code,
            priority=priority,
            weight=weight,
            transport=transport,
        )
        response = ControlResponse(
            status="ok" if error is None else "error",
            error=None if error is None else error.code,
            detail="" if error is None else str(error),
            priority=priority,
            weight=weight,
            seq=record.seq,
            events=events,
        )
        # Cache terminal outcomes (success and conflict alike) so retries
        # replay instead of double-applying.  Retryable families stay
        # uncached on purpose, and so does unauthorized: a principal whose
        # grant lands mid-incident may legitimately reissue its token.
        if error is None or isinstance(error, ConflictError):
            self._responses[(request.principal, request.token)] = response
        return response

    def _reject_unparsed(
        self, payload: Any, now: float, transport: str, exc: MalformedError
    ) -> ControlResponse:
        principal = "?"
        action = "?"
        token = "?"
        if isinstance(payload, Mapping):
            principal = str(payload.get("principal", "?")) or "?"
            action = str(payload.get("action", "?")) or "?"
            token = str(payload.get("token", "?")) or "?"
        record = self.audit.append(
            at_seconds=now,
            principal=principal,
            action=action,
            server_id=None,
            value=None,
            token=token,
            outcome="rejected",
            error=exc.code,
            transport=transport,
        )
        return ControlResponse(
            status="error", error=exc.code, detail=str(exc), seq=record.seq
        )
