"""Operator API layer: control ops as messages with auth, audit, and replay.

The packages below this one *are* the control plane's mechanics
(:mod:`repro.control` mutates SRV state, :mod:`repro.autoscale` decides
when).  This package is the **door**: every operator action becomes an
authenticated, schema-validated :class:`~repro.operator.schemas.ControlRequest`
that walks a middleware chain (validate → authenticate/authorize →
idempotency → optional queue contention → dispatch → audit) and comes
back as a :class:`~repro.operator.schemas.ControlResponse` — optionally
paying real (simulated) network latency, loss, and partitions on the way.

See :mod:`repro.operator.api` for the middleware walk,
:mod:`repro.operator.audit` for the total-order audit log and
deterministic replay, and :mod:`repro.operator.client` for the tape
player and autoscaler adapter the workload engine swaps in when a
:class:`~repro.operator.config.OperatorConfig` is attached.
"""

from repro.operator.audit import AuditLog, AuditRecord, replay_audit, state_digest
from repro.operator.api import OperatorApi
from repro.operator.client import (
    NetworkedControlPlayer,
    OperatorClient,
    OperatorControlAdapter,
    OperatorResult,
)
from repro.operator.config import OperatorConfig
from repro.operator.errors import (
    ApiError,
    ConflictError,
    MalformedError,
    UnauthorizedError,
    UnavailableError,
)
from repro.operator.permissions import (
    ACTION_PERMISSIONS,
    ALL_PERMISSIONS,
    AUDIT_READ,
    CONTROL_WRITE,
    HEALTH_REPORT,
    POOL_WRITE,
    Principal,
    PrincipalRegistry,
)
from repro.operator.schemas import ACTIONS, ControlRequest, ControlResponse

__all__ = [
    "ACTIONS",
    "ACTION_PERMISSIONS",
    "ALL_PERMISSIONS",
    "AUDIT_READ",
    "ApiError",
    "AuditLog",
    "AuditRecord",
    "CONTROL_WRITE",
    "ConflictError",
    "ControlRequest",
    "ControlResponse",
    "HEALTH_REPORT",
    "MalformedError",
    "NetworkedControlPlayer",
    "OperatorApi",
    "OperatorClient",
    "OperatorControlAdapter",
    "OperatorConfig",
    "OperatorResult",
    "POOL_WRITE",
    "Principal",
    "PrincipalRegistry",
    "UnauthorizedError",
    "UnavailableError",
    "replay_audit",
    "state_digest",
]
