"""Wire schemas for the operator API: requests in, responses out.

Control operations stop being Python method calls here and become
*messages*: a plain payload dict an operator could have typed into a CLI,
validated once at the API edge (:meth:`ControlRequest.from_payload`) so
every route downstream can trust its fields.  Validation failures raise
:class:`~repro.operator.errors.MalformedError` with a message naming the
offending field — the API turns that into a ``malformed`` response and an
audit record, never a stack trace.

Both classes are frozen plain data with ``to_payload`` dict encodings, so
the audit log can persist exactly what travelled and a replay can re-issue
it byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.operator.errors import MalformedError

ACTIONS = (
    "set-weight",
    "drain",
    "undrain",
    "promote",
    "park",
    "unpark",
    "health",
    "events",
)
"""Every route the API serves.  The first four mirror
:class:`~repro.control.schedule.ControlEventKind` values exactly, so a
:class:`~repro.control.schedule.ControlSchedule` tape translates to
requests without a mapping table; ``park``/``unpark`` are the warm-pool
lifecycle, ``health`` is gossip ingest, ``events`` reads the audit tail."""

_VALUE_REQUIRED = frozenset({"set-weight", "promote", "health"})
_SERVER_OPTIONAL = frozenset({"events"})
_ALLOWED_KEYS = frozenset({"principal", "action", "token", "server_id", "value"})


@dataclass(frozen=True, slots=True)
class ControlRequest:
    """One validated operator request.

    ``token`` is the caller-chosen idempotency token: retries of the same
    logical request MUST reuse it, so the API can replay the original
    response instead of double-applying the op.
    """

    principal: str
    action: str
    token: str
    server_id: str | None = None
    value: int | None = None

    @classmethod
    def from_payload(cls, payload: Any) -> "ControlRequest":
        """Validate a raw payload into a request, or raise ``MalformedError``."""
        if not isinstance(payload, Mapping):
            raise MalformedError("request payload must be a mapping")
        unknown = set(payload) - _ALLOWED_KEYS
        if unknown:
            raise MalformedError(f"unknown request fields: {sorted(unknown)}")
        principal = payload.get("principal")
        if not isinstance(principal, str) or not principal:
            raise MalformedError("'principal' must be a non-empty string")
        action = payload.get("action")
        if action not in ACTIONS:
            raise MalformedError(f"'action' must be one of {list(ACTIONS)}")
        token = payload.get("token")
        if not isinstance(token, str) or not token:
            raise MalformedError("'token' must be a non-empty idempotency token")
        server_id = payload.get("server_id")
        if server_id is not None and (not isinstance(server_id, str) or not server_id):
            raise MalformedError("'server_id' must be a non-empty string when given")
        if server_id is None and action not in _SERVER_OPTIONAL:
            raise MalformedError(f"'{action}' requests need a 'server_id'")
        value = payload.get("value")
        if value is not None:
            if isinstance(value, bool) or not isinstance(value, int):
                raise MalformedError("'value' must be an integer when given")
            if value < 0:
                raise MalformedError("'value' cannot be negative")
        elif action in _VALUE_REQUIRED:
            raise MalformedError(f"'{action}' requests need a 'value'")
        return cls(
            principal=principal,
            action=action,
            token=token,
            server_id=server_id,
            value=value,
        )

    def to_payload(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "principal": self.principal,
            "action": self.action,
            "token": self.token,
        }
        if self.server_id is not None:
            payload["server_id"] = self.server_id
        if self.value is not None:
            payload["value"] = self.value
        return payload


@dataclass(frozen=True, slots=True)
class ControlResponse:
    """What the API hands back for one request.

    ``seq`` is the audit-log sequence number assigned to this request's
    record — the total order that resolves concurrent operators.
    ``replayed`` marks an idempotency-cache hit: the op did *not* apply a
    second time; the original outcome is being echoed.  ``priority`` and
    ``weight`` carry the target server's live SRV state after the request
    (its convergence target even for rejections).  ``events`` is populated
    only by the ``events`` route (the audit tail as payload dicts).
    """

    status: str
    error: str | None = None
    detail: str = ""
    priority: int = 0
    weight: int = 0
    seq: int = 0
    replayed: bool = False
    events: tuple[dict[str, Any], ...] | None = field(default=None)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_payload(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "status": self.status,
            "priority": self.priority,
            "weight": self.weight,
            "seq": self.seq,
            "replayed": self.replayed,
        }
        if self.error is not None:
            payload["error"] = self.error
        if self.detail:
            payload["detail"] = self.detail
        if self.events is not None:
            payload["events"] = list(self.events)
        return payload
