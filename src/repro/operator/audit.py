"""The operator API's append-only audit log, and deterministic replay.

Every request that reaches the API — applied, rejected, or replayed from
the idempotency cache — lands here as one :class:`AuditRecord` with a
monotonically increasing ``seq``.  That sequence is the control plane's
*total order*: when two operators race (say, conflicting drains on the
same replica group from opposite sides of a partition), whichever request
reached the API first holds the lower ``seq``, and the loser's record
shows the ``conflict`` that resolved it.  There is no voting and no
merge — the audit log IS the arbitration.

Because records carry the full request (principal, action, server, value,
token) plus the outcome, the log doubles as a deterministic tape:
:func:`replay_audit` re-issues every record against a fresh API over a
fresh federation and must land the exact same final SRV state —
:func:`state_digest` turns that state into one comparable hash.  The
idempotency tokens travel too, so records that were replays dedupe again
on replay instead of double-applying.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.federation import Federation
    from repro.operator.api import OperatorApi


@dataclass(frozen=True, slots=True)
class AuditRecord:
    """One request's immutable audit entry.

    ``outcome`` is ``applied`` (the op landed), ``rejected`` (an
    :class:`~repro.operator.errors.ApiError` family, named by ``error``),
    or ``replayed`` (idempotency-cache hit echoing an earlier record).
    ``priority``/``weight`` are the target's live SRV state after the
    request, mirroring :class:`~repro.control.plane.AppliedControlEvent`.
    """

    seq: int
    at_seconds: float
    principal: str
    action: str
    server_id: str | None
    value: int | None
    token: str
    outcome: str
    error: str | None = None
    priority: int = 0
    weight: int = 0
    transport: str = "direct"

    def to_payload(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "seq": self.seq,
            "at_seconds": self.at_seconds,
            "principal": self.principal,
            "action": self.action,
            "server_id": self.server_id,
            "value": self.value,
            "token": self.token,
            "outcome": self.outcome,
            "priority": self.priority,
            "weight": self.weight,
            "transport": self.transport,
        }
        if self.error is not None:
            payload["error"] = self.error
        return payload


@dataclass
class AuditLog:
    """Append-only, sequence-numbered record list shared by an API's routes.

    Two APIs (two operator consoles) may share one log — that is exactly
    how conflicting concurrent ops get a single arbitrated order."""

    records: list[AuditRecord] = field(default_factory=list)

    def append(
        self,
        *,
        at_seconds: float,
        principal: str,
        action: str,
        server_id: str | None,
        value: int | None,
        token: str,
        outcome: str,
        error: str | None = None,
        priority: int = 0,
        weight: int = 0,
        transport: str = "direct",
    ) -> AuditRecord:
        """Stamp the next sequence number and append; returns the record."""
        record = AuditRecord(
            seq=len(self.records) + 1,
            at_seconds=at_seconds,
            principal=principal,
            action=action,
            server_id=server_id,
            value=value,
            token=token,
            outcome=outcome,
            error=error,
            priority=priority,
            weight=weight,
            transport=transport,
        )
        self.records.append(record)
        return record

    def tail(self, limit: int | None = None) -> tuple[AuditRecord, ...]:
        """The trailing ``limit`` records (all of them when ``None``)."""
        if limit is None or limit >= len(self.records):
            return tuple(self.records)
        if limit <= 0:
            return ()
        return tuple(self.records[-limit:])

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[AuditRecord]:
        return iter(self.records)


def state_digest(federation: "Federation") -> str:
    """One hash over every server's operator-visible state.

    Folds ``(server_id, priority, weight, registered, parked, offline)``
    for every deployed *or* offline server, sorted by id, through
    SHA-256.  Two federations agree on this digest exactly when an
    operator could not tell them apart — the equality the audit-replay
    determinism test asserts.
    """
    rows = []
    ids = set(federation.servers) | set(federation.offline_server_ids)
    for server_id in sorted(ids):
        priority, weight = federation.srv_of(server_id)
        rows.append(
            (
                server_id,
                priority,
                weight,
                int(server_id in federation.registry.registrations),
                int(federation.is_parked(server_id)),
                int(federation.is_offline(server_id)),
            )
        )
    blob = json.dumps(rows, separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


def replay_audit(records: Iterable[AuditRecord], api: "OperatorApi") -> int:
    """Re-issue audited requests against a fresh API; returns the count.

    Read-only ``events`` requests are skipped (they cannot change state
    and their responses depend on log length).  Everything else — applied,
    rejected, and replayed records alike — is re-issued verbatim with its
    original token and timestamp: rejections must re-reject, and replays
    must hit the fresh API's idempotency cache again, or the original run
    was not deterministic.
    """
    replayed = 0
    for record in records:
        if record.action == "events":
            continue
        payload: dict[str, Any] = {
            "principal": record.principal,
            "action": record.action,
            "token": record.token,
        }
        if record.server_id is not None:
            payload["server_id"] = record.server_id
        if record.value is not None:
            payload["value"] = record.value
        api.handle(payload, now=record.at_seconds, transport=record.transport)
        replayed += 1
    return replayed
