"""Configuration for routing a workload run's control ops through the API.

:class:`OperatorConfig` is the engine-facing switch: attach one to
:class:`~repro.workload.engine.WorkloadConfig` and the run's control
tape (and optionally its autoscaler) stops calling
:class:`~repro.control.plane.ControlPlane` methods directly and instead
issues authenticated :class:`~repro.operator.schemas.ControlRequest`
messages through an :class:`~repro.operator.api.OperatorApi`.

``transport="direct"`` keeps the exchange in-process (zero network
charge, zero RNG draws) — byte-identical engine output is the contract,
which is why the default engine path (no operator config at all) and the
direct transport coexist.  ``transport="network"`` charges each request
one operator→control round trip on the run's
:class:`~repro.simulation.network.SimulatedNetwork`, subject to the same
jitter, loss, gray failures, and region partitions as data traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

_TRANSPORTS = ("direct", "network")


@dataclass(frozen=True)
class OperatorConfig:
    """How a workload run's operator traffic travels.

    ``endpoint_id`` names the control endpoint for fault scoping (gray
    failures / partitions on that id hit control traffic); ``None`` uses
    the federation's discovery authority.  ``region`` is where the
    operator's console sits — region-scoped partitions are evaluated from
    there.  ``timeout_ms`` is the patience charged when the endpoint is
    unreachable or a response is lost.  ``route_autoscaler`` sends the
    autoscaler's batches through the same API (as the same principal);
    ``contend_for_queue`` makes control requests occupy a ``"control"``
    slot on the target server's bounded queue.
    """

    transport: str = "network"
    principal: str = "ops"
    endpoint_id: str | None = None
    region: int | None = None
    timeout_ms: float = 300.0
    route_autoscaler: bool = True
    contend_for_queue: bool = False

    def __post_init__(self) -> None:
        if self.transport not in _TRANSPORTS:
            raise ValueError(f"transport must be one of {_TRANSPORTS}")
        if not self.principal:
            raise ValueError("operator runs need a principal name")
        if self.timeout_ms < 0.0:
            raise ValueError("timeout_ms cannot be negative")
