"""Principals and per-route permissions for the operator API.

Authentication here is deliberately simple — a principal is a name the
registry knows — because the interesting property is *authorization*:
every route demands exactly one permission, and the middleware rejects a
known principal without it just like an unknown one, with the same
``unauthorized`` code, before any route logic or state mutation runs.

Permissions are coarse capability families, not per-server ACLs: SRV
mutation (``control.write``), warm-pool lifecycle (``pool.write``),
health gossip ingest (``health.report``), and audit reads
(``audit.read``).  A human operator typically holds all four; an
autoscaler acting through the API needs only ``control.write``; a health
prober only ``health.report``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.operator.errors import UnauthorizedError

CONTROL_WRITE = "control.write"
POOL_WRITE = "pool.write"
HEALTH_REPORT = "health.report"
AUDIT_READ = "audit.read"

ALL_PERMISSIONS = (CONTROL_WRITE, POOL_WRITE, HEALTH_REPORT, AUDIT_READ)

ACTION_PERMISSIONS = {
    "set-weight": CONTROL_WRITE,
    "drain": CONTROL_WRITE,
    "undrain": CONTROL_WRITE,
    "promote": CONTROL_WRITE,
    "park": POOL_WRITE,
    "unpark": POOL_WRITE,
    "health": HEALTH_REPORT,
    "events": AUDIT_READ,
}
"""One permission per route; a route absent here would be a programming
error, surfaced loudly by :meth:`PrincipalRegistry.authorize`."""


@dataclass(frozen=True, slots=True)
class Principal:
    """One authenticated caller and the permissions it holds."""

    name: str
    permissions: tuple[str, ...]

    def can(self, permission: str) -> bool:
        return permission in self.permissions


@dataclass
class PrincipalRegistry:
    """The API's caller directory: authenticate names, authorize actions."""

    _principals: dict[str, Principal] = field(default_factory=dict)

    def register(self, name: str, permissions: tuple[str, ...]) -> Principal:
        """Add (or replace) a principal; returns it for convenience."""
        if not name:
            raise ValueError("principals need a non-empty name")
        principal = Principal(name=name, permissions=tuple(permissions))
        self._principals[name] = principal
        return principal

    def authenticate(self, name: str) -> Principal:
        """Resolve a caller name, or raise ``UnauthorizedError``."""
        principal = self._principals.get(name)
        if principal is None:
            raise UnauthorizedError(f"unknown principal {name!r}")
        return principal

    def authorize(self, principal: Principal, action: str) -> None:
        """Check the principal holds the action's permission, or raise.

        The error message names the missing permission, not the denied
        action alone — an operator reading the audit log should know what
        grant to request."""
        required = ACTION_PERMISSIONS.get(action)
        if required is None:
            raise UnauthorizedError(f"no route for action {action!r}")
        if not principal.can(required):
            raise UnauthorizedError(
                f"principal {principal.name!r} lacks {required!r} for {action!r}"
            )
