"""Operator-side clients: issue control requests, optionally over the wire.

Three callers share :class:`OperatorClient`:

* tests and ad-hoc operator consoles call :meth:`OperatorClient.request`
  directly;
* :class:`NetworkedControlPlayer` replays a
  :class:`~repro.control.schedule.ControlSchedule` tape through the API —
  the drop-in replacement for :class:`~repro.control.plane.ControlPlane`
  inside the workload engine when an operator config is attached (same
  ``apply_until`` / ``applied`` / ``pending_events`` surface);
* :class:`OperatorControlAdapter` gives the autoscaler the
  ``apply_batch`` surface it expects, routed through the same API.

Transport semantics: ``direct`` hands the payload straight to
:meth:`OperatorApi.handle` (zero network charge, zero RNG draws — the
byte-identity path).  ``network`` charges one operator→control round trip
per request on the run's :class:`~repro.simulation.network.SimulatedNetwork`
first: region partitions are evaluated from the *operator's* region (the
client temporarily re-homes ``faults.active_region``), loss and gray
failures draw from the operator's own jitter stream (installed
save/restore so device streams never see control draws), and a lost or
unreachable exchange charges the full ``timeout_ms`` and reports
``unavailable`` *without the request ever reaching the API* — which is
exactly what makes retries (same idempotency token, next round) safe.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.control.plane import AppliedControlEvent
from repro.control.schedule import ControlEvent, ControlSchedule
from repro.operator.api import OperatorApi
from repro.operator.schemas import ControlResponse
from repro.simulation.network import NetworkTimeoutError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.control.plane import ControlOp


@dataclass(frozen=True, slots=True)
class OperatorResult:
    """One request's outcome as the operator saw it.

    ``arrived`` distinguishes "the API answered" (even with an error) from
    "the network ate it" — only non-arrivals are worth retrying with the
    same token.  ``record`` is the SRV convergence record the API produced
    (``None`` for non-SRV routes and for non-arrivals).
    """

    response: ControlResponse
    record: AppliedControlEvent | None
    arrived: bool
    latency_ms: float


def _unavailable(detail: str) -> ControlResponse:
    return ControlResponse(status="error", error="unavailable", detail=detail)


@dataclass
class OperatorClient:
    """One principal's handle on an :class:`OperatorApi`."""

    api: OperatorApi
    principal: str = "ops"
    transport: str = "direct"
    endpoint_id: str | None = None
    region: int | None = None
    timeout_ms: float = 300.0
    jitter_rng: random.Random | None = None
    """The operator's own network-draw stream (loss/jitter on the control
    hop).  Installed around each exchange and restored afterwards, so the
    fleet's per-device streams are untouched by control traffic."""
    counters: dict[str, int] = field(
        default_factory=lambda: {
            "requests": 0,
            "delivered": 0,
            "replayed": 0,
            "conflicts": 0,
            "unauthorized": 0,
            "malformed": 0,
            "unavailable": 0,
            "timeouts": 0,
            "unreachable": 0,
        }
    )
    _token_counter: int = field(default=0, repr=False)

    def next_token(self) -> str:
        """Mint the next idempotency token (deterministic per principal)."""
        self._token_counter += 1
        return f"{self.principal}-{self._token_counter}"

    def request(
        self,
        action: str,
        server_id: str | None = None,
        value: int | None = None,
        *,
        token: str | None = None,
    ) -> OperatorResult:
        """Issue one request; retries MUST pass the original ``token``."""
        network = self.api.federation.network
        if token is None:
            token = self.next_token()
        payload: dict[str, object] = {
            "principal": self.principal,
            "action": action,
            "token": token,
        }
        if server_id is not None:
            payload["server_id"] = server_id
        if value is not None:
            payload["value"] = value
        self.counters["requests"] += 1

        latency_ms = 0.0
        if self.transport == "network":
            delivered, latency_ms = self._exchange(network)
            if not delivered:
                return OperatorResult(
                    _unavailable("control endpoint unreachable"),
                    None,
                    False,
                    latency_ms,
                )
        response = self.api.handle(
            payload, now=network.clock.now(), transport=self.transport
        )
        self.counters["delivered"] += 1
        if response.replayed:
            self.counters["replayed"] += 1
        elif response.error in ("conflict", "unauthorized", "malformed", "unavailable"):
            key = "conflicts" if response.error == "conflict" else response.error
            self.counters[key] += 1
        return OperatorResult(response, self.api.last_record, True, latency_ms)

    def _exchange(self, network) -> tuple[bool, float]:
        """Charge the operator→control round trip; ``(delivered, ms)``."""
        faults = network.faults
        saved_region = faults.active_region if faults is not None else None
        saved_stream = network.current_jitter_stream()
        if faults is not None:
            faults.active_region = self.region
        if self.jitter_rng is not None:
            network.set_jitter_stream(self.jitter_rng)
        try:
            if (
                faults is not None
                and self.endpoint_id is not None
                and not faults.server_reachable(self.endpoint_id)
            ):
                network.control_timeout(self.timeout_ms)
                self.counters["unreachable"] += 1
                return False, self.timeout_ms
            try:
                latency_ms = network.operator_control_exchange(
                    self.endpoint_id, fail_on_exhaustion=True
                )
            except NetworkTimeoutError:
                network.control_timeout(self.timeout_ms)
                self.counters["timeouts"] += 1
                return False, self.timeout_ms
            return True, latency_ms
        finally:
            if self.jitter_rng is not None:
                network.set_jitter_stream(saved_stream)
            if faults is not None:
                faults.active_region = saved_region


@dataclass(frozen=True, slots=True)
class _PendingRequest:
    """A tape event whose request never arrived — retried next round with
    the same idempotency token."""

    event: ControlEvent
    token: str


@dataclass
class NetworkedControlPlayer:
    """Replays a control tape as operator API requests.

    Duck-type compatible with :class:`~repro.control.plane.ControlPlane`
    where the workload engine touches it: ``apply_until(now)`` returning
    the round's :class:`AppliedControlEvent` records, an ``applied`` list,
    and ``pending_events``.  The difference is delivery: an event whose
    request the network drops stays *pending* and is retried each
    subsequent round (same token — the API dedupes if the original
    actually landed), so the tape's intent eventually converges and the
    measured ``delivery_lags`` quantify how much later than scripted each
    op took effect.  An event the API *rejects* (conflict, unavailable
    target) is terminal, exactly like a plane-rejected tape event.
    """

    schedule: ControlSchedule
    client: OperatorClient
    applied: list[AppliedControlEvent] = field(default_factory=list)
    delivery_lags: list[float] = field(default_factory=list)
    retries: int = 0
    _cursor: int = 0
    _pending: list[_PendingRequest] = field(default_factory=list)

    @property
    def pending_events(self) -> int:
        return (len(self.schedule.events) - self._cursor) + len(self._pending)

    def apply_until(self, now: float) -> list[AppliedControlEvent]:
        """Issue every due event (and retry every lost one) at ``now``."""
        performed: list[AppliedControlEvent] = []
        still_pending: list[_PendingRequest] = []
        for pending in self._pending:
            self.retries += 1
            if not self._issue(pending.event, pending.token, performed):
                still_pending.append(pending)
        self._pending = still_pending

        events = self.schedule.events
        while self._cursor < len(events) and events[self._cursor].at_seconds <= now:
            event = events[self._cursor]
            self._cursor += 1
            token = self.client.next_token()
            if not self._issue(event, token, performed):
                self._pending.append(_PendingRequest(event=event, token=token))
        self.applied.extend(performed)
        return performed

    def _issue(
        self, event: ControlEvent, token: str, performed: list[AppliedControlEvent]
    ) -> bool:
        """One attempt; ``True`` when terminal (arrived), ``False`` to retry."""
        result = self.client.request(
            event.kind.value, event.server_id, event.value, token=token
        )
        if not result.arrived:
            return False
        record = result.record
        if record is None:
            # Arrived but produced no SRV record (e.g. rejected before
            # dispatch); synthesize the rejection at live state so the
            # tape's audit trail stays complete.
            record = AppliedControlEvent(
                self.client.api.federation.network.clock.now(),
                event.kind.value,
                event.server_id,
                applied=False,
                priority=result.response.priority,
                weight=result.response.weight,
            )
        performed.append(record)
        if record.applied:
            self.delivery_lags.append(max(0.0, record.at_seconds - event.at_seconds))
        return True

    def lag_stats(self) -> dict[str, float]:
        """Delivery-lag distribution (seconds) for applied tape events."""
        lags = sorted(self.delivery_lags)
        if not lags:
            return {"count": 0.0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}

        def pct(q: float) -> float:
            index = min(len(lags) - 1, int(q * len(lags)))
            return lags[index]

        return {
            "count": float(len(lags)),
            "mean": sum(lags) / len(lags),
            "p50": pct(0.50),
            "p95": pct(0.95),
            "max": lags[-1],
        }


@dataclass
class OperatorControlAdapter:
    """The autoscaler's ``apply_batch`` surface, routed through the API.

    A batch op whose request never arrives is recorded ``applied=False``
    at the target's live state and *not* retried: the autoscaler re-reads
    telemetry and re-decides next evaluation, so replaying a stale
    decision would be worse than dropping it.
    """

    client: OperatorClient
    applied: list[AppliedControlEvent] = field(default_factory=list)

    def apply_batch(
        self, now: float, ops: "list[ControlOp] | tuple[ControlOp, ...]"
    ) -> list[AppliedControlEvent]:
        performed: list[AppliedControlEvent] = []
        for op in ops:
            result = self.client.request(op.kind.value, op.server_id, op.value)
            record = result.record
            if record is None:
                federation = self.client.api.federation
                try:
                    priority, weight = federation.srv_of(op.server_id)
                except Exception:
                    priority, weight = 0, 0
                record = AppliedControlEvent(
                    now,
                    op.kind.value,
                    op.server_id,
                    applied=False,
                    priority=priority,
                    weight=weight,
                )
            performed.append(record)
        self.applied.extend(performed)
        return performed
