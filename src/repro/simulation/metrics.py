"""Lightweight metric collection used by benchmarks and experiments."""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Iterable


@dataclass
class Counter:
    """A named monotonically increasing counter."""

    name: str
    value: int = 0

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount


@dataclass
class Summary:
    """Streaming summary statistics (count, mean, min, max, stddev).

    The variance is tracked with Welford's online algorithm: the naive
    ``total_squares/count − mean²`` formula catastrophically cancels for
    large-magnitude observations with small spread (e.g. timestamps around
    1e9 with millisecond jitter lose *all* precision, often going negative
    before any clamp).  Welford accumulates the centered second moment
    directly, so the spread survives regardless of magnitude.  ``mean``
    stays ``total/count`` — bit-for-bit what it always was — so committed
    benchmark artifacts that carry means are untouched by the fix.
    """

    name: str
    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf
    _welford_mean: float = field(default=0.0, repr=False)
    _welford_m2: float = field(default=0.0, repr=False)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        delta = value - self._welford_mean
        self._welford_mean += delta / self.count
        self._welford_m2 += delta * (value - self._welford_mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def observe_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def stddev(self) -> float:
        if self.count < 2:
            return 0.0
        return math.sqrt(max(0.0, self._welford_m2 / self.count))

    def snapshot(self) -> dict[str, float]:
        """This summary's statistics, keyed ``<name>.<stat>``.

        An empty summary reports 0.0 for min/max rather than the ±inf
        sentinels used internally, so snapshots stay printable and
        comparable.
        """
        empty = self.count == 0
        return {
            f"{self.name}.mean": self.mean,
            f"{self.name}.count": float(self.count),
            f"{self.name}.min": 0.0 if empty else self.minimum,
            f"{self.name}.max": 0.0 if empty else self.maximum,
            f"{self.name}.stddev": self.stddev,
        }


def _streaming_bounds() -> list[float]:
    """Log-spaced bucket upper bounds shared by every streaming histogram.

    48 buckets per decade over 1e-3 .. 1e7 (latencies in ms, route lengths
    in meters, convergence times in seconds all fit) gives a worst-case
    relative quantile error of ``10**(1/48) − 1 ≈ 4.9%`` per bucket —
    comfortably inside the tolerance the exact-vs-streaming agreement test
    asserts.  Values at or below the lowest bound share the first bucket;
    values above the highest share the overflow bucket.
    """
    per_decade = 48
    return [10.0 ** (-3.0 + i / per_decade) for i in range(10 * per_decade + 1)]


_STREAM_BOUNDS: list[float] = _streaming_bounds()


@dataclass
class Histogram:
    """A value histogram that reports percentiles (p50/p95/p99).

    Two storage modes:

    * **exact** (default): every raw observation is kept and percentiles are
      exact.  Fine at the small-fleet simulation scale (thousands of requests
      per run) — and byte-stable, which the committed benchmark artifacts
      rely on.
    * **streaming** (``streaming=True``): observations land in fixed
      log-spaced buckets with (possibly weighted) counts, so memory stays
      O(buckets) no matter how many observations arrive — a million-client
      sweep would otherwise retain tens of millions of raw floats.
      Percentiles are interpolated within the containing bucket (error
      bounded by the bucket's relative width); weighted observation is what
      the cohort fast path uses to record one tracer's latency on behalf of
      its whole cohort.
    """

    name: str
    streaming: bool = False
    values: list[float] = field(default_factory=list)
    _sorted: list[float] | None = field(default=None, repr=False, compare=False)
    _bucket_weights: dict[int, float] = field(default_factory=dict, repr=False, compare=False)
    _total_weight: float = field(default=0.0, repr=False, compare=False)
    _weighted_sum: float = field(default=0.0, repr=False, compare=False)
    _minimum: float = field(default=math.inf, repr=False, compare=False)
    _maximum: float = field(default=-math.inf, repr=False, compare=False)

    def observe(self, value: float, weight: float = 1.0) -> None:
        if weight < 0.0:
            raise ValueError("observation weight cannot be negative")
        if self.streaming:
            if weight == 0.0:
                return
            index = bisect_left(_STREAM_BOUNDS, value)
            self._bucket_weights[index] = self._bucket_weights.get(index, 0.0) + weight
            self._total_weight += weight
            self._weighted_sum += value * weight
            self._minimum = min(self._minimum, value)
            self._maximum = max(self._maximum, value)
            return
        if weight != int(weight):
            raise ValueError("exact histograms take integral weights")
        if weight == 1.0:
            self.values.append(value)
        else:
            self.values.extend([value] * int(weight))
        self._sorted = None

    def observe_many(self, values: Iterable[float]) -> None:
        if self.streaming:
            for value in values:
                self.observe(value)
            return
        self.values.extend(values)
        self._sorted = None

    @property
    def count(self) -> int:
        if self.streaming:
            return int(round(self._total_weight))
        return len(self.values)

    @property
    def mean(self) -> float:
        if self.streaming:
            return self._weighted_sum / self._total_weight if self._total_weight else 0.0
        return sum(self.values) / len(self.values) if self.values else 0.0

    def quantile(self, fraction: float) -> float:
        """The ``fraction`` percentile of the observations (0.0 when empty).

        Exact mode interpolates over the sorted raw values (the sorted copy
        is cached between observations, so reading several percentiles of
        one histogram sorts once); streaming mode interpolates within the
        bucket containing the target cumulative weight.
        """
        if not (0.0 <= fraction <= 1.0):
            raise ValueError("fraction must be in [0, 1]")
        if self.streaming:
            return self._streaming_quantile(fraction)
        if not self.values:
            return 0.0
        if self._sorted is None:
            self._sorted = sorted(self.values)
        return _interpolate(self._sorted, fraction)

    def _streaming_quantile(self, fraction: float) -> float:
        if not self._total_weight:
            return 0.0
        target = fraction * self._total_weight
        cumulative = 0.0
        for index in sorted(self._bucket_weights):
            bucket_weight = self._bucket_weights[index]
            if cumulative + bucket_weight >= target:
                low = _STREAM_BOUNDS[index - 1] if index > 0 else self._minimum
                high = (
                    _STREAM_BOUNDS[index]
                    if index < len(_STREAM_BOUNDS)
                    else self._maximum
                )
                # Clamp the bucket to the observed range so single-bucket
                # histograms report the actual values, not bucket edges.
                low = max(low, self._minimum)
                high = min(high, self._maximum)
                if bucket_weight <= 0.0 or high <= low:
                    return high
                position = (target - cumulative) / bucket_weight
                return low + (high - low) * position
            cumulative += bucket_weight
        return self._maximum

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s observations into this histogram.

        Streaming histograms merge bucket-wise — all streaming histograms
        share one global bucket layout, so the merge is exact with respect
        to bucketing: merging two histograms yields byte-for-byte the
        histogram that observing the union stream would have built.  That
        mergeability is what lets the telemetry pipeline fold adjacent
        windows together when downsampling retention.  A streaming
        histogram can also absorb an exact one (its raw values are simply
        observed); the reverse would silently fabricate raw values from
        buckets, so it raises instead.
        """
        if self.streaming:
            if other.streaming:
                for index, weight in other._bucket_weights.items():
                    self._bucket_weights[index] = self._bucket_weights.get(index, 0.0) + weight
                self._total_weight += other._total_weight
                self._weighted_sum += other._weighted_sum
                self._minimum = min(self._minimum, other._minimum)
                self._maximum = max(self._maximum, other._maximum)
            else:
                for value in other.values:
                    self.observe(value)
            return
        if other.streaming:
            raise ValueError("cannot merge a streaming histogram into an exact one")
        self.values.extend(other.values)
        self._sorted = None

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def snapshot(self) -> dict[str, float]:
        """Count, mean and tail percentiles, keyed ``<name>.<stat>``."""
        return {
            f"{self.name}.count": float(self.count),
            f"{self.name}.mean": self.mean,
            f"{self.name}.p50": self.p50,
            f"{self.name}.p95": self.p95,
            f"{self.name}.p99": self.p99,
        }


@dataclass
class MetricsRegistry:
    """A namespace of counters, summaries and histograms for one run."""

    counters: dict[str, Counter] = field(default_factory=dict)
    summaries: dict[str, Summary] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)
    streaming_histograms: bool = False
    """Create histograms in bounded streaming mode (the large-fleet cohort
    sweep sets this so a million-client run keeps O(buckets) memory per
    histogram instead of one float per observation)."""

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def summary(self, name: str) -> Summary:
        if name not in self.summaries:
            self.summaries[name] = Summary(name)
        return self.summaries[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self.histograms:
            self.histograms[name] = Histogram(name, streaming=self.streaming_histograms)
        return self.histograms[name]

    def snapshot(self) -> dict[str, float]:
        """Flat dict of every metric, suitable for printing a results row."""
        data: dict[str, float] = {}
        for counter in self.counters.values():
            data[counter.name] = float(counter.value)
        for summary in self.summaries.values():
            data.update(summary.snapshot())
        for histogram in self.histograms.values():
            data.update(histogram.snapshot())
        return data

    def reset(self) -> None:
        self.counters.clear()
        self.summaries.clear()
        self.histograms.clear()


def percentile(values: list[float], fraction: float) -> float:
    """The ``fraction`` percentile (0..1) of ``values`` by linear interpolation."""
    if not values:
        raise ValueError("cannot take a percentile of no values")
    if not (0.0 <= fraction <= 1.0):
        raise ValueError("fraction must be in [0, 1]")
    return _interpolate(sorted(values), fraction)


def _interpolate(ordered: list[float], fraction: float) -> float:
    """Linear-interpolated percentile of an already-sorted list."""
    if len(ordered) == 1:
        return ordered[0]
    rank = fraction * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    weight = rank - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight
