"""Lightweight metric collection used by benchmarks and experiments."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable


@dataclass
class Counter:
    """A named monotonically increasing counter."""

    name: str
    value: int = 0

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount


@dataclass
class Summary:
    """Streaming summary statistics (count, mean, min, max, stddev)."""

    name: str
    count: int = 0
    total: float = 0.0
    total_squares: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.total_squares += value * value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def observe_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def stddev(self) -> float:
        if self.count < 2:
            return 0.0
        variance = self.total_squares / self.count - self.mean**2
        return math.sqrt(max(0.0, variance))


@dataclass
class MetricsRegistry:
    """A namespace of counters and summaries for one experiment run."""

    counters: dict[str, Counter] = field(default_factory=dict)
    summaries: dict[str, Summary] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def summary(self, name: str) -> Summary:
        if name not in self.summaries:
            self.summaries[name] = Summary(name)
        return self.summaries[name]

    def snapshot(self) -> dict[str, float]:
        """Flat dict of every metric, suitable for printing a results row."""
        data: dict[str, float] = {}
        for counter in self.counters.values():
            data[counter.name] = float(counter.value)
        for summary in self.summaries.values():
            data[f"{summary.name}.mean"] = summary.mean
            data[f"{summary.name}.count"] = float(summary.count)
            if summary.count:
                data[f"{summary.name}.min"] = summary.minimum
                data[f"{summary.name}.max"] = summary.maximum
        return data

    def reset(self) -> None:
        self.counters.clear()
        self.summaries.clear()


def percentile(values: list[float], fraction: float) -> float:
    """The ``fraction`` percentile (0..1) of ``values`` by linear interpolation."""
    if not values:
        raise ValueError("cannot take a percentile of no values")
    if not (0.0 <= fraction <= 1.0):
        raise ValueError("fraction must be in [0, 1]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = fraction * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    weight = rank - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight
