"""Lightweight metric collection used by benchmarks and experiments."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable


@dataclass
class Counter:
    """A named monotonically increasing counter."""

    name: str
    value: int = 0

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount


@dataclass
class Summary:
    """Streaming summary statistics (count, mean, min, max, stddev)."""

    name: str
    count: int = 0
    total: float = 0.0
    total_squares: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.total_squares += value * value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def observe_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def stddev(self) -> float:
        if self.count < 2:
            return 0.0
        variance = self.total_squares / self.count - self.mean**2
        return math.sqrt(max(0.0, variance))

    def snapshot(self) -> dict[str, float]:
        """This summary's statistics, keyed ``<name>.<stat>``.

        An empty summary reports 0.0 for min/max rather than the ±inf
        sentinels used internally, so snapshots stay printable and
        comparable.
        """
        empty = self.count == 0
        return {
            f"{self.name}.mean": self.mean,
            f"{self.name}.count": float(self.count),
            f"{self.name}.min": 0.0 if empty else self.minimum,
            f"{self.name}.max": 0.0 if empty else self.maximum,
            f"{self.name}.stddev": self.stddev,
        }


@dataclass
class Histogram:
    """A value histogram that reports percentiles (p50/p95/p99).

    The simulation scale (thousands of requests per run) makes it fine to
    keep raw observations; percentiles are exact, not approximated.
    """

    name: str
    values: list[float] = field(default_factory=list)
    _sorted: list[float] | None = field(default=None, repr=False, compare=False)

    def observe(self, value: float) -> None:
        self.values.append(value)
        self._sorted = None

    def observe_many(self, values: Iterable[float]) -> None:
        self.values.extend(values)
        self._sorted = None

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0

    def quantile(self, fraction: float) -> float:
        """The ``fraction`` percentile of the observations (0.0 when empty).

        The sorted copy is cached between observations, so reading several
        percentiles of one histogram (snapshot, p50/p95/p99) sorts once.
        """
        if not self.values:
            return 0.0
        if not (0.0 <= fraction <= 1.0):
            raise ValueError("fraction must be in [0, 1]")
        if self._sorted is None:
            self._sorted = sorted(self.values)
        return _interpolate(self._sorted, fraction)

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def snapshot(self) -> dict[str, float]:
        """Count, mean and tail percentiles, keyed ``<name>.<stat>``."""
        return {
            f"{self.name}.count": float(self.count),
            f"{self.name}.mean": self.mean,
            f"{self.name}.p50": self.p50,
            f"{self.name}.p95": self.p95,
            f"{self.name}.p99": self.p99,
        }


@dataclass
class MetricsRegistry:
    """A namespace of counters, summaries and histograms for one run."""

    counters: dict[str, Counter] = field(default_factory=dict)
    summaries: dict[str, Summary] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def summary(self, name: str) -> Summary:
        if name not in self.summaries:
            self.summaries[name] = Summary(name)
        return self.summaries[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self.histograms:
            self.histograms[name] = Histogram(name)
        return self.histograms[name]

    def snapshot(self) -> dict[str, float]:
        """Flat dict of every metric, suitable for printing a results row."""
        data: dict[str, float] = {}
        for counter in self.counters.values():
            data[counter.name] = float(counter.value)
        for summary in self.summaries.values():
            data.update(summary.snapshot())
        for histogram in self.histograms.values():
            data.update(histogram.snapshot())
        return data

    def reset(self) -> None:
        self.counters.clear()
        self.summaries.clear()
        self.histograms.clear()


def percentile(values: list[float], fraction: float) -> float:
    """The ``fraction`` percentile (0..1) of ``values`` by linear interpolation."""
    if not values:
        raise ValueError("cannot take a percentile of no values")
    if not (0.0 <= fraction <= 1.0):
        raise ValueError("fraction must be in [0, 1]")
    return _interpolate(sorted(values), fraction)


def _interpolate(ordered: list[float], fraction: float) -> float:
    """Linear-interpolated percentile of an already-sorted list."""
    if len(ordered) == 1:
        return ordered[0]
    rank = fraction * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    weight = rank - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight
