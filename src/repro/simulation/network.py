"""A simulated network for counting messages and accumulating latency.

The paper's argument for DNS-based discovery rests on message counts and
cacheability rather than raw bandwidth, so the network model is simple: each
logical link has a fixed one-way latency, and every message sent over it is
counted and charged against a simulated clock.

Two optional refinements serve the fleet-scale experiments:

* **Jitter/loss** — ``LatencyModel.jitter_sigma`` draws a lognormal
  multiplier per exchange and ``loss_probability`` retransmits lost
  exchanges, both from a deterministic RNG stream that the workload engine
  reseeds per client (so every device sees its own reproducible network).
* **Server processing** — :meth:`SimulatedNetwork.server_processing` charges
  server-side queueing + service time (see
  :mod:`repro.simulation.queueing`) into the same latency accounting,
  without counting a network message.

Correlated failures are expressed through :class:`NetworkFaultState`, a
bag of *primitives* — region↔server partitions, per-server gray failures
(latency multiplier and/or loss burst), and dark DNS authorities — that
:mod:`repro.faults` drives from deterministic fault tapes.  The network
deliberately knows nothing about fault *schedules*; it only answers "is
this link up, and how lossy is it, right now?".  With no fault state
attached (the default), every path through this module is byte-identical
to the fault-free implementation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.simulation.clock import SimulatedClock

DEFAULT_LOCAL_LATENCY_MS = 0.1
DEFAULT_LAN_LATENCY_MS = 1.0
DEFAULT_WAN_LATENCY_MS = 25.0

DEFAULT_MAX_RETRANSMITS = 8
"""Retry bound per exchange so a high loss probability cannot loop forever."""


class NetworkTimeoutError(Exception):
    """An exchange exhausted its retransmit budget and was abandoned.

    Raised only on opt-in (``fail_on_exhaustion=True``) paths — the failover
    executor — so legacy transparent-retry callers keep their draw-for-draw
    behaviour.  The raising exchange charges nothing; the caller decides what
    an abandoned request costs (typically a retry-policy attempt timeout).
    """

    def __init__(self, server_id: str | None = None) -> None:
        self.server_id = server_id
        where = f" to {server_id}" if server_id else ""
        super().__init__(f"exchange{where} exhausted its retransmit budget")


@dataclass(frozen=True, slots=True)
class LatencyModel:
    """Per-hop one-way latencies between classes of endpoints (milliseconds).

    ``jitter_sigma`` > 0 turns every exchange's latency into
    ``base * Lognormal(0, sigma)``; ``loss_probability`` > 0 makes each
    exchange independently lose its datagram with that probability and pay a
    full extra (jittered) round trip per retransmission, bounded by
    ``max_retransmits``.  Both default to off, keeping the historical
    fixed-latency behaviour bit-for-bit.
    """

    client_to_resolver_ms: float = DEFAULT_LAN_LATENCY_MS
    resolver_to_authority_ms: float = DEFAULT_WAN_LATENCY_MS
    client_to_map_server_ms: float = DEFAULT_WAN_LATENCY_MS
    client_to_central_ms: float = DEFAULT_WAN_LATENCY_MS
    local_compute_ms: float = DEFAULT_LOCAL_LATENCY_MS
    jitter_sigma: float = 0.0
    loss_probability: float = 0.0
    max_retransmits: int = DEFAULT_MAX_RETRANSMITS
    operator_to_control_ms: float = DEFAULT_WAN_LATENCY_MS
    """Operator console → control endpoint hop, used only by the operator
    API's ``transport="network"`` path.  Appended last so existing
    positional constructions keep their meaning."""

    def __post_init__(self) -> None:
        if self.jitter_sigma < 0.0:
            raise ValueError("jitter sigma cannot be negative")
        if not (0.0 <= self.loss_probability < 1.0):
            raise ValueError("loss probability must be in [0, 1)")
        if self.max_retransmits < 0:
            raise ValueError("max retransmits cannot be negative")

    @property
    def is_stochastic(self) -> bool:
        return self.jitter_sigma > 0.0 or self.loss_probability > 0.0


@dataclass(frozen=True, slots=True)
class GrayFailure:
    """A degraded-but-alive server: slower and/or lossier, not down.

    Gray failures are the failures monitoring misses — the server answers
    health checks but every exchange with it pays ``latency_multiplier``
    and suffers ``loss_probability`` (whichever of the gray and base loss
    rates is worse applies).
    """

    latency_multiplier: float = 1.0
    loss_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.latency_multiplier < 1.0:
            raise ValueError("a gray failure cannot speed a server up")
        if not (0.0 <= self.loss_probability < 1.0):
            raise ValueError("gray loss probability must be in [0, 1)")
        if self.latency_multiplier == 1.0 and self.loss_probability == 0.0:
            raise ValueError("a gray failure must degrade something")


@dataclass
class NetworkFaultState:
    """Mutable fault primitives a :class:`SimulatedNetwork` consults per call.

    The fault *tape* machinery lives in :mod:`repro.faults` (which drives
    these setters); the network only holds current truth.  ``active_region``
    is the region of the client currently on the wire — the workload engine
    sets it around each device's requests so region-scoped partitions know
    which side of the cut the caller is on.  A client with no region
    (``active_region is None``) is outside every region-scoped partition.
    """

    active_region: int | None = None
    dns_timeout_ms: float = 300.0
    _blocked_all: set[str] = field(default_factory=set)
    _blocked_regions: dict[str, set[int]] = field(default_factory=dict)
    _gray: dict[str, GrayFailure] = field(default_factory=dict)
    _authorities_down: set[str] = field(default_factory=set)

    # -- partitions ----------------------------------------------------
    def block(self, server_id: str, regions: tuple[int, ...] | None = None) -> bool:
        """Open a partition between ``server_id`` and clients (or regions)."""
        if not regions:
            if server_id in self._blocked_all:
                return False
            self._blocked_all.add(server_id)
            return True
        cut = self._blocked_regions.setdefault(server_id, set())
        before = len(cut)
        cut.update(regions)
        return len(cut) > before

    def unblock(self, server_id: str, regions: tuple[int, ...] | None = None) -> bool:
        """Heal a partition; returns False when nothing was blocked."""
        if not regions:
            changed = server_id in self._blocked_all
            self._blocked_all.discard(server_id)
            if self._blocked_regions.pop(server_id, None) is not None:
                changed = True
            return changed
        cut = self._blocked_regions.get(server_id)
        if not cut:
            return False
        before = len(cut)
        cut.difference_update(regions)
        if not cut:
            del self._blocked_regions[server_id]
        return len(cut or ()) < before

    def server_reachable(self, server_id: str) -> bool:
        if server_id in self._blocked_all:
            return False
        regions = self._blocked_regions.get(server_id)
        if regions and self.active_region is not None:
            return self.active_region not in regions
        return True

    # -- gray failures -------------------------------------------------
    def set_gray(self, server_id: str, gray: GrayFailure) -> bool:
        changed = self._gray.get(server_id) != gray
        self._gray[server_id] = gray
        return changed

    def clear_gray(self, server_id: str) -> bool:
        return self._gray.pop(server_id, None) is not None

    def gray_for(self, server_id: str) -> GrayFailure | None:
        return self._gray.get(server_id)

    # -- DNS authority outages -----------------------------------------
    def authority_down(self, server_id: str) -> bool:
        if server_id in self._authorities_down:
            return False
        self._authorities_down.add(server_id)
        return True

    def authority_up(self, server_id: str) -> bool:
        if server_id not in self._authorities_down:
            return False
        self._authorities_down.discard(server_id)
        return True

    def authority_is_down(self, server_id: str) -> bool:
        return server_id in self._authorities_down

    @property
    def any_active(self) -> bool:
        return bool(
            self._blocked_all
            or self._blocked_regions
            or self._gray
            or self._authorities_down
        )

    def active_fault_kinds(self) -> tuple[str, ...]:
        """Fault families currently in force at the network layer, sorted.

        The telemetry pipeline annotates each emission window with these so
        post-run queries can line up burn-rate spikes and shed-rate maps
        against what the world was doing.  Flash crowds live in the
        injector, not here — :meth:`repro.faults.FaultInjector.active_fault_kinds`
        adds that family on top.
        """
        kinds: list[str] = []
        if self._authorities_down:
            kinds.append("authority-outage")
        if self._gray:
            kinds.append("gray")
        if self._blocked_all or self._blocked_regions:
            kinds.append("partition")
        return tuple(sorted(kinds))


@dataclass
class NetworkStats:
    """Counters accumulated by a simulated network."""

    messages_sent: int = 0
    total_latency_ms: float = 0.0
    messages_by_kind: dict[str, int] = field(default_factory=dict)
    retransmissions: int = 0
    server_processing_ms: float = 0.0
    backoff_ms: float = 0.0

    def record(self, kind: str, latency_ms: float) -> None:
        self.messages_sent += 1
        self.total_latency_ms += latency_ms
        self.messages_by_kind[kind] = self.messages_by_kind.get(kind, 0) + 1

    def reset(self) -> None:
        self.messages_sent = 0
        self.total_latency_ms = 0.0
        self.messages_by_kind.clear()
        self.retransmissions = 0
        self.server_processing_ms = 0.0
        self.backoff_ms = 0.0


@dataclass
class SimulatedNetwork:
    """Tracks messages and advances a clock by their round-trip latencies."""

    clock: SimulatedClock = field(default_factory=SimulatedClock)
    latency: LatencyModel = field(default_factory=LatencyModel)
    stats: NetworkStats = field(default_factory=NetworkStats)
    jitter_seed: int = 0
    faults: NetworkFaultState | None = None
    _jitter_rng: random.Random | None = field(default=None, repr=False)

    def fault_state(self) -> NetworkFaultState:
        """The attached fault state, created on first use.

        Fault-free runs never call this, so ``faults`` stays ``None`` and
        every exchange skips the fault checks entirely.
        """
        if self.faults is None:
            self.faults = NetworkFaultState()
        return self.faults

    def server_reachable(self, server_id: str) -> bool:
        """Whether the active client can reach ``server_id`` right now."""
        return self.faults is None or self.faults.server_reachable(server_id)

    def reseed_jitter(self, stream_key: int) -> None:
        """Restart the jitter/loss RNG from a fresh deterministic stream.

        Convenience for single-client experiments and tests.  A fleet must
        NOT call this per client per round (each call restarts the stream and
        would replay the same draws); fleets hold one RNG per device and
        install it with :meth:`set_jitter_stream` instead.
        """
        if self.latency.is_stochastic:
            self.set_jitter_stream(random.Random((self.jitter_seed << 32) ^ stream_key))

    def set_jitter_stream(self, rng: random.Random | None) -> None:
        """Point the network at a caller-owned jitter RNG stream.

        The stream's state persists across calls: each workload device holds
        its own RNG and installs it before issuing requests, so a device's
        network draws form one continuous stream no matter how the fleet's
        requests interleave.
        """
        self._jitter_rng = rng

    def current_jitter_stream(self) -> random.Random | None:
        """The installed jitter RNG (for save/restore around a borrower).

        An operator client that injects its own stream for a control
        exchange uses this to put the fleet's stream back afterwards, so
        device draw sequences are untouched by control traffic.
        """
        return self._jitter_rng

    def _jittered(
        self,
        latency_ms: float,
        *,
        server_id: str | None = None,
        fail_on_exhaustion: bool = False,
    ) -> float:
        """One exchange's latency after jitter, gray failure and losses.

        Draw-for-draw compatible with the historical transparent-retry
        behaviour: the same RNG sequence is consumed for the same inputs.
        Only when the retransmit budget is exhausted *and* the caller opted
        in does one extra loss draw decide whether the exchange is abandoned
        (:class:`NetworkTimeoutError`, charging nothing).
        """
        gray = None
        if self.faults is not None and server_id is not None:
            gray = self.faults.gray_for(server_id)
        sigma = self.latency.jitter_sigma
        loss = self.latency.loss_probability
        if gray is not None:
            latency_ms *= gray.latency_multiplier
            loss = max(loss, gray.loss_probability)
        if sigma <= 0.0 and loss <= 0.0:
            return latency_ms
        if self._jitter_rng is None:
            self._jitter_rng = random.Random(self.jitter_seed)
        rng = self._jitter_rng
        cap = self.latency.max_retransmits
        total = latency_ms * (rng.lognormvariate(0.0, sigma) if sigma > 0.0 else 1.0)
        retries = 0
        while loss > 0.0 and retries < cap and rng.random() < loss:
            retries += 1
            total += latency_ms * (rng.lognormvariate(0.0, sigma) if sigma > 0.0 else 1.0)
        self.stats.retransmissions += retries
        if fail_on_exhaustion and loss > 0.0 and retries >= cap and rng.random() < loss:
            raise NetworkTimeoutError(server_id)
        return total

    def round_trip(
        self,
        kind: str,
        one_way_latency_ms: float,
        *,
        server_id: str | None = None,
        fail_on_exhaustion: bool = False,
    ) -> float:
        """Charge one request/response exchange and return its latency in ms."""
        latency_ms = self._jittered(
            2.0 * one_way_latency_ms,
            server_id=server_id,
            fail_on_exhaustion=fail_on_exhaustion,
        )
        self.clock.advance_ms(latency_ms)
        self.stats.record(kind, latency_ms)
        return latency_ms

    # Convenience wrappers for the hop classes used throughout the library.
    def client_resolver_exchange(self) -> float:
        return self.round_trip("dns.client_resolver", self.latency.client_to_resolver_ms)

    def resolver_authority_exchange(self) -> float:
        return self.round_trip("dns.resolver_authority", self.latency.resolver_to_authority_ms)

    def client_map_server_exchange(
        self, server_id: str | None = None, fail_on_exhaustion: bool = False
    ) -> float:
        return self.round_trip(
            "mapserver.request",
            self.latency.client_to_map_server_ms,
            server_id=server_id,
            fail_on_exhaustion=fail_on_exhaustion,
        )

    def client_central_exchange(self) -> float:
        return self.round_trip("central.request", self.latency.client_to_central_ms)

    def operator_control_exchange(
        self, endpoint_id: str | None = None, fail_on_exhaustion: bool = False
    ) -> float:
        """Charge one operator → control-endpoint request/response exchange.

        ``endpoint_id`` names the control endpoint so gray failures and
        partitions scoped to it apply, exactly as they do to data traffic.
        """
        return self.round_trip(
            "control.request",
            self.latency.operator_to_control_ms,
            server_id=endpoint_id,
            fail_on_exhaustion=fail_on_exhaustion,
        )

    def control_timeout(self, timeout_ms: float) -> float:
        """Charge one abandoned operator request (counted under
        ``control.timeout``): the operator paid its full patience and got
        no response, mirroring :meth:`dead_server_timeout` for the control
        hop."""
        if timeout_ms <= 0.0:
            return 0.0
        self.clock.advance_ms(timeout_ms)
        self.stats.record("control.timeout", timeout_ms)
        return timeout_ms

    def local_compute(self) -> float:
        """Charge a small local computation (no message is counted)."""
        self.clock.advance_ms(self.latency.local_compute_ms)
        return self.latency.local_compute_ms

    def client_backoff(self, delay_ms: float) -> float:
        """Charge a client-side retry backoff wait (no message is counted).

        The wait lands in ``total_latency_ms`` so client-observed request
        latency includes the pacing the retry policy imposed.
        """
        if delay_ms <= 0.0:
            return 0.0
        self.clock.advance_ms(delay_ms)
        self.stats.total_latency_ms += delay_ms
        self.stats.backoff_ms += delay_ms
        return delay_ms

    def dead_server_timeout(self, timeout_ms: float) -> float:
        """Charge one unanswered request to a dead map server.

        The attempt is a real message (counted under ``mapserver.timeout``)
        whose cost to the client is the full timeout, not a round trip —
        dead servers are *more* expensive to talk to than live ones.
        """
        if timeout_ms <= 0.0:
            return 0.0
        self.clock.advance_ms(timeout_ms)
        self.stats.record("mapserver.timeout", timeout_ms)
        return timeout_ms

    def dns_timeout(self, timeout_ms: float) -> float:
        """Charge one unanswered DNS query to a dark authority.

        Like :meth:`dead_server_timeout` but on the resolver→authority hop:
        the query is a real message (counted under ``dns.timeout``) whose
        cost is the resolver's full patience for the authority.
        """
        if timeout_ms <= 0.0:
            return 0.0
        self.clock.advance_ms(timeout_ms)
        self.stats.record("dns.timeout", timeout_ms)
        return timeout_ms

    def server_processing(self, latency_ms: float) -> float:
        """Charge server-side queueing + service time (no message is counted).

        The delay lands in ``total_latency_ms`` so client-observed request
        latency includes how loaded the serving map server was.
        """
        self.clock.advance_ms(latency_ms)
        self.stats.total_latency_ms += latency_ms
        self.stats.server_processing_ms += latency_ms
        return latency_ms

    def reset_stats(self) -> None:
        self.stats.reset()
