"""A simulated network for counting messages and accumulating latency.

The paper's argument for DNS-based discovery rests on message counts and
cacheability rather than raw bandwidth, so the network model is simple: each
logical link has a fixed one-way latency, and every message sent over it is
counted and charged against a simulated clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simulation.clock import SimulatedClock

DEFAULT_LOCAL_LATENCY_MS = 0.1
DEFAULT_LAN_LATENCY_MS = 1.0
DEFAULT_WAN_LATENCY_MS = 25.0


@dataclass(frozen=True, slots=True)
class LatencyModel:
    """Per-hop one-way latencies between classes of endpoints (milliseconds)."""

    client_to_resolver_ms: float = DEFAULT_LAN_LATENCY_MS
    resolver_to_authority_ms: float = DEFAULT_WAN_LATENCY_MS
    client_to_map_server_ms: float = DEFAULT_WAN_LATENCY_MS
    client_to_central_ms: float = DEFAULT_WAN_LATENCY_MS
    local_compute_ms: float = DEFAULT_LOCAL_LATENCY_MS


@dataclass
class NetworkStats:
    """Counters accumulated by a simulated network."""

    messages_sent: int = 0
    total_latency_ms: float = 0.0
    messages_by_kind: dict[str, int] = field(default_factory=dict)

    def record(self, kind: str, latency_ms: float) -> None:
        self.messages_sent += 1
        self.total_latency_ms += latency_ms
        self.messages_by_kind[kind] = self.messages_by_kind.get(kind, 0) + 1

    def reset(self) -> None:
        self.messages_sent = 0
        self.total_latency_ms = 0.0
        self.messages_by_kind.clear()


@dataclass
class SimulatedNetwork:
    """Tracks messages and advances a clock by their round-trip latencies."""

    clock: SimulatedClock = field(default_factory=SimulatedClock)
    latency: LatencyModel = field(default_factory=LatencyModel)
    stats: NetworkStats = field(default_factory=NetworkStats)

    def round_trip(self, kind: str, one_way_latency_ms: float) -> float:
        """Charge one request/response exchange and return its latency in ms."""
        latency_ms = 2.0 * one_way_latency_ms
        self.clock.advance_ms(latency_ms)
        self.stats.record(kind, latency_ms)
        return latency_ms

    # Convenience wrappers for the hop classes used throughout the library.
    def client_resolver_exchange(self) -> float:
        return self.round_trip("dns.client_resolver", self.latency.client_to_resolver_ms)

    def resolver_authority_exchange(self) -> float:
        return self.round_trip("dns.resolver_authority", self.latency.resolver_to_authority_ms)

    def client_map_server_exchange(self) -> float:
        return self.round_trip("mapserver.request", self.latency.client_to_map_server_ms)

    def client_central_exchange(self) -> float:
        return self.round_trip("central.request", self.latency.client_to_central_ms)

    def local_compute(self) -> float:
        """Charge a small local computation (no message is counted)."""
        self.clock.advance_ms(self.latency.local_compute_ms)
        return self.latency.local_compute_ms

    def reset_stats(self) -> None:
        self.stats.reset()
