"""A simulated network for counting messages and accumulating latency.

The paper's argument for DNS-based discovery rests on message counts and
cacheability rather than raw bandwidth, so the network model is simple: each
logical link has a fixed one-way latency, and every message sent over it is
counted and charged against a simulated clock.

Two optional refinements serve the fleet-scale experiments:

* **Jitter/loss** — ``LatencyModel.jitter_sigma`` draws a lognormal
  multiplier per exchange and ``loss_probability`` retransmits lost
  exchanges, both from a deterministic RNG stream that the workload engine
  reseeds per client (so every device sees its own reproducible network).
* **Server processing** — :meth:`SimulatedNetwork.server_processing` charges
  server-side queueing + service time (see
  :mod:`repro.simulation.queueing`) into the same latency accounting,
  without counting a network message.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.simulation.clock import SimulatedClock

DEFAULT_LOCAL_LATENCY_MS = 0.1
DEFAULT_LAN_LATENCY_MS = 1.0
DEFAULT_WAN_LATENCY_MS = 25.0

_MAX_RETRANSMISSIONS = 8
"""Retry bound per exchange so a high loss probability cannot loop forever."""


@dataclass(frozen=True, slots=True)
class LatencyModel:
    """Per-hop one-way latencies between classes of endpoints (milliseconds).

    ``jitter_sigma`` > 0 turns every exchange's latency into
    ``base * Lognormal(0, sigma)``; ``loss_probability`` > 0 makes each
    exchange independently lose its datagram with that probability and pay a
    full extra (jittered) round trip per retransmission.  Both default to
    off, keeping the historical fixed-latency behaviour bit-for-bit.
    """

    client_to_resolver_ms: float = DEFAULT_LAN_LATENCY_MS
    resolver_to_authority_ms: float = DEFAULT_WAN_LATENCY_MS
    client_to_map_server_ms: float = DEFAULT_WAN_LATENCY_MS
    client_to_central_ms: float = DEFAULT_WAN_LATENCY_MS
    local_compute_ms: float = DEFAULT_LOCAL_LATENCY_MS
    jitter_sigma: float = 0.0
    loss_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.jitter_sigma < 0.0:
            raise ValueError("jitter sigma cannot be negative")
        if not (0.0 <= self.loss_probability < 1.0):
            raise ValueError("loss probability must be in [0, 1)")

    @property
    def is_stochastic(self) -> bool:
        return self.jitter_sigma > 0.0 or self.loss_probability > 0.0


@dataclass
class NetworkStats:
    """Counters accumulated by a simulated network."""

    messages_sent: int = 0
    total_latency_ms: float = 0.0
    messages_by_kind: dict[str, int] = field(default_factory=dict)
    retransmissions: int = 0
    server_processing_ms: float = 0.0
    backoff_ms: float = 0.0

    def record(self, kind: str, latency_ms: float) -> None:
        self.messages_sent += 1
        self.total_latency_ms += latency_ms
        self.messages_by_kind[kind] = self.messages_by_kind.get(kind, 0) + 1

    def reset(self) -> None:
        self.messages_sent = 0
        self.total_latency_ms = 0.0
        self.messages_by_kind.clear()
        self.retransmissions = 0
        self.server_processing_ms = 0.0
        self.backoff_ms = 0.0


@dataclass
class SimulatedNetwork:
    """Tracks messages and advances a clock by their round-trip latencies."""

    clock: SimulatedClock = field(default_factory=SimulatedClock)
    latency: LatencyModel = field(default_factory=LatencyModel)
    stats: NetworkStats = field(default_factory=NetworkStats)
    jitter_seed: int = 0
    _jitter_rng: random.Random | None = field(default=None, repr=False)

    def reseed_jitter(self, stream_key: int) -> None:
        """Restart the jitter/loss RNG from a fresh deterministic stream.

        Convenience for single-client experiments and tests.  A fleet must
        NOT call this per client per round (each call restarts the stream and
        would replay the same draws); fleets hold one RNG per device and
        install it with :meth:`set_jitter_stream` instead.
        """
        if self.latency.is_stochastic:
            self.set_jitter_stream(random.Random((self.jitter_seed << 32) ^ stream_key))

    def set_jitter_stream(self, rng: random.Random | None) -> None:
        """Point the network at a caller-owned jitter RNG stream.

        The stream's state persists across calls: each workload device holds
        its own RNG and installs it before issuing requests, so a device's
        network draws form one continuous stream no matter how the fleet's
        requests interleave.
        """
        self._jitter_rng = rng

    def _jittered(self, latency_ms: float) -> float:
        """One exchange's latency after jitter and (retransmitted) losses."""
        if not self.latency.is_stochastic:
            return latency_ms
        if self._jitter_rng is None:
            self._jitter_rng = random.Random(self.jitter_seed)
        rng = self._jitter_rng
        sigma = self.latency.jitter_sigma
        loss = self.latency.loss_probability
        total = latency_ms * (rng.lognormvariate(0.0, sigma) if sigma > 0.0 else 1.0)
        retries = 0
        while loss > 0.0 and retries < _MAX_RETRANSMISSIONS and rng.random() < loss:
            retries += 1
            total += latency_ms * (rng.lognormvariate(0.0, sigma) if sigma > 0.0 else 1.0)
        self.stats.retransmissions += retries
        return total

    def round_trip(self, kind: str, one_way_latency_ms: float) -> float:
        """Charge one request/response exchange and return its latency in ms."""
        latency_ms = self._jittered(2.0 * one_way_latency_ms)
        self.clock.advance_ms(latency_ms)
        self.stats.record(kind, latency_ms)
        return latency_ms

    # Convenience wrappers for the hop classes used throughout the library.
    def client_resolver_exchange(self) -> float:
        return self.round_trip("dns.client_resolver", self.latency.client_to_resolver_ms)

    def resolver_authority_exchange(self) -> float:
        return self.round_trip("dns.resolver_authority", self.latency.resolver_to_authority_ms)

    def client_map_server_exchange(self) -> float:
        return self.round_trip("mapserver.request", self.latency.client_to_map_server_ms)

    def client_central_exchange(self) -> float:
        return self.round_trip("central.request", self.latency.client_to_central_ms)

    def local_compute(self) -> float:
        """Charge a small local computation (no message is counted)."""
        self.clock.advance_ms(self.latency.local_compute_ms)
        return self.latency.local_compute_ms

    def client_backoff(self, delay_ms: float) -> float:
        """Charge a client-side retry backoff wait (no message is counted).

        The wait lands in ``total_latency_ms`` so client-observed request
        latency includes the pacing the retry policy imposed.
        """
        if delay_ms <= 0.0:
            return 0.0
        self.clock.advance_ms(delay_ms)
        self.stats.total_latency_ms += delay_ms
        self.stats.backoff_ms += delay_ms
        return delay_ms

    def dead_server_timeout(self, timeout_ms: float) -> float:
        """Charge one unanswered request to a dead map server.

        The attempt is a real message (counted under ``mapserver.timeout``)
        whose cost to the client is the full timeout, not a round trip —
        dead servers are *more* expensive to talk to than live ones.
        """
        if timeout_ms <= 0.0:
            return 0.0
        self.clock.advance_ms(timeout_ms)
        self.stats.record("mapserver.timeout", timeout_ms)
        return timeout_ms

    def server_processing(self, latency_ms: float) -> float:
        """Charge server-side queueing + service time (no message is counted).

        The delay lands in ``total_latency_ms`` so client-observed request
        latency includes how loaded the serving map server was.
        """
        self.clock.advance_ms(latency_ms)
        self.stats.total_latency_ms += latency_ms
        self.stats.server_processing_ms += latency_ms
        return latency_ms

    def reset_stats(self) -> None:
        self.stats.reset()
