"""Server-side load model: per-server service times and a bounded queue.

The single-request experiments treat every map server as infinitely fast —
useful for isolating discovery and network costs, but useless for answering
the fleet-scale question of *where map servers saturate*.  This module adds
the missing half: each map server owns a :class:`ServerQueue` that models a
single logical worker with deterministic per-request-kind service times and a
bounded FIFO queue.

The model is deliberately simple and exactly reproducible:

* A request arriving at simulated time ``t`` starts service at
  ``max(t, busy_until)`` — it waits behind every request still outstanding.
* Requests arriving while ``capacity`` requests are outstanding are dropped
  (load shedding); callers surface the drop as
  :class:`ServerOverloadedError` and clients fall back to other servers.
* Waiting time plus service time is charged against the simulated network's
  latency accounting, so client-observed percentiles include queueing delay.

The model composes with the workload engine's concurrent-round clock: the
engine rewinds the clock between clients of one round, so the server sees
its round's requests *out of processing order* but with true (overlapping)
arrival timestamps.  The queue therefore keeps the server's schedule as a
sorted list of busy intervals and places each request into the earliest
idle slot at or after its own arrival: two requests contend only when their
arrival instants genuinely overlap the same busy period, never merely
because one was simulated after the other.
"""

from __future__ import annotations

import math
from bisect import bisect_right, insort
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (network imports nothing here)
    from repro.simulation.network import SimulatedNetwork


class ServerOverloadedError(Exception):
    """Raised when a map server's bounded queue rejects a request."""


def load_cv(values: Sequence[float]) -> float:
    """Coefficient of variation (population std / mean) of a load vector.

    The balance metric for a replica group: per-replica utilizations of
    ``[u, u, u, u]`` give 0.0 (perfectly spread); ``[u, 0, 0, 0]`` — the
    first-healthy funnel — gives ``sqrt(3) ≈ 1.73``.  Zero (or empty) load
    is reported as perfectly balanced rather than dividing by zero.
    """
    if len(values) < 2:
        return 0.0
    mean = sum(values) / len(values)
    if mean <= 0.0:
        return 0.0
    variance = sum((value - mean) ** 2 for value in values) / len(values)
    return math.sqrt(variance) / mean


@dataclass(frozen=True)
class ServiceTimeModel:
    """Deterministic service times per request kind, in milliseconds.

    ``per_kind_ms`` overrides the ``default_ms`` for specific request kinds
    (the :class:`repro.mapserver.policy.ServiceName` values).  Routing is
    typically the most expensive service, tile fetches the cheapest.
    """

    default_ms: float = 2.0
    per_kind_ms: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.default_ms < 0.0:
            raise ValueError("service time cannot be negative")
        if any(ms < 0.0 for ms in self.per_kind_ms.values()):
            raise ValueError("service time cannot be negative")

    def service_ms(self, kind: str) -> float:
        return self.per_kind_ms.get(kind, self.default_ms)


@dataclass
class QueueStats:
    """Accounting for one server's queue over a run."""

    arrivals: int = 0
    served: int = 0
    dropped: int = 0
    busy_ms: float = 0.0
    wait_ms_total: float = 0.0
    depth_total: int = 0
    max_depth: int = 0

    @property
    def drop_rate(self) -> float:
        return self.dropped / self.arrivals if self.arrivals else 0.0

    @property
    def mean_wait_ms(self) -> float:
        return self.wait_ms_total / self.served if self.served else 0.0

    @property
    def mean_depth(self) -> float:
        """Mean queue depth observed by admitted arrivals."""
        admitted = self.arrivals - self.dropped
        return self.depth_total / admitted if admitted else 0.0

    def utilization(self, window_seconds: float, workers: int = 1) -> float:
        """Fraction of ``window_seconds`` each worker spent serving requests.

        With ``workers`` > 1 the busy time is normalized per worker, so 1.0
        always means "every worker saturated".  Not clamped: a value near
        (or briefly above) 1.0 means the offered load saturated the server —
        the knee the fleet sweeps look for.
        """
        if window_seconds <= 0.0:
            return 0.0
        return self.busy_ms / (window_seconds * 1000.0 * max(1, workers))

    def snapshot(self, window_seconds: float | None = None, workers: int = 1) -> dict[str, float]:
        data = {
            "arrivals": float(self.arrivals),
            "served": float(self.served),
            "dropped": float(self.dropped),
            "drop_rate": self.drop_rate,
            "busy_ms": self.busy_ms,
            "mean_wait_ms": self.mean_wait_ms,
            "mean_depth": self.mean_depth,
            "max_depth": float(self.max_depth),
        }
        if window_seconds is not None:
            data["utilization"] = self.utilization(window_seconds, workers)
        return data


class _WorkerFull(Exception):
    """Internal: one worker's bounded buffer rejected a placement probe."""


@dataclass
class _WorkerSchedule:
    """One worker's committed busy intervals (non-overlapping, sorted)."""

    starts: list[float] = field(default_factory=list)
    ends: list[float] = field(default_factory=list)

    def prune(self, cutoff: float) -> None:
        cut = bisect_right(self.ends, cutoff)
        if cut:
            del self.starts[:cut]
            del self.ends[:cut]

    def live_count(self, now: float) -> int:
        return len(self.ends) - bisect_right(self.ends, now)

    def place(self, now: float, service_s: float, capacity: int) -> tuple[float, int]:
        """Earliest feasible ``(start, queued_behind)`` at or after ``now``.

        Walks the live suffix (intervals ending after ``now``), jumping over
        each busy interval until a gap fits the service time.  The intervals
        jumped are the requests this one actually sits behind — the queue it
        joins — and their count is what the bounded buffer limits: raises
        :class:`_WorkerFull` once it reaches ``capacity``.  The walk is
        bounded by the capacity, so admission cost never grows with the
        length of the run.
        """
        first_live = bisect_right(self.ends, now)
        cursor = now
        queued_behind = 0
        for index in range(first_live, len(self.starts)):
            if self.starts[index] - cursor >= service_s:
                break
            interval_end = self.ends[index]
            if interval_end > cursor:
                cursor = interval_end
                queued_behind += 1
                if queued_behind >= capacity:
                    raise _WorkerFull()
        return cursor, queued_behind

    def commit(self, start: float, service_s: float) -> None:
        insort(self.starts, start)
        insort(self.ends, start + service_s)


@dataclass
class ServerQueue:
    """A bounded queue in front of one map server's worker pool.

    Each of the ``workers`` logical workers serves one request at a time
    from its own FIFO; an arriving request is placed on the worker offering
    the earliest feasible start (ties break toward the lowest worker index,
    keeping admission deterministic).  ``capacity`` bounds the *per-worker*
    backlog, so total buffered work scales with the worker count — a replica
    with 4 workers saturates at 4× the single-worker knee.  With the default
    ``workers=1`` the model reduces exactly to the original single-worker
    queue.
    """

    network: "SimulatedNetwork"
    service_times: ServiceTimeModel = field(default_factory=ServiceTimeModel)
    capacity: int = 64
    workers: int = 1
    stats: QueueStats = field(default_factory=QueueStats)
    kind_arrivals: dict[str, int] = field(default_factory=dict, repr=False)
    """Per-request-kind count of *individually processed* arrivals (phantom
    batches excluded).  The cohort fast path diffs this around one tracer
    request to learn which kinds that request charged to this server, then
    replays them for the tracer's phantom cohort-mates.  Deliberately not
    part of :meth:`snapshot`, so committed artifacts keep their keys."""
    kind_totals: dict[str, int] = field(default_factory=dict, repr=False)
    """Per-request-kind count of *all* offered arrivals — individually
    processed and phantom-batched alike, drops included.  The telemetry
    pipeline diffs this (via :meth:`telemetry_frame`) per window to map
    demand by kind; kept separate from :attr:`kind_arrivals` because the
    cohort diff mechanism requires that one stays phantom-free."""
    _schedules: list[_WorkerSchedule] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        if self.workers < 1:
            raise ValueError("worker count must be >= 1")
        self._schedules = [_WorkerSchedule() for _ in range(self.workers)]

    @property
    def busy_until(self) -> float:
        """Simulated instant at which the last scheduled request completes."""
        return max((s.ends[-1] for s in self._schedules if s.ends), default=0.0)

    @property
    def depth(self) -> int:
        """Requests outstanding (queued or in service) at the current instant."""
        now = self.network.clock.now()
        return sum(schedule.live_count(now) for schedule in self._schedules)

    _PRUNE_LAG_SECONDS = 120.0
    """How far behind the newest arrival completed intervals are retained.

    The workload engine's clock only rewinds within one concurrent round
    (seconds at most), so intervals that completed minutes before the
    current arrival can never be observed again and are dropped to keep the
    schedule lists — and their insertion cost — small."""

    def _prune(self, now: float) -> None:
        cutoff = now - self._PRUNE_LAG_SECONDS
        for schedule in self._schedules:
            schedule.prune(cutoff)

    def snapshot(self, window_seconds: float | None = None) -> dict[str, float]:
        """The queue's stats snapshot, normalized for (and reporting) workers."""
        data = self.stats.snapshot(window_seconds=window_seconds, workers=self.workers)
        data["workers"] = float(self.workers)
        return data

    def telemetry_frame(self) -> dict[str, object]:
        """Cumulative counters for the telemetry pipeline to diff per window.

        Phantom cohort arrivals are included (they land in ``stats`` and
        ``kind_totals``), so windowed deltas reflect the load the server
        actually absorbed, not just the individually-simulated slice.

        ``workers`` is a *gauge*, not a counter: the pipeline keeps the
        latest value per window instead of diffing it, so supply-side
        roll-ups can normalize busy time into utilization
        (``busy_ms / (workers × window span)``) without reaching back into
        the queue object.
        """
        return {
            "arrivals": float(self.stats.arrivals),
            "served": float(self.stats.served),
            "dropped": float(self.stats.dropped),
            "wait_ms": self.stats.wait_ms_total,
            "busy_ms": self.stats.busy_ms,
            "workers": float(self.workers),
            "kinds": {kind: float(count) for kind, count in self.kind_totals.items()},
        }

    def process(self, kind: str) -> float:
        """Admit one request, wait out the backlog, and serve it.

        Advances the simulated clock by queueing delay plus service time and
        charges both to the network's latency accounting (so client latency
        percentiles include server load).  Returns the total milliseconds
        spent server-side; raises :class:`ServerOverloadedError` when every
        worker's bounded buffer is full.
        """
        now = self.network.clock.now()
        self.stats.arrivals += 1
        self.kind_arrivals[kind] = self.kind_arrivals.get(kind, 0) + 1
        self.kind_totals[kind] = self.kind_totals.get(kind, 0) + 1
        if sum(len(schedule.ends) for schedule in self._schedules) > 1024:
            self._prune(now)
        service_ms = self.service_times.service_ms(kind)
        service_s = service_ms / 1000.0

        best: tuple[float, int, _WorkerSchedule] | None = None
        for schedule in self._schedules:
            try:
                start, queued_behind = schedule.place(now, service_s, self.capacity)
            except _WorkerFull:
                continue
            if best is None or start < best[0]:
                best = (start, queued_behind, schedule)
                if start <= now:
                    break  # an idle worker cannot be beaten
        if best is None:
            self.stats.dropped += 1
            raise ServerOverloadedError(
                f"all {self.workers} worker queue(s) full "
                f"({self.capacity} per worker) for {kind!r} request"
            )
        start, queued_behind, schedule = best

        self.stats.depth_total += queued_behind
        if queued_behind > self.stats.max_depth:
            self.stats.max_depth = queued_behind

        wait_ms = (start - now) * 1000.0
        schedule.commit(start, service_s)

        self.stats.served += 1
        self.stats.busy_ms += service_ms
        self.stats.wait_ms_total += wait_ms
        total_ms = wait_ms + service_ms
        self.network.server_processing(total_ms)
        return total_ms

    def phantom_arrivals(self, kind: str, count: int) -> tuple[int, int]:
        """Charge ``count`` statistically-identical arrivals in aggregate.

        The cohort fast path of the workload engine simulates one *tracer*
        device per cohort slice through the full client stack and charges the
        server-side load of the tracer's phantom cohort-mates here: ``count``
        requests of ``kind`` all arriving at the current simulated instant.
        Their busy time, waits, depths and drops land in :class:`QueueStats`
        exactly as if each had been admitted individually, and their busy
        intervals are committed to the worker schedules so subsequent *real*
        requests queue behind them — that is what makes large-fleet
        saturation measured rather than extrapolated.

        Two deliberate approximations versus ``count`` calls to
        :meth:`process` (both only matter off the saturated path the batch
        exists for):

        * placement is tail-append per worker (interior idle gaps are not
          back-filled), and
        * the per-worker drop check is the aggregate ``capacity − live``
          backlog bound rather than a per-job placement probe.

        Phantoms charge no network latency and never advance the clock —
        only real requests drive time.  Returns ``(admitted, dropped)``.
        """
        if count < 0:
            raise ValueError("phantom arrival count cannot be negative")
        if count == 0:
            return (0, 0)
        now = self.network.clock.now()
        self.stats.arrivals += count
        self.kind_totals[kind] = self.kind_totals.get(kind, 0) + count
        if sum(len(schedule.ends) for schedule in self._schedules) > 1024:
            self._prune(now)
        service_ms = self.service_times.service_ms(kind)
        service_s = service_ms / 1000.0

        # Per-worker tail state: next-free instant, live backlog, cap left.
        tails: list[float] = []
        lives: list[int] = []
        caps: list[int] = []
        for schedule in self._schedules:
            tails.append(max(now, schedule.ends[-1] if schedule.ends else 0.0))
            live = schedule.live_count(now)
            lives.append(live)
            caps.append(max(0, self.capacity - live))
        admitted = min(count, sum(caps))
        dropped = count - admitted
        self.stats.dropped += dropped
        if admitted == 0:
            return (0, dropped)

        # Greedy earliest-finish water-fill, bounded by per-worker caps.
        # The loop runs at most capacity × workers times, never `count`.
        assigned = [0] * self.workers
        if service_s <= 0.0:
            # Zero service time: every job starts at its worker's tail and
            # nothing levels — spread round-robin across workers with room.
            remaining = admitted
            while remaining:
                for index in range(self.workers):
                    if remaining and assigned[index] < caps[index]:
                        take = min(remaining, caps[index] - assigned[index])
                        assigned[index] += take
                        remaining -= take
        else:
            for _ in range(admitted):
                best_index = -1
                best_finish = math.inf
                for index in range(self.workers):
                    if assigned[index] >= caps[index]:
                        continue
                    finish = tails[index] + assigned[index] * service_s
                    if finish < best_finish:
                        best_finish = finish
                        best_index = index
                assigned[best_index] += 1

        for index, jobs in enumerate(assigned):
            if not jobs:
                continue
            schedule = self._schedules[index]
            tail = tails[index]
            for position in range(jobs):
                start = tail + position * service_s
                schedule.commit(start, service_s)
                self.stats.wait_ms_total += (start - now) * 1000.0
                queued_behind = lives[index] + position
                self.stats.depth_total += queued_behind
                if queued_behind > self.stats.max_depth:
                    self.stats.max_depth = queued_behind
            self.stats.served += jobs
            self.stats.busy_ms += jobs * service_ms
        return (admitted, dropped)
