"""Deterministic simulation support: clock, network latency model, metrics."""

from repro.simulation.clock import SimulatedClock
from repro.simulation.metrics import Counter, MetricsRegistry, Summary, percentile
from repro.simulation.network import (
    LatencyModel,
    NetworkStats,
    SimulatedNetwork,
)

__all__ = [
    "Counter",
    "LatencyModel",
    "MetricsRegistry",
    "NetworkStats",
    "SimulatedClock",
    "SimulatedNetwork",
    "Summary",
    "percentile",
]
