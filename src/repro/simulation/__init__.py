"""Deterministic simulation support: clock, network latency model, metrics."""

from repro.simulation.clock import SimulatedClock
from repro.simulation.lru import LruCache, LruStats
from repro.simulation.metrics import Counter, Histogram, MetricsRegistry, Summary, percentile
from repro.simulation.network import (
    LatencyModel,
    NetworkStats,
    SimulatedNetwork,
)
from repro.simulation.queueing import (
    QueueStats,
    ServerOverloadedError,
    ServerQueue,
    ServiceTimeModel,
)

__all__ = [
    "Counter",
    "Histogram",
    "LatencyModel",
    "LruCache",
    "LruStats",
    "MetricsRegistry",
    "NetworkStats",
    "QueueStats",
    "ServerOverloadedError",
    "ServerQueue",
    "ServiceTimeModel",
    "SimulatedClock",
    "SimulatedNetwork",
    "Summary",
    "percentile",
]
