"""A small LRU cache primitive shared by the client-side caches.

:class:`repro.discovery.cache.DiscoveryCache` (TTL-aware) and
:class:`repro.tiles.cache.TileCache` (immutable entries) are both bounded
LRU maps with the same hit/miss/eviction accounting; this module holds the
one copy of that machinery so the eviction and stats semantics cannot drift
apart.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable

_MISSING = object()
"""Sentinel distinguishing "no entry" from a stored ``None`` value."""


@dataclass
class LruStats:
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    expirations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class LruCache:
    """A bounded least-recently-used map with hit/miss accounting.

    Every operation is strictly O(1): lookups are one hash probe plus an
    OrderedDict ``move_to_end`` relink, and stores evict with ``popitem`` —
    no scans, no sorting, no per-entry walks.  A micro-benchmark guard test
    (``tests/test_simulation.py``) holds this to account: per-operation cost
    must not grow with the cache size.
    """

    max_entries: int = 256
    stats: LruStats = field(default_factory=LruStats)
    _entries: OrderedDict = field(default_factory=OrderedDict)

    def lookup(self, key: Any, is_live: Callable[[Any], bool] | None = None) -> Any | None:
        """The live value for ``key`` (None on miss), refreshing its recency.

        ``is_live`` lets a TTL-aware wrapper reject a stored entry: a stale
        entry is dropped, counted as an expiration, and reported as a miss.
        """
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            self.stats.misses += 1
            return None
        if is_live is not None and not is_live(value):
            del self._entries[key]
            self.stats.expirations += 1
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return value

    def peek(self, key: Any) -> Any | None:
        """The stored value for ``key`` with no accounting or recency effects.

        Lets a TTL-aware wrapper inspect an entry that would fail its
        ``is_live`` check — e.g. to serve it stale during an outage —
        without perturbing hit/miss statistics or the eviction order.
        """
        value = self._entries.get(key, _MISSING)
        return None if value is _MISSING else value

    def store(self, key: Any, value: Any) -> None:
        """Insert or refresh ``key``, evicting the LRU entry when full."""
        entries = self._entries
        if key in entries:
            # Refresh: overwrite in place and relink to the MRU end.
            entries[key] = value
            entries.move_to_end(key)
        else:
            if len(entries) >= self.max_entries:
                entries.popitem(last=False)
                self.stats.evictions += 1
            entries[key] = value
        self.stats.insertions += 1

    def flush(self) -> None:
        self._entries.clear()

    @property
    def size(self) -> int:
        return len(self._entries)
