"""A small LRU cache primitive shared by the client-side caches.

:class:`repro.discovery.cache.DiscoveryCache` (TTL-aware) and
:class:`repro.tiles.cache.TileCache` (immutable entries) are both bounded
LRU maps with the same hit/miss/eviction accounting; this module holds the
one copy of that machinery so the eviction and stats semantics cannot drift
apart.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable

@dataclass
class LruStats:
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    expirations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class LruCache:
    """A bounded least-recently-used map with hit/miss accounting."""

    max_entries: int = 256
    stats: LruStats = field(default_factory=LruStats)
    _entries: OrderedDict = field(default_factory=OrderedDict)

    def lookup(self, key: Any, is_live: Callable[[Any], bool] | None = None) -> Any | None:
        """The live value for ``key`` (None on miss), refreshing its recency.

        ``is_live`` lets a TTL-aware wrapper reject a stored entry: a stale
        entry is dropped, counted as an expiration, and reported as a miss.
        """
        value = self._entries.get(key)
        if value is not None and is_live is not None and not is_live(value):
            del self._entries[key]
            self.stats.expirations += 1
            value = None
        if value is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return value

    def store(self, key: Any, value: Any) -> None:
        """Insert or refresh ``key``, evicting the LRU entry when full."""
        if key not in self._entries and len(self._entries) >= self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        self._entries[key] = value
        self._entries.move_to_end(key)
        self.stats.insertions += 1

    def flush(self) -> None:
        self._entries.clear()

    @property
    def size(self) -> int:
        return len(self._entries)
