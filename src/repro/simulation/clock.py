"""A deterministic simulated clock.

Every latency-sensitive component (DNS caches, network links, service
benchmarks) reads time from a :class:`SimulatedClock` instead of the wall
clock, making experiments reproducible and letting tests fast-forward through
TTL expiry without sleeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SimulatedClock:
    """A monotonically advancing clock measured in seconds."""

    _now: float = 0.0
    _advance_count: int = field(default=0, repr=False)

    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        self._now += seconds
        self._advance_count += 1
        return self._now

    def advance_ms(self, milliseconds: float) -> float:
        """Advance the clock by ``milliseconds``."""
        return self.advance(milliseconds / 1000.0)

    def advance_to(self, timestamp: float) -> float:
        """Advance the clock to an absolute instant (must not be earlier).

        The event-driven workload engine schedules in absolute simulated
        time, so jumping the clock to a popped event's timestamp is its
        idiom; ``advance`` stays the relative-delta API everything else
        uses.
        """
        if timestamp < self._now:
            raise ValueError("cannot advance the clock backwards")
        return self.advance(timestamp - self._now)

    def rewind_to(self, timestamp: float) -> float:
        """Rewind to an earlier instant (concurrent-branch simulation only).

        A fleet of clients acting "at the same time" is simulated by running
        each client serially from the same start instant and rewinding the
        clock between them, so that N concurrent requests advance time by the
        slowest request rather than the sum of all of them.  Only the workload
        engine's round loop should call this; everything else treats the clock
        as monotonic.
        """
        if timestamp < 0.0 or timestamp > self._now:
            raise ValueError("can only rewind to a past, non-negative instant")
        self._now = timestamp
        return self._now

    @property
    def advance_count(self) -> int:
        """How many times the clock has been advanced (useful in tests)."""
        return self._advance_count
