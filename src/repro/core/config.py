"""Configuration for a federation instance."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.churn.failover import SELECTION_MODES, WEIGHTED
from repro.churn.retry import RetryPolicy
from repro.discovery.naming import DEFAULT_DISCOVERY_SUFFIX
from repro.simulation.network import LatencyModel
from repro.simulation.queueing import ServiceTimeModel
from repro.spatialindex.covering import CoveringOptions


@dataclass(frozen=True, slots=True)
class FederationConfig:
    """Tunables shared by every component of one federation.

    ``registration_covering`` controls how map coverage regions are converted
    into DNS records; ``discovery_level`` is the cell level used for client
    discovery queries; ``registration_ttl_seconds`` is the TTL on discovery
    records (long, because map server addresses rarely change — Section 5.1).

    ``device_discovery_cache_ttl_seconds`` enables the per-device
    :class:`repro.discovery.cache.DiscoveryCache` (0 disables it);
    ``client_tile_cache_entries`` sizes the per-device tile LRU (0 disables
    it).  Both default to off so single-request experiments keep their exact
    message counts; traffic-heavy workloads switch them on.
    """

    discovery_suffix: str = DEFAULT_DISCOVERY_SUFFIX
    discovery_level: int = 17
    discovery_ancestor_levels: int = 8
    registration_covering: CoveringOptions = field(
        default_factory=lambda: CoveringOptions(min_level=13, max_level=17, max_cells=64)
    )
    registration_ttl_seconds: float = 3600.0
    device_discovery_cache_ttl_seconds: float = 0.0
    discovery_cache_max_entries: int = 4096
    client_tile_cache_entries: int = 0
    latency: LatencyModel = field(default_factory=LatencyModel)
    default_routing_algorithm: str = "contraction"
    """Map servers preprocess with contraction hierarchies and answer routing
    queries with the fast bidirectional upward search (falling back to
    Dijkstra for metrics the hierarchy was not built for)."""
    route_stitch_max_gap_meters: float = 250.0
    service_times: ServiceTimeModel | None = None
    """Per-request-kind service times for the server-side queueing model;
    ``None`` (the default) keeps every map server infinitely fast, preserving
    the exact latency accounting of the single-request experiments."""
    server_queue_capacity: int = 64
    """Bounded queue depth *per worker* once ``service_times`` is set;
    requests arriving when every worker's queue is full are dropped (load
    shedding)."""
    server_workers: int = 1
    """Logical workers per map server's queue: a server with 4 workers
    saturates at 4× the single-worker knee.  Only meaningful with
    ``service_times`` set."""
    retry_policy: RetryPolicy | None = None
    """Client-side replica failover policy.  ``None`` (the default) keeps
    the historical behaviour — failed servers are skipped silently, with no
    retries, no dead-server timeouts and identical message counts;
    federations that deploy replica groups set a policy so clients fail
    over between replicas."""
    replica_selection: str = WEIGHTED
    """How a client orders the replicas of one coverage group:
    ``"weighted"`` (the default) applies RFC 2782 SRV semantics — strict
    priority tiers, weighted-random within a tier from a per-device seeded
    RNG stream — so an N-replica group actually spreads load N ways;
    ``"first-healthy"`` keeps the legacy ordering (healthiest first, then
    id order), which funnels a healthy group's whole load onto one
    replica."""
    shared_health: bool = False
    """Gossip dead-replica knowledge through each shared resolver pool: the
    first device to pay a dead-server timeout posts the replica to its
    pool's :class:`repro.churn.health.SharedHealthBoard`, and pool mates
    demote it without paying their own timeout.  Off (the default) keeps
    health strictly per-device — the byte-identical legacy behaviour."""
    shared_health_ttl_seconds: float = 30.0
    """Lifetime of a shared-health board entry.  Entries must expire so a
    revived replica is re-tried (and wins traffic back) even if the whole
    pool once saw it dead."""
    stale_serve_max_ms: float = 0.0
    """Graceful-degradation bound: how long past expiry a device may keep
    serving a *stale* cached discovery result when live resolution fails
    (authority dark, SERVFAIL).  0 — the default — hard-fails on discovery
    failure exactly as before; disaster scenarios set it so warm-cache
    devices coast through authority outages, with degraded requests counted
    separately in :class:`repro.workload.engine.WorkloadReport`."""
    max_retransmits: int | None = None
    """Per-exchange retransmit budget under ``latency.loss_probability`` /
    gray-failure loss.  ``None`` keeps :class:`LatencyModel`'s own default;
    setting it overrides the latency model's cap at federation build time."""

    def __post_init__(self) -> None:
        if self.replica_selection not in SELECTION_MODES:
            raise ValueError(
                f"unknown replica_selection {self.replica_selection!r}; "
                f"expected one of {SELECTION_MODES}"
            )
        if self.shared_health_ttl_seconds <= 0.0:
            raise ValueError("shared_health_ttl_seconds must be positive")
        if self.stale_serve_max_ms < 0.0:
            raise ValueError("stale_serve_max_ms cannot be negative")
        if self.max_retransmits is not None and self.max_retransmits < 0:
            raise ValueError("max_retransmits cannot be negative")
