"""Wiring a federation together: DNS, discovery, map servers, client context.

:class:`Federation` is the deployment-side object: it owns the simulated
network, the DNS namespace (root server, the spatial discovery zone and its
authoritative server, a recursive resolver), the discovery registry, and the
directory of reachable map servers.  Applications then obtain an
:class:`repro.core.client.OpenFlameClient` from it.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field

from repro.churn.failover import FailoverRecorder
from repro.churn.health import ReplicaHealth, SharedHealthBoard
from repro.churn.replicas import ReplicaGroup, replica_server_id
from repro.control.view import DeviceSrvView
from repro.core.config import FederationConfig
from repro.core.errors import FederationConfigError
from repro.discovery.discoverer import Discoverer
from repro.discovery.naming import SpatialNaming
from repro.discovery.registry import DiscoveryRegistry, Registration
from repro.dns.records import RecordType
from repro.dns.resolver import RecursiveResolver, StubResolver
from repro.dns.server import NameServer
from repro.dns.zone import Zone
from repro.geometry.polygon import Polygon
from repro.mapserver.auth import Credential
from repro.mapserver.policy import AccessPolicy
from repro.mapserver.server import MapServer
from repro.osm.mapdata import MapData
from repro.services.context import FederationContext
from repro.simulation.clock import SimulatedClock
from repro.simulation.network import SimulatedNetwork
from repro.simulation.queueing import ServerQueue


@dataclass
class Federation:
    """A running OpenFLAME federation (Figure 2)."""

    config: FederationConfig = field(default_factory=FederationConfig)
    network: SimulatedNetwork = field(init=False)
    naming: SpatialNaming = field(init=False)
    registry: DiscoveryRegistry = field(init=False)
    root_server: NameServer = field(init=False)
    resolver: RecursiveResolver = field(init=False)
    stub_resolver: StubResolver = field(init=False)
    servers: dict[str, MapServer] = field(default_factory=dict)
    world_provider_id: str | None = None
    replica_groups: dict[str, ReplicaGroup] = field(default_factory=dict)
    _group_of: dict[str, str] = field(default_factory=dict)
    _srv_of: dict[str, tuple[int, int]] = field(default_factory=dict)
    """Per-server ``(priority, weight)`` as advertised in its SRV records.
    Kept here (not only in the registry) because clients must keep ordering
    a group's chain while a crashed replica's registration is expired."""
    _offline: dict[str, MapServer] = field(default_factory=dict)
    """Servers currently crashed or gracefully departed, kept for revival.
    They are absent from ``servers`` (the reachable directory every client
    context shares), so requests addressed to them fail like real timeouts."""
    _parked: set[str] = field(default_factory=set)
    """Servers an operator deliberately parked (records withdrawn, object
    reachable).  Tracked explicitly so the parked state survives a
    crash/expire/revive interleaving: a revive must not resurrect a parked
    server's discovery records just because they happen to be absent."""
    warm_pools: dict[str, "object"] = field(default_factory=dict)
    """Replica group id → its attached :class:`repro.autoscale.WarmPool` of
    standby replicas (empty unless :meth:`attach_warm_pool` was called).
    The autoscaler discovers its scaling domains here."""

    def __post_init__(self) -> None:
        clock = SimulatedClock()
        latency = self.config.latency
        if (
            self.config.max_retransmits is not None
            and self.config.max_retransmits != latency.max_retransmits
        ):
            latency = dataclasses.replace(
                latency, max_retransmits=self.config.max_retransmits
            )
        self.network = SimulatedNetwork(clock=clock, latency=latency)
        self.naming = SpatialNaming(self.config.discovery_suffix)
        self.registry = DiscoveryRegistry(
            naming=self.naming,
            covering_options=self.config.registration_covering,
            ttl_seconds=self.config.registration_ttl_seconds,
        )

        # Root name server delegates the discovery suffix to the registry's
        # authoritative server.
        root_zone = Zone(origin="")
        root_zone.add(self.naming.suffix, RecordType.NS, self.registry.authority.server_id)
        self.root_server = NameServer(server_id="root", zones={"": root_zone})
        self.resolver = RecursiveResolver(
            root=self.root_server,
            servers={
                "root": self.root_server,
                self.registry.authority.server_id: self.registry.authority,
            },
            network=self.network,
        )
        self.stub_resolver = StubResolver(recursive=self.resolver, network=self.network)
        self._resolver_pool: list[StubResolver] = [self.stub_resolver]
        self._context_counter = 0
        """Contexts built so far — the default weighted-selection seed, so
        devices created without an explicit seed draw *different* (but
        construction-order-deterministic) RNG streams instead of all
        replaying Random(0) in lockstep."""
        self._health_boards: dict[int, tuple[StubResolver, SharedHealthBoard]] = {}
        """Shared-health board per resolver pool, keyed by the stub
        resolver's identity.  The resolver itself is kept in the value so
        the keyed object can never be collected and its id() reused by an
        unrelated resolver — a board stays bound to exactly one pool."""

    # ------------------------------------------------------------------
    # Map server lifecycle
    # ------------------------------------------------------------------
    def add_map_server(
        self,
        server_id: str,
        map_data: MapData,
        policy: AccessPolicy | None = None,
        coverage: Polygon | None = None,
        routing_algorithm: str | None = None,
        is_world_provider: bool = False,
        srv_priority: int = 0,
        srv_weight: int = 0,
    ) -> MapServer:
        """Deploy a map server and register it in the discovery DNS.

        ``srv_priority``/``srv_weight`` land in every SRV record the
        registration emits (RFC 2782 semantics); standalone servers keep the
        0/0 default because a single-candidate target has nothing to
        balance.
        """
        if server_id in self.servers:
            raise FederationConfigError(f"map server {server_id!r} is already deployed")
        if coverage is not None:
            map_data.set_coverage(coverage)
        queue: ServerQueue | None = None
        if self.config.service_times is not None:
            queue = ServerQueue(
                network=self.network,
                service_times=self.config.service_times,
                capacity=self.config.server_queue_capacity,
                workers=self.config.server_workers,
            )
        server = MapServer(
            server_id=server_id,
            map_data=map_data,
            policy=policy or AccessPolicy(),
            routing_algorithm=routing_algorithm or self.config.default_routing_algorithm,
            queue=queue,
        )
        self.servers[server_id] = server
        self.registry.register_region(
            server_id, server.coverage, priority=srv_priority, weight=srv_weight
        )
        self._srv_of[server_id] = (srv_priority, srv_weight)
        if is_world_provider:
            self.world_provider_id = server_id
        return server

    def remove_map_server(self, server_id: str) -> None:
        """Tear down a map server permanently and withdraw its records."""
        if server_id not in self.servers:
            raise FederationConfigError(f"map server {server_id!r} is not deployed")
        del self.servers[server_id]
        self.registry.deregister(server_id)
        self._srv_of.pop(server_id, None)
        self._parked.discard(server_id)
        if self.world_provider_id == server_id:
            self.world_provider_id = None
        group_id = self._group_of.pop(server_id, None)
        if group_id is not None:
            group = self.replica_groups.get(group_id)
            if group is not None and all(
                sid == server_id or sid not in self._group_of for sid in group.server_ids
            ):
                del self.replica_groups[group_id]

    def registration_for(self, server_id: str) -> Registration | None:
        return self.registry.registrations.get(server_id)

    # ------------------------------------------------------------------
    # Replica groups
    # ------------------------------------------------------------------
    def add_replica_group(
        self,
        group_id: str,
        map_data: MapData,
        replica_count: int,
        policy: AccessPolicy | None = None,
        coverage: Polygon | None = None,
        routing_algorithm: str | None = None,
        weights: tuple[int, ...] | list[int] | None = None,
        priorities: tuple[int, ...] | list[int] | None = None,
    ) -> ReplicaGroup:
        """Deploy ``replica_count`` interchangeable replicas of one map.

        Every replica advertises the same coverage region, so each covering
        cell's spatial name carries one SRV record per replica and a single
        discovery query hands clients the whole failover chain.  The
        replicas share the map data (and the access policy) but each runs
        its own queue — load and failures are per replica.

        ``weights`` configures per-replica RFC 2782 weights (heterogeneous
        capacity: ``(3, 1)`` sends replica 0 three quarters of the tier's
        traffic); the default gives every replica an equal positive weight
        so clients spread load uniformly.  ``priorities`` configures strict
        tiers (lower serves first; e.g. a warm standby at priority 1).
        Replica server ids are derived from the group id, so no two
        replicas can ever advertise the same host:port — the registry
        additionally rejects any endpoint collision at a shared spatial
        name rather than letting records shadow each other.
        """
        if replica_count < 1:
            raise FederationConfigError("a replica group needs at least one replica")
        if group_id in self.replica_groups:
            raise FederationConfigError(f"replica group {group_id!r} already exists")
        if weights is not None and len(weights) != replica_count:
            raise FederationConfigError(
                f"got {len(weights)} weights for {replica_count} replicas"
            )
        if priorities is not None and len(priorities) != replica_count:
            raise FederationConfigError(
                f"got {len(priorities)} priorities for {replica_count} replicas"
            )
        if coverage is not None:
            map_data.set_coverage(coverage)
        shared_policy = policy or AccessPolicy()
        group = ReplicaGroup(
            group_id=group_id,
            server_ids=tuple(replica_server_id(group_id, i) for i in range(replica_count)),
            weights=tuple(weights) if weights is not None else (),
            priorities=tuple(priorities) if priorities is not None else (),
        )
        for index, server_id in enumerate(group.server_ids):
            self.add_map_server(
                server_id,
                map_data,
                policy=shared_policy,
                routing_algorithm=routing_algorithm,
                srv_priority=group.priorities[index],
                srv_weight=group.weights[index],
            )
        self.replica_groups[group_id] = group
        for server_id in group.server_ids:
            self._group_of[server_id] = group_id
        return group

    def group_for(self, server_id: str) -> ReplicaGroup | None:
        group_id = self._group_of.get(server_id)
        return self.replica_groups.get(group_id) if group_id is not None else None

    # ------------------------------------------------------------------
    # Elastic capacity (warm-pool lifecycle)
    # ------------------------------------------------------------------
    def extend_replica_group(
        self, group_id: str, count: int = 1, weight: int = 0, priority: int = 0
    ) -> tuple[str, ...]:
        """Deploy ``count`` additional replicas into an existing group.

        The new replicas share the group's map data, access policy, and
        routing algorithm (taken from an existing member — online or
        offline), advertise the same coverage, and continue the group's
        ``rN.`` id sequence.  They register immediately at the given
        ``(priority, weight)`` — the default weight 0 makes them
        *pre-registered standbys*: present in every discovery answer but
        last-resort for selection, so a later promotion is a pure weight
        change that clients converge to as TTLs lapse.  Returns the new
        server ids in deployment order.
        """
        if count < 1:
            raise FederationConfigError("extending a group needs at least one replica")
        group = self.replica_groups.get(group_id)
        if group is None:
            raise FederationConfigError(f"replica group {group_id!r} does not exist")
        template: MapServer | None = None
        for server_id in group.server_ids:
            template = self.servers.get(server_id) or self._offline.get(server_id)
            if template is not None:
                break
        if template is None:
            raise FederationConfigError(
                f"replica group {group_id!r} has no member left to clone"
            )
        start = len(group.server_ids)
        new_ids = tuple(replica_server_id(group_id, start + i) for i in range(count))
        for server_id in new_ids:
            self.add_map_server(
                server_id,
                template.map_data,
                policy=template.policy,
                routing_algorithm=template.routing_algorithm,
                srv_priority=priority,
                srv_weight=weight,
            )
        group.extend(new_ids, weight=weight, priority=priority)
        for server_id in new_ids:
            self._group_of[server_id] = group_id
        return new_ids

    def park_map_server(self, server_id: str) -> int:
        """Withdraw a server's discovery records while keeping it reachable.

        The pool-retirement counterpart of :meth:`leave_map_server`: the
        authority stops advertising the server (fresh discoveries no longer
        see it) but the server object stays in the reachable directory, so
        devices holding stale cached answers drain off it gracefully as
        their TTLs lapse instead of hitting timeouts.  Idempotent for an
        already-parked server.  Returns the number of records withdrawn.

        Parking a crashed or departed server is rejected explicitly (it is
        not reachable, so "parked but reachable" would be a lie); revive it
        first.  The rejection changes no state.
        """
        if server_id in self._offline:
            raise FederationConfigError(
                f"map server {server_id!r} is offline — revive it before parking"
            )
        if server_id not in self.servers:
            raise FederationConfigError(f"map server {server_id!r} is not deployed")
        self._parked.add(server_id)
        return self.registry.deregister(server_id)

    def unpark_map_server(self, server_id: str) -> None:
        """Re-register a parked server with its current SRV values.

        The promotion-from-pool counterpart of :meth:`park_map_server`; a
        no-op when the server is already registered, so controllers can
        call it unconditionally before re-weighting.

        Unparking a server that crashed (or left) while parked is rejected
        explicitly — an unreachable server must not be re-advertised; the
        parked state is kept so a later revive stays unregistered until the
        operator unparks it again.
        """
        if server_id in self._offline:
            raise FederationConfigError(
                f"map server {server_id!r} is offline — revive it before unparking"
            )
        if server_id not in self.servers:
            raise FederationConfigError(f"map server {server_id!r} is not deployed")
        self._parked.discard(server_id)
        if server_id not in self.registry.registrations:
            server = self.servers[server_id]
            priority, weight = self._srv_of.get(server_id, (0, 0))
            self.registry.register_region(
                server_id, server.coverage, priority=priority, weight=weight
            )

    def attach_warm_pool(self, group_id: str, size: int) -> "object":
        """Provision a :class:`repro.autoscale.WarmPool` of ``size``
        standby replicas for one group and remember it in
        :attr:`warm_pools` (one pool per group).  Imported lazily so the
        core federation stays importable without the autoscale package."""
        from repro.autoscale.warmpool import WarmPool

        if group_id in self.warm_pools:
            raise FederationConfigError(
                f"replica group {group_id!r} already has a warm pool"
            )
        pool = WarmPool.provision(self, group_id, size)
        self.warm_pools[group_id] = pool
        return pool

    # ------------------------------------------------------------------
    # Live SRV mutation (operator control plane)
    # ------------------------------------------------------------------
    def srv_of(self, server_id: str) -> tuple[int, int]:
        """A server's currently advertised SRV ``(priority, weight)``."""
        if server_id not in self.servers and server_id not in self._offline:
            raise FederationConfigError(f"map server {server_id!r} is not deployed")
        return self._srv_of.get(server_id, (0, 0))

    def set_srv(
        self, server_id: str, priority: int | None = None, weight: int | None = None
    ) -> tuple[int, int]:
        """Change a deployed server's SRV priority and/or weight, live.

        The change lands everywhere the old values lived, in dependency
        order: the replica group's advertised tuples, the federation's
        ``_srv_of`` (so crash → lease expiry → revive re-registers with the
        *new* values, exactly as :meth:`revive_map_server` preserves
        registration-time ones), and — when the server is currently
        registered, reachable or not — the authority's records via
        :meth:`repro.discovery.registry.DiscoveryRegistry.reweight`
        (add-before-remove: no NXDOMAIN window).  An offline server whose
        records already expired gets only the state update; its revival
        re-registers with the new values.

        Clients are deliberately *not* notified: their cached discovery
        answers keep the old values until the TTLs lapse, which is the
        convergence window the workload engine measures.
        """
        old_priority, old_weight = self.srv_of(server_id)
        new_priority = old_priority if priority is None else priority
        new_weight = old_weight if weight is None else weight
        if new_priority < 0:
            raise FederationConfigError("SRV priority cannot be negative")
        if new_weight < 0:
            raise FederationConfigError("SRV weight cannot be negative")
        if (new_priority, new_weight) == (old_priority, old_weight):
            return (new_priority, new_weight)
        group = self.group_for(server_id)
        if group is not None:
            # The group guard (no all-zero-weight multi-replica group) runs
            # before any state changes, so a rejected drain leaves the
            # federation untouched.
            if new_weight != old_weight:
                group.set_weight(server_id, new_weight)
            if new_priority != old_priority:
                group.set_priority(server_id, new_priority)
        self._srv_of[server_id] = (new_priority, new_weight)
        if server_id in self.registry.registrations:
            self.registry.reweight(server_id, priority=new_priority, weight=new_weight)
        return (new_priority, new_weight)

    # ------------------------------------------------------------------
    # Churn lifecycle (crash / graceful leave / revive / lease expiry)
    # ------------------------------------------------------------------
    def crash_map_server(self, server_id: str) -> None:
        """The server dies unannounced: unreachable, but records linger.

        Its discovery records stay at the authority until its registration
        lease expires (:meth:`expire_registration`, driven by the churn
        controller) — exactly the window in which *fresh* DNS resolution
        still hands out a dead server.
        """
        server = self.servers.pop(server_id, None)
        if server is None:
            raise FederationConfigError(f"map server {server_id!r} is not deployed")
        self._offline[server_id] = server

    def leave_map_server(self, server_id: str) -> None:
        """Graceful departure: deregister immediately, keep the object around.

        The authority stops answering for the server at once; only caches
        (resolver and device) stay stale until their TTLs lapse.
        """
        server = self.servers.pop(server_id, None)
        if server is None:
            raise FederationConfigError(f"map server {server_id!r} is not deployed")
        self._offline[server_id] = server
        self.registry.deregister(server_id)

    def revive_map_server(self, server_id: str) -> MapServer:
        """Bring an offline server back: reachable again and re-registered.

        A server that was *parked* when it went offline comes back reachable
        but stays unregistered — reviving restores reachability, it does not
        overrule the operator's parking decision (that is what
        :meth:`unpark_map_server` is for).
        """
        server = self._offline.pop(server_id, None)
        if server is None:
            raise FederationConfigError(f"map server {server_id!r} is not offline")
        self.servers[server_id] = server
        if server_id in self._parked:
            return server
        if server_id not in self.registry.registrations:
            priority, weight = self._srv_of.get(server_id, (0, 0))
            self.registry.register_region(
                server_id, server.coverage, priority=priority, weight=weight
            )
        return server

    def expire_registration(self, server_id: str) -> int:
        """Withdraw a server's records at the authority (lease expiry)."""
        return self.registry.deregister(server_id)

    def is_offline(self, server_id: str) -> bool:
        return server_id in self._offline

    def is_parked(self, server_id: str) -> bool:
        """Whether an operator parked this server (records deliberately
        withdrawn; survives crash/revive until unparked)."""
        return server_id in self._parked

    @property
    def offline_server_ids(self) -> tuple[str, ...]:
        return tuple(sorted(self._offline))

    @property
    def discovery_authority_id(self) -> str:
        """The authoritative DNS server for the discovery zone.

        Fault plans that take "the authority" offline without naming one
        resolve to this id — the single server every spatial name's
        resolution ultimately walks to.
        """
        return self.registry.authority.server_id

    @property
    def all_servers(self) -> dict[str, MapServer]:
        """Every deployed server, reachable or currently offline.

        Reporting uses this so a server that crashed mid-run keeps its
        accumulated load statistics in the run's books.
        """
        combined = dict(self.servers)
        combined.update(self._offline)
        return combined

    @property
    def world_provider(self) -> MapServer | None:
        if self.world_provider_id is None:
            return None
        return self.servers.get(self.world_provider_id)

    # ------------------------------------------------------------------
    # Shared regional resolver pools
    # ------------------------------------------------------------------
    def resolver_pool(self, pool_count: int) -> list[StubResolver]:
        """Stub resolvers backed by ``pool_count`` shared recursive resolvers.

        Pool 0 is the federation's default resolver, so a pool of one is the
        historical single-shared-resolver deployment.  Each further pool gets
        its own recursive resolver (and therefore its own DNS cache) over the
        same namespace — the "several regional resolvers" deployment whose
        per-pool hit rates the workload engine compares.
        """
        if pool_count < 1:
            raise FederationConfigError("a federation needs at least one resolver pool")
        while len(self._resolver_pool) < pool_count:
            recursive = RecursiveResolver(
                root=self.root_server,
                servers=dict(self.resolver.servers),
                network=self.network,
            )
            self._resolver_pool.append(StubResolver(recursive=recursive, network=self.network))
        return self._resolver_pool[:pool_count]

    # ------------------------------------------------------------------
    # Client-side context
    # ------------------------------------------------------------------
    def shared_health_board(self, stub_resolver: StubResolver | None = None) -> SharedHealthBoard:
        """The :class:`SharedHealthBoard` of a stub resolver's pool.

        Devices that share a resolver pool share one board — that is the
        gossip domain ``FederationConfig.shared_health`` turns on.
        """
        resolver = stub_resolver or self.stub_resolver
        entry = self._health_boards.get(id(resolver))
        if entry is None or entry[0] is not resolver:
            entry = (
                resolver,
                SharedHealthBoard(
                    clock=self.network.clock,
                    ttl_seconds=self.config.shared_health_ttl_seconds,
                ),
            )
            self._health_boards[id(resolver)] = entry
        return entry[1]

    def build_context(
        self,
        credential: Credential | None = None,
        stub_resolver: StubResolver | None = None,
        selection_seed: int | None = None,
        backoff_seed: int | None = None,
    ) -> FederationContext:
        """Build the client-side context (discoverer + directory + network).

        ``selection_seed`` seeds the device's RFC 2782 weighted-selection
        RNG stream; ``backoff_seed`` seeds its retry-jitter stream (drawn
        from only by full-jitter retry policies).  The workload engine
        derives one of each per device so fleet runs stay deterministic
        while devices draw independently.  Without an explicit seed each
        context gets the next value of a federation counter — deterministic
        in construction order, but distinct per device, so ad-hoc fleets
        still spread load instead of every client replaying the same draw
        sequence.
        """
        discoverer = Discoverer(
            resolver=stub_resolver or self.stub_resolver,
            naming=self.naming,
            query_level=self.config.discovery_level,
            ancestor_levels=self.config.discovery_ancestor_levels,
            device_cache_ttl_seconds=self.config.device_discovery_cache_ttl_seconds,
            cache_max_entries=self.config.discovery_cache_max_entries,
            stale_serve_max_ms=self.config.stale_serve_max_ms,
        )
        retry_policy = self.config.retry_policy
        health: ReplicaHealth | None = None
        if retry_policy is not None:
            health = ReplicaHealth(
                clock=self.network.clock,
                cooldown_seconds=retry_policy.health_cooldown_seconds,
                board=self.shared_health_board(stub_resolver)
                if self.config.shared_health
                else None,
            )
        context = FederationContext(
            discoverer=discoverer,
            directory=self.servers,
            network=self.network,
            retry_policy=retry_policy,
            group_of=self._group_of,
            health=health,
            failover=FailoverRecorder(),
            replica_selection=self.config.replica_selection,
            # The device's *own* view of SRV data: the (possibly stale)
            # values decoded from the discovery answers it actually holds,
            # falling back to the live advertisement for servers it never
            # resolved.  With static weights the two always agree; after a
            # control-plane re-weight the device keeps acting on the old
            # values until its cache entries expire — real convergence.
            srv_of=DeviceSrvView(discoverer.srv_view, self._srv_of),
            selection_rng=random.Random(
                selection_seed if selection_seed is not None else self._context_counter
            ),
            backoff_rng=random.Random(
                backoff_seed
                if backoff_seed is not None
                else self._context_counter ^ 0xB0FF
            ),
        )
        self._context_counter += 1
        if credential is not None:
            context.credential = credential
        return context

    def client(
        self,
        credential: Credential | None = None,
        stub_resolver: StubResolver | None = None,
        selection_seed: int | None = None,
        backoff_seed: int | None = None,
    ):
        """Create an :class:`repro.core.client.OpenFlameClient` for this federation."""
        from repro.core.client import OpenFlameClient

        return OpenFlameClient(
            federation=self,
            credential=credential,
            stub_resolver=stub_resolver,
            selection_seed=selection_seed,
            backoff_seed=backoff_seed,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def server_count(self) -> int:
        return len(self.servers)

    def reset_network_stats(self) -> None:
        self.network.reset_stats()
