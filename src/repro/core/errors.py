"""Top-level exception types for the OpenFLAME reproduction."""

from __future__ import annotations


class OpenFlameError(Exception):
    """Base class for errors raised by the federation layer."""


class FederationConfigError(OpenFlameError):
    """Raised for invalid federation configuration (duplicate servers, bad suffix)."""


class ServiceUnavailableError(OpenFlameError):
    """Raised when no map server can provide a requested service for a region."""
