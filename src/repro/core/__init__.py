"""Core public API: federation bootstrap and the OpenFLAME client."""

from repro.core.client import OpenFlameClient
from repro.core.config import FederationConfig
from repro.core.errors import (
    FederationConfigError,
    OpenFlameError,
    ServiceUnavailableError,
)
from repro.core.federation import Federation

__all__ = [
    "Federation",
    "FederationConfig",
    "FederationConfigError",
    "OpenFlameClient",
    "OpenFlameError",
    "ServiceUnavailableError",
]
