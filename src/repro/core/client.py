"""The OpenFLAME client: the public API spatial applications program against.

The client mirrors the service split of Section 5.2: every call first
discovers the relevant map servers (through DNS), fans the request out to
them, and merges/stitches/selects on the client side.  It is deliberately a
thin façade over the federated services so that applications (the examples in
``examples/``) read like the grocery-store walkthrough of Section 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.federation import Federation
from repro.dns.resolver import StubResolver
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import LatLng
from repro.localization.cues import CueBundle
from repro.localization.imu import DeadReckoningTracker
from repro.mapserver.auth import ANONYMOUS, Credential
from repro.mapserver.geocode import Address
from repro.routing.stitching import RouteStitcher
from repro.services.context import FederationContext
from repro.services.geocode import (
    FederatedGeocodeResult,
    FederatedGeocoder,
    FederatedReverseGeocodeResult,
)
from repro.services.localization import FederatedLocalizationResult, FederatedLocalizer
from repro.services.routing import FederatedRouteResult, FederatedRouter
from repro.services.search import FederatedSearch, FederatedSearchResult
from repro.services.tiles import FederatedTileClient, FederatedViewport
from repro.tiles.cache import TileCache


@dataclass
class OpenFlameClient:
    """A client device participating in an OpenFLAME federation."""

    federation: Federation
    credential: Credential | None = None
    stub_resolver: StubResolver | None = None
    """Resolver this device points at; ``None`` uses the federation default.
    Workloads use this to shard a fleet across shared regional resolvers."""
    selection_seed: int | None = None
    """Seed of this device's RFC 2782 weighted-selection RNG stream; the
    workload engine derives one per device for reproducible fleets."""
    backoff_seed: int | None = None
    """Seed of this device's retry-jitter RNG stream (full-jitter backoff);
    derived per device like ``selection_seed``."""
    context: FederationContext = field(init=False)
    geocoder: FederatedGeocoder = field(init=False)
    searcher: FederatedSearch = field(init=False)
    router: FederatedRouter = field(init=False)
    localizer: FederatedLocalizer = field(init=False)
    tile_client: FederatedTileClient = field(init=False)

    def __post_init__(self) -> None:
        self.context = self.federation.build_context(
            self.credential or ANONYMOUS,
            stub_resolver=self.stub_resolver,
            selection_seed=self.selection_seed,
            backoff_seed=self.backoff_seed,
        )
        self.geocoder = FederatedGeocoder(
            context=self.context, world_provider=self.federation.world_provider
        )
        self.searcher = FederatedSearch(context=self.context)
        self.router = FederatedRouter(
            context=self.context,
            stitcher=RouteStitcher(max_gap_meters=self.federation.config.route_stitch_max_gap_meters),
        )
        self.localizer = FederatedLocalizer(context=self.context)
        tile_cache_entries = self.federation.config.client_tile_cache_entries
        self.tile_client = FederatedTileClient(
            context=self.context,
            cache=TileCache(max_entries=tile_cache_entries) if tile_cache_entries > 0 else None,
        )

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------
    def discover(self, location: LatLng, uncertainty_meters: float = 100.0):
        """Discover the map servers covering a coarse location."""
        return self.context.discover_at(location, uncertainty_meters)

    # ------------------------------------------------------------------
    # Location-based services (Section 4, federated per Section 5.2)
    # ------------------------------------------------------------------
    def geocode(self, address: str | Address, limit: int = 5) -> FederatedGeocodeResult:
        """Forward geocode a textual address across the federation."""
        parsed = address if isinstance(address, Address) else Address.parse(address)
        return self.geocoder.geocode(parsed, limit)

    def reverse_geocode(self, location: LatLng, max_distance_meters: float = 250.0) -> FederatedReverseGeocodeResult:
        """Find the most precise named node near a location."""
        return self.geocoder.reverse_geocode(location, max_distance_meters)

    def search(
        self,
        query: str,
        near: LatLng,
        radius_meters: float = 500.0,
        limit: int = 10,
    ) -> FederatedSearchResult:
        """Location-based search ("seaweed near me") across discovered servers."""
        return self.searcher.search(query, near, radius_meters, limit)

    def route(
        self,
        origin: LatLng,
        destination: LatLng,
        metric: str = "distance",
        waypoints: list[LatLng] | None = None,
    ) -> FederatedRouteResult:
        """Compute a stitched multi-map route from origin to destination."""
        return self.router.route(origin, destination, metric, waypoints)

    def localize(
        self,
        coarse_location: LatLng,
        cues: CueBundle,
        tracker: DeadReckoningTracker | None = None,
    ) -> FederatedLocalizationResult:
        """Localize the device from its sensed cues via discovered map servers."""
        return self.localizer.localize(coarse_location, cues, tracker)

    def render_viewport(self, viewport: BoundingBox, zoom: int = 18) -> FederatedViewport:
        """Download and stitch tiles for a viewport from every relevant server."""
        return self.tile_client.render_viewport(viewport, zoom)

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    @property
    def network_messages(self) -> int:
        return self.context.network.stats.messages_sent

    @property
    def network_latency_ms(self) -> float:
        return self.context.network.stats.total_latency_ms

    def cache_stats(self) -> dict[str, float]:
        """This device's client-side cache counters (discovery + tiles)."""
        discovery_stats = self.context.discoverer.cache.stats
        tile_cache = self.tile_client.cache
        return {
            "discovery.hits": float(discovery_stats.hits),
            "discovery.misses": float(discovery_stats.misses),
            "discovery.hit_rate": discovery_stats.hit_rate,
            "tiles.hits": float(tile_cache.stats.hits) if tile_cache else 0.0,
            "tiles.misses": float(tile_cache.stats.misses) if tile_cache else 0.0,
            "tiles.hit_rate": tile_cache.stats.hit_rate if tile_cache else 0.0,
        }

    def availability_stats(self) -> dict[str, float]:
        """This device's failover counters (replica retries under churn)."""
        recorder = self.context.failover
        return {
            "chains": float(recorder.chains),
            "chains_failed": float(recorder.chains_failed),
            "failed_chain_rate": recorder.failed_chain_rate,
            "stale_attempts": float(recorder.stale_attempts),
            "stale_attempt_rate": recorder.stale_attempt_rate,
            "failovers": float(recorder.failovers),
            "backoff_ms_total": recorder.backoff_ms_total,
            "dead_detections_own": float(recorder.dead_detections_own),
            "dead_detections_shared": float(recorder.dead_detections_shared),
            "detect_mean_ms": recorder.detect_mean_ms,
        }
