"""Client retry/backoff policies for replica failover.

When a map-server request fails — the bounded queue shed it, or the server
is dead and the attempt timed out — the client may retry against the next
replica of the same coverage group.  How long it waits before that retry is
the :class:`RetryPolicy`:

* ``immediate`` — retry the next replica with no delay (fastest failover,
  but a hot group sees synchronized retry storms);
* ``backoff`` — classic capped exponential backoff per failed attempt;
* ``utilization`` — exponential backoff scaled by how loaded the *failed*
  server was (its queue depth relative to capacity), so retries against a
  saturated group spread out while retries after a one-off blip stay fast.

Delays are deterministic by default; ``jitter="full"`` draws a full-jitter
delay (``Uniform(0, computed)``, AWS-style) from a *seeded per-device* RNG
stream the caller provides, so a replica group's clients desynchronize
their retry storms without losing reproducibility.  Either way delays are
charged against the simulated clock by the caller, so backoff shows up in
client-observed latency percentiles.

``attempt_timeout_ms`` replaces the single constant ``dead_server_timeout``
cost with an escalating per-attempt patience: early attempts give up
quickly (fast failover), later attempts wait longer (the client is running
out of replicas), capped at ``dead_server_timeout_ms``.  ``None`` — the
default — keeps the historical constant-cost behaviour byte-identical.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

IMMEDIATE = "immediate"
BACKOFF = "backoff"
UTILIZATION = "utilization"

_KINDS = (IMMEDIATE, BACKOFF, UTILIZATION)

NO_JITTER = "none"
FULL_JITTER = "full"

_JITTER_MODES = (NO_JITTER, FULL_JITTER)


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """How a client paces failover attempts across a replica group."""

    kind: str = BACKOFF
    base_delay_ms: float = 10.0
    multiplier: float = 2.0
    max_delay_ms: float = 2_000.0
    max_attempts: int = 4
    """Upper bound on candidate attempts per logical target (first try
    included), regardless of how many replicas are advertised."""
    dead_server_timeout_ms: float = 200.0
    """What an attempt against a dead (unreachable) server costs the client
    before it gives up and fails over."""
    health_cooldown_seconds: float = 30.0
    """How long a replica stays demoted in the client's health tracker after
    a failed attempt."""
    jitter: str = NO_JITTER
    """``"none"`` (default) keeps fully deterministic delays; ``"full"``
    draws ``Uniform(0, computed_delay)`` from the caller-provided per-device
    RNG stream (AWS full jitter), desynchronizing retry storms."""
    attempt_timeout_ms: float | None = None
    """Per-attempt patience before abandoning an unresponsive server,
    escalating by ``multiplier`` per prior failure and capped at
    ``dead_server_timeout_ms``.  ``None`` (default) charges the constant
    ``dead_server_timeout_ms`` on every attempt — the legacy cost model."""

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown retry policy kind {self.kind!r}; expected one of {_KINDS}")
        if self.base_delay_ms < 0.0 or self.max_delay_ms < 0.0:
            raise ValueError("retry delays cannot be negative")
        if self.multiplier < 1.0:
            raise ValueError("backoff multiplier must be >= 1")
        if self.max_attempts < 1:
            raise ValueError("at least one attempt per target is required")
        if self.dead_server_timeout_ms < 0.0:
            raise ValueError("dead-server timeout cannot be negative")
        if self.health_cooldown_seconds < 0.0:
            raise ValueError("health cooldown cannot be negative")
        if self.jitter not in _JITTER_MODES:
            raise ValueError(
                f"unknown jitter mode {self.jitter!r}; expected one of {_JITTER_MODES}"
            )
        if self.attempt_timeout_ms is not None and self.attempt_timeout_ms <= 0.0:
            raise ValueError("attempt timeout must be positive when set")

    # ------------------------------------------------------------------
    # Constructors for the three canonical policies
    # ------------------------------------------------------------------
    @classmethod
    def immediate(cls, **overrides) -> "RetryPolicy":
        return cls(kind=IMMEDIATE, **overrides)

    @classmethod
    def exponential(cls, **overrides) -> "RetryPolicy":
        return cls(kind=BACKOFF, **overrides)

    @classmethod
    def utilization_aware(cls, **overrides) -> "RetryPolicy":
        return cls(kind=UTILIZATION, **overrides)

    @classmethod
    def full_jitter(cls, **overrides) -> "RetryPolicy":
        """Exponential backoff with full jitter and escalating timeouts —
        the recommended policy under correlated failures, where the
        deterministic policies synchronize a whole region's retries."""
        overrides.setdefault("jitter", FULL_JITTER)
        overrides.setdefault("attempt_timeout_ms", 50.0)
        return cls(kind=BACKOFF, **overrides)

    # ------------------------------------------------------------------
    # Delay computation
    # ------------------------------------------------------------------
    def delay_ms(
        self,
        failed_attempts: int,
        utilization: float = 0.0,
        rng: random.Random | None = None,
    ) -> float:
        """Milliseconds to wait before the next attempt.

        ``failed_attempts`` counts the attempts that have already failed for
        this logical request (>= 1 when a retry is being considered);
        ``utilization`` is the failed server's instantaneous load in [0, 1]
        (queue depth over capacity; 1.0 for a dead server), consulted only by
        the utilization-aware policy.  ``rng`` is the caller's seeded
        per-device stream, consulted only when ``jitter="full"`` — a no-jitter
        policy never draws from it, so legacy runs stay byte-identical.
        """
        if failed_attempts < 1:
            return 0.0
        if self.kind == IMMEDIATE:
            return 0.0
        delay = self.base_delay_ms * self.multiplier ** (failed_attempts - 1)
        if self.kind == UTILIZATION:
            # A server shedding load at rho -> 1 needs the group's retries
            # spread out; a barely-loaded blip barely changes the pacing.
            load = min(max(utilization, 0.0), 0.95)
            delay = delay / (1.0 - load)
        delay = min(delay, self.max_delay_ms)
        if self.jitter == FULL_JITTER and rng is not None and delay > 0.0:
            delay = rng.uniform(0.0, delay)
        return delay

    def timeout_ms(self, failed_attempts: int = 0) -> float:
        """What waiting out an unresponsive server costs on this attempt.

        With no ``attempt_timeout_ms`` the cost is the constant
        ``dead_server_timeout_ms`` (legacy).  With one, patience escalates —
        ``attempt_timeout_ms * multiplier ** failed_attempts`` — so the first
        failover is cheap and later attempts (fewer replicas left) wait
        longer, capped at ``dead_server_timeout_ms``.
        """
        if self.attempt_timeout_ms is None:
            return self.dead_server_timeout_ms
        timeout = self.attempt_timeout_ms * self.multiplier ** max(failed_attempts, 0)
        return min(timeout, self.dead_server_timeout_ms)
