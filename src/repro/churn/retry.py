"""Client retry/backoff policies for replica failover.

When a map-server request fails — the bounded queue shed it, or the server
is dead and the attempt timed out — the client may retry against the next
replica of the same coverage group.  How long it waits before that retry is
the :class:`RetryPolicy`:

* ``immediate`` — retry the next replica with no delay (fastest failover,
  but a hot group sees synchronized retry storms);
* ``backoff`` — classic capped exponential backoff per failed attempt;
* ``utilization`` — exponential backoff scaled by how loaded the *failed*
  server was (its queue depth relative to capacity), so retries against a
  saturated group spread out while retries after a one-off blip stay fast.

Delays are deterministic (no jitter draw here — the simulated network
already models jitter) and are charged against the simulated clock by the
caller, so backoff shows up in client-observed latency percentiles.
"""

from __future__ import annotations

from dataclasses import dataclass

IMMEDIATE = "immediate"
BACKOFF = "backoff"
UTILIZATION = "utilization"

_KINDS = (IMMEDIATE, BACKOFF, UTILIZATION)


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """How a client paces failover attempts across a replica group."""

    kind: str = BACKOFF
    base_delay_ms: float = 10.0
    multiplier: float = 2.0
    max_delay_ms: float = 2_000.0
    max_attempts: int = 4
    """Upper bound on candidate attempts per logical target (first try
    included), regardless of how many replicas are advertised."""
    dead_server_timeout_ms: float = 200.0
    """What an attempt against a dead (unreachable) server costs the client
    before it gives up and fails over."""
    health_cooldown_seconds: float = 30.0
    """How long a replica stays demoted in the client's health tracker after
    a failed attempt."""

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown retry policy kind {self.kind!r}; expected one of {_KINDS}")
        if self.base_delay_ms < 0.0 or self.max_delay_ms < 0.0:
            raise ValueError("retry delays cannot be negative")
        if self.multiplier < 1.0:
            raise ValueError("backoff multiplier must be >= 1")
        if self.max_attempts < 1:
            raise ValueError("at least one attempt per target is required")
        if self.dead_server_timeout_ms < 0.0:
            raise ValueError("dead-server timeout cannot be negative")
        if self.health_cooldown_seconds < 0.0:
            raise ValueError("health cooldown cannot be negative")

    # ------------------------------------------------------------------
    # Constructors for the three canonical policies
    # ------------------------------------------------------------------
    @classmethod
    def immediate(cls, **overrides) -> "RetryPolicy":
        return cls(kind=IMMEDIATE, **overrides)

    @classmethod
    def exponential(cls, **overrides) -> "RetryPolicy":
        return cls(kind=BACKOFF, **overrides)

    @classmethod
    def utilization_aware(cls, **overrides) -> "RetryPolicy":
        return cls(kind=UTILIZATION, **overrides)

    # ------------------------------------------------------------------
    # Delay computation
    # ------------------------------------------------------------------
    def delay_ms(self, failed_attempts: int, utilization: float = 0.0) -> float:
        """Milliseconds to wait before the next attempt.

        ``failed_attempts`` counts the attempts that have already failed for
        this logical request (>= 1 when a retry is being considered);
        ``utilization`` is the failed server's instantaneous load in [0, 1]
        (queue depth over capacity; 1.0 for a dead server), consulted only by
        the utilization-aware policy.
        """
        if failed_attempts < 1:
            return 0.0
        if self.kind == IMMEDIATE:
            return 0.0
        delay = self.base_delay_ms * self.multiplier ** (failed_attempts - 1)
        if self.kind == UTILIZATION:
            # A server shedding load at rho -> 1 needs the group's retries
            # spread out; a barely-loaded blip barely changes the pacing.
            load = min(max(utilization, 0.0), 0.95)
            delay = delay / (1.0 - load)
        return min(delay, self.max_delay_ms)
