"""Deterministic churn schedules: when servers join, leave and crash.

A :class:`ChurnSchedule` is a time-ordered list of membership events over a
fixed set of eligible server ids.  Schedules are either *trace-driven*
(:meth:`ChurnSchedule.from_events`, for tests and replayed incidents) or
*generated* (:meth:`ChurnSchedule.poisson`): crash/leave arrivals follow a
seeded Poisson process, each taking down one currently-up server and
scheduling its rejoin ``downtime_seconds`` later.  Generation is pure in its
arguments, so a fixed seed reproduces the same incident tape byte for byte.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum


class ChurnEventKind(str, Enum):
    """What happens to a server at a scheduled instant."""

    JOIN = "join"
    """The server (re)joins: reachable again and (re)registered in the
    discovery DNS if its records lapsed while it was away."""

    LEAVE = "leave"
    """Graceful departure: the operator deregisters (records are withdrawn
    from the authority immediately; only caches stay stale)."""

    CRASH = "crash"
    """Unplanned death: the server stops answering but its discovery records
    linger at the authority until its registration lease expires."""


@dataclass(frozen=True, slots=True)
class ChurnEvent:
    """One membership change at one simulated instant."""

    at_seconds: float
    kind: ChurnEventKind
    server_id: str

    def __post_init__(self) -> None:
        if self.at_seconds < 0.0:
            raise ValueError("churn events cannot predate the run")


@dataclass(frozen=True)
class ChurnSchedule:
    """A time-ordered tape of churn events over eligible servers."""

    events: tuple[ChurnEvent, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.events, key=lambda e: (e.at_seconds, e.server_id, e.kind.value))
        )
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def horizon_seconds(self) -> float:
        return self.events[-1].at_seconds if self.events else 0.0

    @property
    def servers(self) -> tuple[str, ...]:
        return tuple(sorted({event.server_id for event in self.events}))

    def events_for(self, server_id: str) -> tuple[ChurnEvent, ...]:
        return tuple(event for event in self.events if event.server_id == server_id)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_events(cls, events: list[ChurnEvent] | tuple[ChurnEvent, ...]) -> "ChurnSchedule":
        """A trace-driven schedule from an explicit event list."""
        return cls(tuple(events))

    @classmethod
    def poisson(
        cls,
        server_ids: list[str] | tuple[str, ...],
        rate_per_minute: float,
        horizon_seconds: float,
        downtime_seconds: float = 60.0,
        crash_fraction: float = 1.0,
        seed: int = 0,
    ) -> "ChurnSchedule":
        """Generate a Poisson churn tape over ``server_ids``.

        Failures (one per arrival of a Poisson process with ``rate_per_minute``
        arrivals per simulated minute, aggregate over the whole set) pick a
        uniformly random *currently-up* server; each failure is a CRASH with
        probability ``crash_fraction`` (a graceful LEAVE otherwise) and is
        followed by a JOIN ``downtime_seconds`` later.  Arrivals finding every
        server already down are dropped rather than deferred, keeping the
        effective rate honest under extreme settings.
        """
        if rate_per_minute < 0.0:
            raise ValueError("churn rate cannot be negative")
        if horizon_seconds < 0.0:
            raise ValueError("horizon cannot be negative")
        if downtime_seconds <= 0.0:
            raise ValueError("downtime must be positive")
        if not (0.0 <= crash_fraction <= 1.0):
            raise ValueError("crash fraction must be in [0, 1]")
        eligible = sorted(set(server_ids))
        if rate_per_minute == 0.0 or not eligible:
            return cls(())

        rng = random.Random(seed)
        mean_gap = 60.0 / rate_per_minute
        events: list[ChurnEvent] = []
        down_until: dict[str, float] = {}
        t = 0.0
        while True:
            t += rng.expovariate(1.0 / mean_gap)
            if t >= horizon_seconds:
                break
            up = [sid for sid in eligible if down_until.get(sid, 0.0) <= t]
            if not up:
                continue
            victim = up[rng.randrange(len(up))]
            kind = (
                ChurnEventKind.CRASH
                if rng.random() < crash_fraction
                else ChurnEventKind.LEAVE
            )
            events.append(ChurnEvent(t, kind, victim))
            rejoin_at = t + downtime_seconds
            down_until[victim] = rejoin_at
            events.append(ChurnEvent(rejoin_at, ChurnEventKind.JOIN, victim))
        return cls(tuple(events))
