"""Request-target planning and client-side failover across replicas.

Discovery returns a flat list of server ids; under replication several of
those ids are interchangeable replicas of one coverage group.  This module
collapses the flat list into *logical request targets* (one per group, one
per standalone server) and executes a request against a target with
failover: on a shed request
(:class:`~repro.simulation.queueing.ServerOverloadedError`) or a dead-server
timeout, back off per the :class:`~repro.churn.retry.RetryPolicy` and try
the next candidate.  Every attempt, failure, stale-cache hit and failover
latency is recorded in the device's :class:`FailoverRecorder`, which the
workload engine aggregates into the run's availability metrics.

Candidate order within a replica group is the load-balancing policy:

* :data:`WEIGHTED` (the default) — RFC 2782 SRV semantics: strict priority
  tiers (every candidate of a lower ``priority`` value is tried before any
  of a higher one), weighted-random selection within a tier from the
  device's seeded RNG stream, zero-weight candidates only after every
  weighted one.  Replicas a device holds unhealthy are pushed behind all
  healthy candidates regardless of tier, so load balancing never overrules
  known-dead avoidance.
* :data:`FIRST_HEALTHY` — the legacy ordering: healthiest first per the
  device's :class:`ReplicaHealth`, discovery order otherwise.  Kept as an
  explicit mode so experiments can measure what RFC 2782 buys.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping, Sequence, TypeVar

from repro.churn.health import SHARED_NEWS, ReplicaHealth
from repro.churn.retry import RetryPolicy
from repro.mapserver.policy import AccessDenied
from repro.simulation.network import NetworkTimeoutError
from repro.simulation.queueing import ServerOverloadedError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mapserver.server import MapServer
    from repro.simulation.network import SimulatedNetwork

T = TypeVar("T")

WEIGHTED = "weighted"
FIRST_HEALTHY = "first-healthy"
SELECTION_MODES = (WEIGHTED, FIRST_HEALTHY)

SrvInfo = Mapping[str, tuple[int, int]]
"""Per-server ``(priority, weight)`` decoded from the SRV registrations."""


class TargetUnavailableError(Exception):
    """Raised when a logical target's whole replica chain fails.

    ``denied`` distinguishes a policy refusal (not an availability event —
    the server is healthy, the caller is not allowed) from an exhausted
    chain of overloaded/dead replicas.
    """

    def __init__(self, target_key: str, reason: str, denied: bool = False) -> None:
        super().__init__(f"target {target_key!r} unavailable: {reason}")
        self.target_key = target_key
        self.denied = denied


@dataclass(frozen=True)
class RequestTarget:
    """One logical destination: a replica group or a standalone server."""

    key: str
    candidates: tuple[tuple[str, "MapServer | None"], ...]
    """``(server_id, server)`` pairs in attempt order; ``server`` is ``None``
    for a discovered id that is no longer reachable (crashed or departed —
    the stale-cache case)."""

    @property
    def candidate_ids(self) -> tuple[str, ...]:
        return tuple(server_id for server_id, _ in self.candidates)


@dataclass
class FailoverRecorder:
    """Per-device accounting of attempts, failures and failover latency."""

    chains: int = 0
    """Logical target chains executed (one per target per request fan-out)."""
    chains_ok: int = 0
    chains_failed: int = 0
    """Chains that exhausted every candidate (the availability failures)."""
    chains_denied: int = 0
    """Chains abandoned on a policy denial (not an availability event)."""
    attempts: int = 0
    failed_attempts: int = 0
    stale_attempts: int = 0
    """Attempts addressed to a server id no longer reachable — the client
    acted on a stale cached discovery result."""
    failovers: int = 0
    """Chains that succeeded only after at least one failed attempt."""
    backoff_ms_total: float = 0.0
    failover_ms: list[float] = field(default_factory=list)
    """Per-failover latency: first failure detection to eventual success."""
    dead_detections_own: int = 0
    """Times this device learned a replica was dead the hard way: by paying
    its own dead-server timeout with no prior knowledge."""
    dead_detections_shared: int = 0
    """Times this device learned a replica was dead from its resolver pool's
    shared health board instead — for free."""
    detect_ms: list[float] = field(default_factory=list)
    """Client-time cost of each first detection: the full dead-server timeout
    for an own detection, 0 for one learned from the pool.  The mean is the
    run's 'time to detect a crashed replica' headline."""

    @property
    def failed_chain_rate(self) -> float:
        measured = self.chains - self.chains_denied
        return self.chains_failed / measured if measured else 0.0

    @property
    def stale_attempt_rate(self) -> float:
        return self.stale_attempts / self.attempts if self.attempts else 0.0

    @property
    def detect_mean_ms(self) -> float:
        """Mean client-time cost of learning a replica was dead."""
        return sum(self.detect_ms) / len(self.detect_ms) if self.detect_ms else 0.0

    def merge_from(self, other: "FailoverRecorder") -> None:
        self.chains += other.chains
        self.chains_ok += other.chains_ok
        self.chains_failed += other.chains_failed
        self.chains_denied += other.chains_denied
        self.attempts += other.attempts
        self.failed_attempts += other.failed_attempts
        self.stale_attempts += other.stale_attempts
        self.failovers += other.failovers
        self.backoff_ms_total += other.backoff_ms_total
        self.failover_ms.extend(other.failover_ms)
        self.dead_detections_own += other.dead_detections_own
        self.dead_detections_shared += other.dead_detections_shared
        self.detect_ms.extend(other.detect_ms)


def rfc2782_order(
    server_ids: Sequence[str],
    srv_of: SrvInfo,
    rng: random.Random,
) -> list[str]:
    """Order candidate ids by RFC 2782 SRV semantics.

    Strict priority tiers (ascending ``priority``); within a tier, repeated
    weighted-random selection without replacement from ``rng`` — a candidate
    of weight 3 is three times as likely as one of weight 1 to be picked at
    each step — with zero-weight candidates appended only after every
    weighted one (RFC 2782's "no weight: last resort" reading, made
    deterministic).  Ids missing from ``srv_of`` count as priority 0,
    weight 0.  Ties inside a tier start from sorted id order so the shuffle
    depends only on the RNG stream, never on discovery order.
    """
    tiers: dict[int, list[str]] = {}
    for server_id in server_ids:
        priority, _ = srv_of.get(server_id, (0, 0))
        tiers.setdefault(priority, []).append(server_id)

    ordered: list[str] = []
    for priority in sorted(tiers):
        tier = sorted(tiers[priority])
        weighted = [sid for sid in tier if srv_of.get(sid, (0, 0))[1] > 0]
        zero = [sid for sid in tier if srv_of.get(sid, (0, 0))[1] == 0]
        while weighted:
            if len(weighted) == 1:
                ordered.append(weighted.pop())
                break
            total = sum(srv_of[sid][1] for sid in weighted)
            threshold = rng.random() * total
            cumulative = 0.0
            chosen = len(weighted) - 1
            for index, sid in enumerate(weighted):
                cumulative += srv_of[sid][1]
                if threshold < cumulative:
                    chosen = index
                    break
            ordered.append(weighted.pop(chosen))
        ordered.extend(zero)
    return ordered


def plan_targets(
    server_ids: Sequence[str],
    directory: Mapping[str, "MapServer"],
    group_of: Mapping[str, str],
    health: ReplicaHealth | None = None,
    include_dead: bool = False,
    selection: str = FIRST_HEALTHY,
    srv_of: SrvInfo | None = None,
    rng: random.Random | None = None,
    recorder: FailoverRecorder | None = None,
) -> list[RequestTarget]:
    """Collapse discovered server ids into ordered logical request targets.

    Targets appear in discovery order of their first member.  Within a
    target, candidate order is the ``selection`` policy: :data:`WEIGHTED`
    draws an RFC 2782 order from the device's ``rng`` stream (healthy
    candidates first, then known-unhealthy ones healthiest-first);
    :data:`FIRST_HEALTHY` keeps the legacy health sort.  Dead ids (absent
    from ``directory``) are kept as ``(id, None)`` candidates only when
    ``include_dead`` is set — the legacy path drops them silently, exactly
    as :meth:`FederationContext.servers` always has.

    Planning is also where pool gossip pays off: with a ``recorder`` given,
    every candidate the device's health view first flags off the shared
    board is counted as a zero-cost dead-replica detection.
    """
    members: dict[str, list[str]] = {}
    order: list[str] = []
    for server_id in server_ids:
        key = group_of.get(server_id, server_id)
        bucket = members.get(key)
        if bucket is None:
            bucket = members[key] = []
            order.append(key)
        if server_id not in bucket:
            bucket.append(server_id)

    targets: list[RequestTarget] = []
    for key in order:
        ids = members[key]
        if health is not None and health.board is not None and recorder is not None:
            # Gossip accounting only exists with a pool board attached; the
            # common per-device configuration skips the consult walk on the
            # request hot path entirely.
            for server_id in ids:
                if health.consult(server_id) == SHARED_NEWS:
                    recorder.dead_detections_shared += 1
                    recorder.detect_ms.append(0.0)
        if len(ids) > 1:
            if selection == WEIGHTED and srv_of is not None and rng is not None:
                if health is None:
                    ids = rfc2782_order(ids, srv_of, rng)
                else:
                    healthy = [sid for sid in ids if health.is_healthy(sid)]
                    suspect = [sid for sid in ids if not health.is_healthy(sid)]
                    ids = rfc2782_order(healthy, srv_of, rng) + sorted(
                        suspect, key=health.sort_key
                    )
            elif health is not None:
                ids = sorted(ids, key=health.sort_key)
        candidates: list[tuple[str, "MapServer | None"]] = []
        for server_id in ids:
            server = directory.get(server_id)
            if server is None and not include_dead:
                continue
            candidates.append((server_id, server))
        if candidates:
            targets.append(RequestTarget(key=key, candidates=tuple(candidates)))
    return targets


def _instantaneous_load(server: "MapServer | None") -> float:
    """A server's load in [0, 1] for the utilization-aware retry policy."""
    if server is None:
        return 1.0
    queue = server.queue
    if queue is None:
        return 0.0
    slots = queue.capacity * queue.workers
    return min(1.0, queue.depth / slots) if slots else 0.0


def execute_with_failover(
    target: RequestTarget,
    operation: Callable[["MapServer"], T],
    network: "SimulatedNetwork",
    policy: RetryPolicy | None,
    health: ReplicaHealth | None,
    recorder: FailoverRecorder,
    rng: random.Random | None = None,
) -> T:
    """Run ``operation`` against ``target`` with replica failover.

    Charges one client↔map-server exchange per live attempt (and a
    dead-server timeout per dead or partitioned-away attempt), paces retries
    per ``policy`` (drawing full-jitter delays from ``rng`` when the policy
    asks for them), and raises :class:`TargetUnavailableError` once the
    chain is exhausted.  With ``policy=None`` the chain is a single attempt
    — the legacy skip-on-failure behaviour, byte-identical in message
    counts.
    """
    recorder.chains += 1
    clock = network.clock
    max_attempts = policy.max_attempts if policy is not None else 1
    failed = 0
    failed_load = 0.0
    """Instantaneous load of the most recently *failed* server — what the
    utilization-aware policy paces the next retry by (retries against a
    saturated replica spread out; a dead one reads as fully loaded)."""
    first_failure_at: float | None = None

    for server_id, server in target.candidates:
        if failed >= max_attempts:
            break
        if failed > 0 and policy is not None:
            delay_ms = policy.delay_ms(failed, failed_load, rng=rng)
            if delay_ms > 0.0:
                recorder.backoff_ms_total += delay_ms
                network.client_backoff(delay_ms)

        recorder.attempts += 1
        if server is None or not network.server_reachable(server_id):
            # Stale discovery (the id resolves to nothing reachable) or a
            # partition between this client and the server.  Either way the
            # client only learns that by waiting out a timeout, and either
            # way the server is unreachable-dead from where it stands.
            if server is None:
                recorder.stale_attempts += 1
            recorder.failed_attempts += 1
            timeout_ms = policy.timeout_ms(failed) if policy is not None else 0.0
            if health is None or not health.knew_dead(server_id):
                # A first detection, paid for the hard way: nothing — not
                # the device's own memory, not its pool's board — warned it.
                recorder.dead_detections_own += 1
                recorder.detect_ms.append(timeout_ms)
            network.dead_server_timeout(timeout_ms)
            if health is not None:
                health.record_failure(server_id, dead=True)
            failed += 1
            failed_load = 1.0
            if first_failure_at is None:
                first_failure_at = clock.now()
            continue

        try:
            network.client_map_server_exchange(
                server_id=server_id, fail_on_exhaustion=policy is not None
            )
        except NetworkTimeoutError:
            # The exchange burned its whole retransmit budget (loss burst /
            # gray failure) and was abandoned.  Flaky, not proven dead: the
            # failure is recorded per-device without dead-gossip.
            recorder.failed_attempts += 1
            network.dead_server_timeout(policy.timeout_ms(failed) if policy else 0.0)
            if health is not None:
                health.record_failure(server_id)
            failed += 1
            failed_load = _instantaneous_load(server)
            if first_failure_at is None:
                first_failure_at = clock.now()
            continue
        try:
            result = operation(server)
        except AccessDenied:
            recorder.chains_denied += 1
            raise TargetUnavailableError(target.key, f"policy denied {server_id!r}", denied=True)
        except ServerOverloadedError:
            recorder.failed_attempts += 1
            if health is not None:
                health.record_failure(server_id)
            failed += 1
            failed_load = _instantaneous_load(server)
            if first_failure_at is None:
                first_failure_at = clock.now()
            continue

        recorder.chains_ok += 1
        if health is not None:
            health.record_success(server_id)
        if failed > 0 and first_failure_at is not None:
            recorder.failovers += 1
            recorder.failover_ms.append((clock.now() - first_failure_at) * 1000.0)
        return result

    recorder.chains_failed += 1
    raise TargetUnavailableError(
        target.key, f"all {len(target.candidates)} replica(s) failed after {failed} attempt(s)"
    )
