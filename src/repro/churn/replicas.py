"""Replica groups: several map servers advertising one coverage region.

An operator that wants availability under churn runs N replicas of its map
server.  All N advertise the *same* coverage region under the *same* spatial
names — each covering cell holds one SRV record per replica — so a single
discovery query returns every replica and the client can fail over between
them without another DNS round trip.

With RFC 2782 load sharing the records are no longer interchangeable blobs:
each replica carries a ``priority`` (strict tiers — lower serves first) and a
``weight`` (share of traffic within its tier), so a group of heterogeneous
machines can advertise e.g. weights ``(3, 1)`` and have clients spread load
3:1 instead of hammering whichever replica sorts first.

Replica server ids are derived from the group id
(:func:`replica_server_id`), which keeps directory keys and SRV targets
unique while letting any party recover the group from an id.
"""

from __future__ import annotations

from dataclasses import dataclass, field

DEFAULT_REPLICA_WEIGHT = 1
"""Weight every replica gets when the operator does not configure any:
equal positive weights make RFC 2782 selection spread load uniformly."""


def replica_server_id(group_id: str, index: int) -> str:
    """The directory/SRV identifier of replica ``index`` of ``group_id``."""
    if index < 0:
        raise ValueError("replica index cannot be negative")
    return f"r{index}.{group_id}"


@dataclass
class ReplicaGroup:
    """One logical coverage region served by interchangeable replicas."""

    group_id: str
    server_ids: tuple[str, ...] = ()
    weights: tuple[int, ...] = ()
    """Per-replica RFC 2782 weight, aligned with ``server_ids``.  Empty means
    "equal": every replica gets :data:`DEFAULT_REPLICA_WEIGHT`."""
    priorities: tuple[int, ...] = ()
    """Per-replica RFC 2782 priority tier, aligned with ``server_ids``.
    Empty means every replica shares tier 0."""
    _membership: dict[str, bool] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not self.server_ids:
            raise ValueError("a replica group needs at least one replica")
        if len(set(self.server_ids)) != len(self.server_ids):
            raise ValueError("replica server ids must be unique within a group")
        if not self.weights:
            self.weights = tuple(DEFAULT_REPLICA_WEIGHT for _ in self.server_ids)
        if not self.priorities:
            self.priorities = tuple(0 for _ in self.server_ids)
        if len(self.weights) != len(self.server_ids):
            raise ValueError("weights must align with server_ids")
        if len(self.priorities) != len(self.server_ids):
            raise ValueError("priorities must align with server_ids")
        if any(weight < 0 for weight in self.weights):
            raise ValueError("replica weights cannot be negative")
        if any(priority < 0 for priority in self.priorities):
            raise ValueError("replica priorities cannot be negative")
        if all(weight == 0 for weight in self.weights) and len(self.server_ids) > 1:
            raise ValueError(
                "a replica group needs at least one positive weight "
                "(all-zero weights would leave RFC 2782 selection nothing to pick)"
            )
        for server_id in self.server_ids:
            self._membership.setdefault(server_id, True)

    def __len__(self) -> int:
        return len(self.server_ids)

    def __contains__(self, server_id: str) -> bool:
        return server_id in self._membership

    @property
    def replica_count(self) -> int:
        return len(self.server_ids)

    def weight_of(self, server_id: str) -> int:
        return self.weights[self.server_ids.index(server_id)]

    def priority_of(self, server_id: str) -> int:
        return self.priorities[self.server_ids.index(server_id)]

    # ------------------------------------------------------------------
    # Live mutation (operator control plane)
    # ------------------------------------------------------------------
    def set_weight(self, server_id: str, weight: int) -> None:
        """Change one replica's advertised weight in place.

        Draining the *last* positively-weighted replica of a multi-replica
        group is rejected — it would leave RFC 2782 selection nothing but
        last resorts, which is an operator error, not a drain (drain the
        replicas one at a time and the guard never triggers).
        """
        if weight < 0:
            raise ValueError("replica weights cannot be negative")
        index = self.server_ids.index(server_id)
        prospective = list(self.weights)
        prospective[index] = weight
        if all(w == 0 for w in prospective) and len(self.server_ids) > 1:
            raise ValueError(
                f"draining {server_id!r} would leave replica group "
                f"{self.group_id!r} with no positive weight"
            )
        self.weights = tuple(prospective)

    def set_priority(self, server_id: str, priority: int) -> None:
        """Move one replica to a different strict priority tier in place."""
        if priority < 0:
            raise ValueError("replica priorities cannot be negative")
        index = self.server_ids.index(server_id)
        prospective = list(self.priorities)
        prospective[index] = priority
        self.priorities = tuple(prospective)

    def extend(
        self, server_ids: tuple[str, ...], weight: int = 0, priority: int = 0
    ) -> None:
        """Add replicas to a live group, all at one ``(priority, weight)``.

        This is the warm-pool provisioning hook: standbys join the group at
        weight 0 (healthy-but-last-resort) so a later promotion is a pure
        weight change.  The new ids must be fresh; weight/priority must be
        non-negative (the all-zero-weight guard cannot trigger here because
        extension never removes an existing positive weight).
        """
        if not server_ids:
            return
        if weight < 0:
            raise ValueError("replica weights cannot be negative")
        if priority < 0:
            raise ValueError("replica priorities cannot be negative")
        for server_id in server_ids:
            if server_id in self._membership:
                raise ValueError(
                    f"replica {server_id!r} is already a member of group {self.group_id!r}"
                )
        self.server_ids = self.server_ids + tuple(server_ids)
        self.weights = self.weights + tuple(weight for _ in server_ids)
        self.priorities = self.priorities + tuple(priority for _ in server_ids)
        for server_id in server_ids:
            self._membership[server_id] = True
