"""Replica groups: several map servers advertising one coverage region.

An operator that wants availability under churn runs N replicas of its map
server.  All N advertise the *same* coverage region under the *same* spatial
names — each covering cell holds one SRV record per replica — so a single
discovery query returns every replica and the client can fail over between
them without another DNS round trip.

Replica server ids are derived from the group id
(:func:`replica_server_id`), which keeps directory keys and SRV targets
unique while letting any party recover the group from an id.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def replica_server_id(group_id: str, index: int) -> str:
    """The directory/SRV identifier of replica ``index`` of ``group_id``."""
    if index < 0:
        raise ValueError("replica index cannot be negative")
    return f"r{index}.{group_id}"


@dataclass
class ReplicaGroup:
    """One logical coverage region served by interchangeable replicas."""

    group_id: str
    server_ids: tuple[str, ...] = ()
    _membership: dict[str, bool] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not self.server_ids:
            raise ValueError("a replica group needs at least one replica")
        for server_id in self.server_ids:
            self._membership.setdefault(server_id, True)

    def __len__(self) -> int:
        return len(self.server_ids)

    def __contains__(self, server_id: str) -> bool:
        return server_id in self._membership

    @property
    def replica_count(self) -> int:
        return len(self.server_ids)
