"""Applying a churn schedule to a live federation.

The :class:`ChurnController` is the deployment-side actor of the churn
subsystem: as simulated time passes it takes due :class:`ChurnEvent`s and
performs them against the :class:`~repro.core.federation.Federation` —
removing crashed servers from the reachable directory, withdrawing a
graceful leaver's discovery records at the authority, re-registering
rejoiners, and expiring the registration *lease* of a crashed server that
stopped refreshing it (records linger at the authority for the lease, then
vanish; caches stay stale until their own TTLs lapse — two distinct decay
clocks, both measured by the workload engine).
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.churn.schedule import ChurnEventKind, ChurnSchedule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.federation import Federation

LEASE_EXPIRED = "lease-expired"
"""Pseudo-event kind recorded when a crashed server's registration lapses."""


@dataclass(frozen=True, slots=True)
class AppliedChurnEvent:
    """One event the controller performed (or skipped as inapplicable)."""

    at_seconds: float
    kind: str
    server_id: str
    applied: bool = True


@dataclass
class ChurnController:
    """Drives scheduled membership changes through a federation mid-run."""

    federation: "Federation"
    schedule: ChurnSchedule
    lease_seconds: float | None = None
    """How long a crashed server's discovery records survive at the
    authority (its registration lease).  ``None`` uses the federation's
    ``registration_ttl_seconds`` — the paper's long-TTL registrants simply
    never expire within a short run."""

    applied: list[AppliedChurnEvent] = field(default_factory=list)
    rejoined_at: dict[str, float] = field(default_factory=dict)
    """Most recent JOIN instant per server — the workload engine measures
    time-to-rediscovery from these."""
    crashed_at: dict[str, float] = field(default_factory=dict)
    _cursor: int = 0
    _lease_expiries: list[tuple[float, str]] = field(default_factory=list)

    @property
    def effective_lease_seconds(self) -> float:
        if self.lease_seconds is not None:
            return self.lease_seconds
        return self.federation.config.registration_ttl_seconds

    @property
    def pending_events(self) -> int:
        return len(self.schedule.events) - self._cursor + len(self._lease_expiries)

    def apply_until(self, now: float) -> list[AppliedChurnEvent]:
        """Apply every event (and lease expiry) due at or before ``now``."""
        performed: list[AppliedChurnEvent] = []
        events = self.schedule.events
        while True:
            next_event = events[self._cursor] if self._cursor < len(events) else None
            next_expiry = self._lease_expiries[0] if self._lease_expiries else None
            take_expiry = next_expiry is not None and (
                next_event is None or next_expiry[0] <= next_event.at_seconds
            )
            if take_expiry:
                if next_expiry[0] > now:
                    break
                self._lease_expiries.pop(0)
                performed.append(self._expire_lease(*next_expiry))
            elif next_event is not None:
                if next_event.at_seconds > now:
                    break
                self._cursor += 1
                performed.append(self._apply(next_event.at_seconds, next_event.kind, next_event.server_id))
            else:
                break
        self.applied.extend(performed)
        return performed

    # ------------------------------------------------------------------
    # Event application
    # ------------------------------------------------------------------
    def _apply(self, at: float, kind: ChurnEventKind, server_id: str) -> AppliedChurnEvent:
        federation = self.federation
        if kind == ChurnEventKind.CRASH:
            if server_id not in federation.servers:
                return AppliedChurnEvent(at, kind.value, server_id, applied=False)
            federation.crash_map_server(server_id)
            self.crashed_at[server_id] = at
            insort(self._lease_expiries, (at + self.effective_lease_seconds, server_id))
            return AppliedChurnEvent(at, kind.value, server_id)
        if kind == ChurnEventKind.LEAVE:
            if server_id not in federation.servers:
                return AppliedChurnEvent(at, kind.value, server_id, applied=False)
            federation.leave_map_server(server_id)
            return AppliedChurnEvent(at, kind.value, server_id)
        # JOIN: revive an offline server (no-op for one that never left).
        if not federation.is_offline(server_id):
            return AppliedChurnEvent(at, kind.value, server_id, applied=False)
        federation.revive_map_server(server_id)
        self.rejoined_at[server_id] = at
        self.crashed_at.pop(server_id, None)
        # Rejoining refreshes the registration lease: the old crash's
        # pending expiry must not fire against a later crash's records.
        self._lease_expiries = [
            entry for entry in self._lease_expiries if entry[1] != server_id
        ]
        return AppliedChurnEvent(at, kind.value, server_id)

    def _expire_lease(self, at: float, server_id: str) -> AppliedChurnEvent:
        federation = self.federation
        # Only expire if the server is still down and still registered: a
        # rejoin before the lease lapsed refreshed the registration.
        if federation.is_offline(server_id) and federation.registration_for(server_id) is not None:
            federation.expire_registration(server_id)
            return AppliedChurnEvent(at, LEASE_EXPIRED, server_id)
        return AppliedChurnEvent(at, LEASE_EXPIRED, server_id, applied=False)
