"""Client-side replica health tracking.

Each device remembers which replicas recently failed it and demotes them for
a cooldown window, so consecutive requests do not keep paying the dead-server
timeout for a replica the device already knows is sick.  The tracker is
deliberately per-device state (there is no gossip): a replica another device
saw fail is still fair game here, exactly as in a real fleet of independent
clients.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simulation.clock import SimulatedClock


@dataclass
class ReplicaHealth:
    """Per-device failure memory with a cooldown window."""

    clock: SimulatedClock
    cooldown_seconds: float = 30.0
    _demoted_until: dict[str, float] = field(default_factory=dict)
    _failures: dict[str, int] = field(default_factory=dict)

    def record_failure(self, server_id: str) -> None:
        """Demote a replica for the cooldown window (failures accumulate)."""
        self._failures[server_id] = self._failures.get(server_id, 0) + 1
        if self.cooldown_seconds > 0.0:
            self._demoted_until[server_id] = self.clock.now() + self.cooldown_seconds

    def record_success(self, server_id: str) -> None:
        """A successful response immediately rehabilitates the replica."""
        self._demoted_until.pop(server_id, None)
        self._failures.pop(server_id, None)

    def is_healthy(self, server_id: str) -> bool:
        until = self._demoted_until.get(server_id)
        if until is None:
            return True
        if until <= self.clock.now():
            # The cooldown is the tracker's whole memory horizon: a replica
            # that served out its demotion starts with a clean slate, so a
            # crashed-and-rejoined server wins traffic back instead of being
            # demoted forever by its accumulated history.
            del self._demoted_until[server_id]
            self._failures.pop(server_id, None)
            return True
        return False

    def failure_count(self, server_id: str) -> int:
        return self._failures.get(server_id, 0)

    def sort_key(self, server_id: str) -> tuple[int, int, str]:
        """Ordering key: healthy first, then fewest recorded failures.

        The trailing id keeps the order total and deterministic.
        """
        return (0 if self.is_healthy(server_id) else 1, self.failure_count(server_id), server_id)
