"""Client-side replica health tracking, optionally shared per resolver pool.

Each device remembers which replicas recently failed it and demotes them for
a cooldown window, so consecutive requests do not keep paying the dead-server
timeout for a replica the device already knows is sick.

By default the tracker is per-device state, exactly as in a real fleet of
independent clients: a replica another device saw fail is still fair game
here.  With ``FederationConfig.shared_health`` the devices behind one shared
resolver pool additionally gossip through a :class:`SharedHealthBoard` —
the pool-level "this replica is dead" view.  The first device to pay a
dead-server timeout posts the replica to its pool's board; every other
device in the pool learns the replica is suspect the next time it plans a
request, *without* paying its own timeout.  Board entries carry a TTL so a
revived server is re-tried (and rediscovered) once the entry lapses, no
matter how many devices reported it dead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simulation.clock import SimulatedClock

HEALTHY = "healthy"
"""Consult verdict: nothing known against the replica."""
KNOWN_DEAD = "known-dead"
"""Consult verdict: this device already knew (own demotion or old news)."""
SHARED_NEWS = "shared-news"
"""Consult verdict: the pool board just told this device the replica is
suspect — the detection the device did NOT have to pay a timeout for."""


@dataclass
class SharedHealthBoard:
    """One resolver pool's shared view of dead replicas, with entry TTLs.

    ``epoch`` increments every time a replica goes from clean to suspect, so
    devices can tell fresh news from an outage they already incorporated
    (a device acknowledges each (replica, epoch) pair at most once).
    """

    clock: SimulatedClock
    ttl_seconds: float = 30.0
    _suspect_until: dict[str, float] = field(default_factory=dict)
    _suspected_at: dict[str, float] = field(default_factory=dict)
    """When each live entry was last (re)posted — devices compare their own
    last success against this to tell stale suspicion from fresh news."""
    _epochs: dict[str, int] = field(default_factory=dict)
    reports: int = 0
    recoveries: int = 0

    def __post_init__(self) -> None:
        if self.ttl_seconds <= 0.0:
            raise ValueError("shared-health entry TTL must be positive")

    def report_failure(self, server_id: str) -> None:
        """A device failed against ``server_id``: (re)post it to the board."""
        now = self.clock.now()
        self.reports += 1
        if self._suspect_until.get(server_id, 0.0) <= now:
            # Clean (or lapsed) -> suspect: a new outage epoch begins.
            self._epochs[server_id] = self._epochs.get(server_id, 0) + 1
        self._suspect_until[server_id] = now + self.ttl_seconds
        self._suspected_at[server_id] = now

    def report_recovery(self, server_id: str) -> None:
        """A device got a real answer from ``server_id``: clear the entry.

        Only a *live* entry counts as a recovery: an entry whose TTL already
        lapsed expired on its own (``is_suspect`` would have dropped it), so
        a success racing the expiry must not inflate the recovery counter.
        """
        until = self._suspect_until.pop(server_id, None)
        self._suspected_at.pop(server_id, None)
        if until is not None and until > self.clock.now():
            self.recoveries += 1

    def is_suspect(self, server_id: str) -> bool:
        until = self._suspect_until.get(server_id)
        if until is None:
            return False
        if until <= self.clock.now():
            # TTL lapsed: the entry expires so a revived server wins traffic
            # back even if nobody explicitly reported the recovery.
            del self._suspect_until[server_id]
            self._suspected_at.pop(server_id, None)
            return False
        return True

    def suspected_at(self, server_id: str) -> float | None:
        """When the live entry against ``server_id`` was last posted."""
        return self._suspected_at.get(server_id) if self.is_suspect(server_id) else None

    def epoch(self, server_id: str) -> int:
        return self._epochs.get(server_id, 0)

    @property
    def suspect_count(self) -> int:
        now = self.clock.now()
        return sum(1 for until in self._suspect_until.values() if until > now)


@dataclass
class ReplicaHealth:
    """Per-device failure memory with a cooldown window (and optional gossip)."""

    clock: SimulatedClock
    cooldown_seconds: float = 30.0
    board: SharedHealthBoard | None = None
    """The device's resolver pool's shared board; ``None`` keeps the tracker
    purely per-device (the legacy behaviour, byte-identical)."""
    _demoted_until: dict[str, float] = field(default_factory=dict)
    _failures: dict[str, int] = field(default_factory=dict)
    _acknowledged_epoch: dict[str, int] = field(default_factory=dict)
    """Board epoch this device has already incorporated per replica."""
    _last_success: dict[str, float] = field(default_factory=dict)
    """When this device last got a real answer per replica.  First-hand
    evidence at least as fresh as a board entry overrides the board: under
    the engine's concurrent-round clock a pool mate's timeout can be posted
    at a simulated instant *before* this device's own success, and gossip
    must not demote a replica the device itself just proved healthy."""

    def record_failure(self, server_id: str, dead: bool = False) -> None:
        """Demote a replica for the cooldown window (failures accumulate).

        ``dead`` marks a dead-server timeout (the replica is unreachable,
        not merely busy).  Only those are gossiped to the pool board: a
        shed request on an overloaded-but-alive replica is this device's
        backpressure signal, not pool-wide "that replica is dead" news —
        publishing it would demote a healthy replica for the whole pool and
        pollute the time-to-detect accounting.
        """
        self._failures[server_id] = self._failures.get(server_id, 0) + 1
        self._last_success.pop(server_id, None)
        if self.cooldown_seconds > 0.0:
            self._demoted_until[server_id] = self.clock.now() + self.cooldown_seconds
        if dead and self.board is not None:
            self.board.report_failure(server_id)
            self._acknowledged_epoch[server_id] = self.board.epoch(server_id)

    def record_success(self, server_id: str) -> None:
        """A successful response immediately rehabilitates the replica."""
        self._demoted_until.pop(server_id, None)
        self._failures.pop(server_id, None)
        self._last_success[server_id] = self.clock.now()
        if self.board is not None:
            self.board.report_recovery(server_id)

    def _own_demotion_active(self, server_id: str) -> bool:
        until = self._demoted_until.get(server_id)
        if until is None:
            return False
        if until <= self.clock.now():
            # The cooldown is the tracker's whole memory horizon: a replica
            # that served out its demotion starts with a clean slate, so a
            # crashed-and-rejoined server wins traffic back instead of being
            # demoted forever by its accumulated history.
            del self._demoted_until[server_id]
            self._failures.pop(server_id, None)
            return False
        return True

    def _board_suspicion_active(self, server_id: str) -> bool:
        """Whether the pool board's suspicion applies to *this* device.

        First-hand evidence wins: a device whose own last success against
        the replica is at least as fresh as the board entry ignores the
        entry — the device literally proved the replica healthy no earlier
        than the moment the entry was posted, so the shared suspicion is
        stale for it (though still valid gossip for pool mates without that
        evidence).
        """
        if self.board is None or not self.board.is_suspect(server_id):
            return False
        last_success = self._last_success.get(server_id)
        if last_success is not None:
            suspected_at = self.board.suspected_at(server_id)
            if suspected_at is not None and last_success >= suspected_at:
                return False
        return True

    def is_healthy(self, server_id: str) -> bool:
        if self._own_demotion_active(server_id):
            return False
        if self._board_suspicion_active(server_id):
            return False
        return True

    def consult(self, server_id: str) -> str:
        """Classify what this device knows about a replica right now.

        Returns :data:`SHARED_NEWS` exactly once per (replica, board epoch):
        the moment the pool's board — not the device's own experience — is
        what marks the replica suspect.  That moment is the gossip win the
        availability metrics count: a detection whose cost was zero instead
        of a dead-server timeout.  Board entries the device's own fresher
        success overrides are neither news nor suspicion — the epoch stays
        unacknowledged, so a *renewed* entry (posted after the success)
        still lands as shared news.
        """
        own = self._own_demotion_active(server_id)
        if self._board_suspicion_active(server_id):
            epoch = self.board.epoch(server_id)
            if self._acknowledged_epoch.get(server_id) != epoch:
                self._acknowledged_epoch[server_id] = epoch
                if not own:
                    return SHARED_NEWS
            return KNOWN_DEAD
        return KNOWN_DEAD if own else HEALTHY

    def knew_dead(self, server_id: str) -> bool:
        """True if the device already holds the replica suspect (any source)."""
        return not self.is_healthy(server_id)

    def failure_count(self, server_id: str) -> int:
        return self._failures.get(server_id, 0)

    def sort_key(self, server_id: str) -> tuple[int, int, str]:
        """Ordering key: healthy first, then fewest recorded failures.

        The trailing id keeps the order total and deterministic.
        """
        return (0 if self.is_healthy(server_id) else 1, self.failure_count(server_id), server_id)
