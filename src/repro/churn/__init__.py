"""Dynamic federation membership: churn, replication and failover.

The paper treats map servers as long-lived DNS registrants; a production
federation churns.  Operators deploy new servers, crash, and re-register
while millions of clients hold TTL-stale caches.  This package makes that
churn a first-class, measurable part of the simulation:

* :mod:`repro.churn.schedule` — deterministic, seeded join/leave/crash
  event schedules (Poisson-generated or trace-driven).
* :mod:`repro.churn.controller` — applies schedule events to a running
  :class:`repro.core.federation.Federation` mid-run, with real record
  removal at the authority and lease (registration-TTL) expiry for
  crashed servers that stop refreshing.
* :mod:`repro.churn.replicas` — replica groups: several map servers
  advertising the same coverage under shared spatial names.
* :mod:`repro.churn.retry` — client retry/backoff policies for failing
  over between replicas (immediate / exponential / utilization-aware).
* :mod:`repro.churn.health` — the client-side replica health tracker.
* :mod:`repro.churn.failover` — request-target planning over discovered
  server ids plus the per-device failover/availability accounting the
  workload engine aggregates.
"""

from repro.churn.controller import AppliedChurnEvent, ChurnController
from repro.churn.failover import FailoverRecorder, RequestTarget, TargetUnavailableError, plan_targets
from repro.churn.health import ReplicaHealth
from repro.churn.replicas import ReplicaGroup, replica_server_id
from repro.churn.retry import RetryPolicy
from repro.churn.schedule import ChurnEvent, ChurnEventKind, ChurnSchedule

__all__ = [
    "AppliedChurnEvent",
    "ChurnController",
    "ChurnEvent",
    "ChurnEventKind",
    "ChurnSchedule",
    "FailoverRecorder",
    "ReplicaGroup",
    "ReplicaHealth",
    "RequestTarget",
    "RetryPolicy",
    "TargetUnavailableError",
    "plan_targets",
    "replica_server_id",
]
