"""Dynamic federation membership: churn, replication and failover.

The paper treats map servers as long-lived DNS registrants; a production
federation churns.  Operators deploy new servers, crash, and re-register
while millions of clients hold TTL-stale caches.  This package makes that
churn a first-class, measurable part of the simulation:

* :mod:`repro.churn.schedule` — deterministic, seeded join/leave/crash
  event schedules (Poisson-generated or trace-driven).
* :mod:`repro.churn.controller` — applies schedule events to a running
  :class:`repro.core.federation.Federation` mid-run, with real record
  removal at the authority and lease (registration-TTL) expiry for
  crashed servers that stop refreshing.
* :mod:`repro.churn.replicas` — replica groups: several map servers
  advertising the same coverage under shared spatial names, each with an
  RFC 2782 priority/weight for load sharing.
* :mod:`repro.churn.retry` — client retry/backoff policies for failing
  over between replicas (immediate / exponential / utilization-aware).
* :mod:`repro.churn.health` — the client-side replica health tracker and
  the per-resolver-pool :class:`SharedHealthBoard` gossip view.
* :mod:`repro.churn.failover` — request-target planning over discovered
  server ids (RFC 2782 weighted selection or legacy first-healthy) plus
  the per-device failover/availability accounting the workload engine
  aggregates.
"""

from repro.churn.controller import AppliedChurnEvent, ChurnController
from repro.churn.failover import (
    FIRST_HEALTHY,
    SELECTION_MODES,
    WEIGHTED,
    FailoverRecorder,
    RequestTarget,
    TargetUnavailableError,
    plan_targets,
    rfc2782_order,
)
from repro.churn.health import ReplicaHealth, SharedHealthBoard
from repro.churn.replicas import ReplicaGroup, replica_server_id
from repro.churn.retry import RetryPolicy
from repro.churn.schedule import ChurnEvent, ChurnEventKind, ChurnSchedule

__all__ = [
    "AppliedChurnEvent",
    "ChurnController",
    "ChurnEvent",
    "ChurnEventKind",
    "ChurnSchedule",
    "FIRST_HEALTHY",
    "FailoverRecorder",
    "ReplicaGroup",
    "ReplicaHealth",
    "RequestTarget",
    "RetryPolicy",
    "SELECTION_MODES",
    "SharedHealthBoard",
    "TargetUnavailableError",
    "WEIGHTED",
    "plan_targets",
    "replica_server_id",
    "rfc2782_order",
]
