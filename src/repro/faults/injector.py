"""Applies a :class:`FaultPlan` to a running federation.

The :class:`FaultInjector` is the disaster-side sibling of
:class:`repro.churn.controller.ChurnController` and
:class:`repro.control.plane.ControlPlane`: the workload engine calls
:meth:`FaultInjector.apply_until` at each round boundary (the FAULT event
rank fires before churn and control), and every due tape event mutates the
network's :class:`~repro.simulation.network.NetworkFaultState` — the
primitives the data path consults per exchange.

Flash crowds are the one primitive that is load, not connectivity: while a
crowd is active, :meth:`inject_round_load` charges its extra arrivals into
the target servers' queues each round (batch phantom arrivals, exactly the
mechanism the cohort fast path uses), so fleet requests queue behind the
crowd and the overload is measured, not assumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.federation import Federation
from repro.faults.schedule import FaultEvent, FaultEventKind, FaultPlan
from repro.simulation.network import GrayFailure, NetworkFaultState


@dataclass(frozen=True, slots=True)
class AppliedFaultEvent:
    """One tape event after the injector processed it."""

    at_seconds: float
    kind: str
    detail: str
    applied: bool = True
    """False when the event was a no-op against current state (healing a
    partition that was never cut, ending a crowd that never formed)."""


@dataclass
class FaultInjector:
    """Plays a fault tape into a federation's network fault state."""

    federation: Federation
    plan: FaultPlan
    dns_timeout_ms: float = 300.0
    """What one query against a dark authority costs the resolver before it
    gives up with SERVFAIL."""
    applied: list[AppliedFaultEvent] = field(default_factory=list)
    _cursor: int = 0
    _active_crowds: dict[tuple[tuple[str, ...], str], int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        state = self.federation.network.fault_state()
        state.dns_timeout_ms = self.dns_timeout_ms

    @property
    def state(self) -> NetworkFaultState:
        return self.federation.network.fault_state()

    def active_fault_kinds(self) -> tuple[str, ...]:
        """Every fault family currently in force, sorted — the network
        layer's view plus flash crowds, which only the injector tracks."""
        kinds = set(self.state.active_fault_kinds())
        if self._active_crowds:
            kinds.add("flash-crowd")
        return tuple(sorted(kinds))

    def apply_until(self, now_seconds: float) -> list[AppliedFaultEvent]:
        """Apply every tape event due at or before ``now_seconds``."""
        performed: list[AppliedFaultEvent] = []
        events = self.plan.events
        while self._cursor < len(events) and events[self._cursor].at_seconds <= now_seconds:
            event = events[self._cursor]
            self._cursor += 1
            performed.append(self._apply(event))
        self.applied.extend(performed)
        return performed

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self.plan.events)

    def inject_round_load(self) -> None:
        """Charge every active flash crowd's arrivals for this round."""
        if not self._active_crowds:
            return
        servers = self.federation.all_servers
        for (server_ids, load_kind), extra_load in self._active_crowds.items():
            for server_id in server_ids:
                server = servers.get(server_id)
                if server is not None and server.queue is not None:
                    server.queue.phantom_arrivals(load_kind, extra_load)

    # ------------------------------------------------------------------
    # Event application
    # ------------------------------------------------------------------
    def _authority_ids(self, event: FaultEvent) -> tuple[str, ...]:
        if event.server_ids:
            return event.server_ids
        return (self.federation.discovery_authority_id,)

    def _apply(self, event: FaultEvent) -> AppliedFaultEvent:
        state = self.state
        kind = event.kind
        applied = False
        if kind == FaultEventKind.PARTITION:
            for sid in event.server_ids:
                applied = state.block(sid, event.regions or None) or applied
        elif kind == FaultEventKind.HEAL_PARTITION:
            for sid in event.server_ids:
                applied = state.unblock(sid, event.regions or None) or applied
        elif kind == FaultEventKind.GRAY:
            gray = GrayFailure(
                latency_multiplier=event.latency_multiplier,
                loss_probability=event.loss_probability,
            )
            for sid in event.server_ids:
                applied = state.set_gray(sid, gray) or applied
        elif kind == FaultEventKind.HEAL_GRAY:
            for sid in event.server_ids:
                applied = state.clear_gray(sid) or applied
        elif kind == FaultEventKind.AUTHORITY_DOWN:
            for sid in self._authority_ids(event):
                applied = state.authority_down(sid) or applied
        elif kind == FaultEventKind.AUTHORITY_UP:
            for sid in self._authority_ids(event):
                applied = state.authority_up(sid) or applied
        elif kind == FaultEventKind.FLASH_CROWD:
            key = (event.server_ids, event.load_kind)
            applied = self._active_crowds.get(key) != event.extra_load
            self._active_crowds[key] = event.extra_load
        elif kind == FaultEventKind.FLASH_CROWD_END:
            key = (event.server_ids, event.load_kind)
            applied = self._active_crowds.pop(key, None) is not None

        detail = ",".join(event.server_ids) or "discovery-authority"
        if event.regions:
            detail += f"@regions={','.join(map(str, event.regions))}"
        return AppliedFaultEvent(
            at_seconds=event.at_seconds,
            kind=kind.value,
            detail=detail,
            applied=applied,
        )
