"""Deterministic fault tapes: scripted correlated failures.

A :class:`FaultPlan` is the disaster-side sibling of
:class:`repro.churn.schedule.ChurnSchedule` (what happens to servers) and
:class:`repro.control.schedule.ControlSchedule` (what operators do): a
time-ordered tape of *correlated* failure events the workload engine
applies at round boundaries through a
:class:`repro.faults.injector.FaultInjector`.

Four primitive families compose every disaster in the scenario library:

* **Partitions** — a set of servers becomes unreachable from every client
  region or from named regions only (the asymmetric case), then heals.
* **Gray failures** — a server stays up but every exchange with it pays a
  latency multiplier and/or an elevated loss rate (bounded retransmits;
  exhaustion fails the attempt).
* **Authority outages** — a DNS authority stops answering; resolution
  times out to SERVFAIL and clients must coast on their caches.
* **Flash crowds** — external load (a stadium filling) slams a server
  set with extra arrivals of one request kind each round.

Tapes are plain data (no RNG): disasters are scripted incidents, so the
same plan replays byte for byte.  Like control tapes — and unlike churn
tapes — same-instant events keep their authored order, because fault
events at one instant routinely depend on each other (heal one cut, open
the next).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class FaultEventKind(str, Enum):
    """What the disaster does to the federation at one instant."""

    PARTITION = "partition"
    """Cut the network between ``server_ids`` and clients — every region,
    or only the ``regions`` named (asymmetric partition)."""

    HEAL_PARTITION = "heal-partition"
    """Heal a previously opened partition (same scoping rules)."""

    GRAY = "gray"
    """Degrade ``server_ids``: multiply exchange latency by
    ``latency_multiplier`` and/or raise loss to ``loss_probability``."""

    HEAL_GRAY = "heal-gray"
    """Clear the gray failure on ``server_ids``."""

    AUTHORITY_DOWN = "authority-down"
    """Take DNS authorities offline; empty ``server_ids`` means the
    federation's discovery authority."""

    AUTHORITY_UP = "authority-up"
    """Bring DNS authorities back (same empty-means-discovery rule)."""

    FLASH_CROWD = "flash-crowd"
    """Start slamming ``server_ids`` with ``extra_load`` additional
    ``load_kind`` arrivals per server per round (external demand the
    fleet does not issue — a stadium filling)."""

    FLASH_CROWD_END = "flash-crowd-end"
    """The crowd disperses."""


_NEEDS_SERVERS = (
    FaultEventKind.PARTITION,
    FaultEventKind.HEAL_PARTITION,
    FaultEventKind.GRAY,
    FaultEventKind.HEAL_GRAY,
    FaultEventKind.FLASH_CROWD,
    FaultEventKind.FLASH_CROWD_END,
)


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One correlated-failure mutation at one simulated instant."""

    at_seconds: float
    kind: FaultEventKind
    server_ids: tuple[str, ...] = ()
    regions: tuple[int, ...] = ()
    """Client regions (resolver-pool indices) on the cut side of a
    partition; empty means the partition severs every region."""
    latency_multiplier: float = 1.0
    loss_probability: float = 0.0
    extra_load: int = 0
    load_kind: str = "search"

    def __post_init__(self) -> None:
        if self.at_seconds < 0.0:
            raise ValueError("fault events cannot predate the run")
        if self.kind in _NEEDS_SERVERS and not self.server_ids:
            raise ValueError(f"{self.kind.value} events need server ids")
        if self.kind == FaultEventKind.GRAY:
            if self.latency_multiplier < 1.0:
                raise ValueError("a gray failure cannot speed a server up")
            if not (0.0 <= self.loss_probability < 1.0):
                raise ValueError("gray loss probability must be in [0, 1)")
            if self.latency_multiplier == 1.0 and self.loss_probability == 0.0:
                raise ValueError("a gray failure must degrade something")
        if self.kind == FaultEventKind.FLASH_CROWD and self.extra_load < 1:
            raise ValueError("a flash crowd needs positive extra load")


@dataclass(frozen=True)
class FaultPlan:
    """A time-ordered tape of correlated-failure events."""

    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        # Stable sort by time only: same-instant events keep authored order
        # (heal the old cut, then open the new one), like control tapes.
        ordered = tuple(sorted(self.events, key=lambda e: e.at_seconds))
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __add__(self, other: "FaultPlan") -> "FaultPlan":
        """Merge two plans into one tape (disasters compose)."""
        return FaultPlan(self.events + other.events)

    @property
    def horizon_seconds(self) -> float:
        return self.events[-1].at_seconds if self.events else 0.0

    @property
    def servers(self) -> tuple[str, ...]:
        return tuple(sorted({sid for event in self.events for sid in event.server_ids}))

    def events_for(self, server_id: str) -> tuple[FaultEvent, ...]:
        return tuple(e for e in self.events if server_id in e.server_ids)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_events(cls, events: list[FaultEvent] | tuple[FaultEvent, ...]) -> "FaultPlan":
        return cls(tuple(events))

    @classmethod
    def partition(
        cls,
        server_ids: tuple[str, ...] | list[str],
        start_seconds: float,
        end_seconds: float | None = None,
        regions: tuple[int, ...] | list[int] = (),
    ) -> "FaultPlan":
        """A partition window: cut at ``start``, heal at ``end`` (if given)."""
        ids = tuple(server_ids)
        cut = tuple(regions)
        events = [
            FaultEvent(start_seconds, FaultEventKind.PARTITION, ids, regions=cut)
        ]
        if end_seconds is not None:
            if end_seconds <= start_seconds:
                raise ValueError("a partition must heal after it opens")
            events.append(
                FaultEvent(end_seconds, FaultEventKind.HEAL_PARTITION, ids, regions=cut)
            )
        return cls(tuple(events))

    @classmethod
    def gray(
        cls,
        server_ids: tuple[str, ...] | list[str],
        start_seconds: float,
        end_seconds: float | None = None,
        latency_multiplier: float = 1.0,
        loss_probability: float = 0.0,
    ) -> "FaultPlan":
        """A gray-failure window on a server set."""
        ids = tuple(server_ids)
        events = [
            FaultEvent(
                start_seconds,
                FaultEventKind.GRAY,
                ids,
                latency_multiplier=latency_multiplier,
                loss_probability=loss_probability,
            )
        ]
        if end_seconds is not None:
            if end_seconds <= start_seconds:
                raise ValueError("a gray failure must heal after it starts")
            events.append(FaultEvent(end_seconds, FaultEventKind.HEAL_GRAY, ids))
        return cls(tuple(events))

    @classmethod
    def authority_outage(
        cls,
        start_seconds: float,
        end_seconds: float | None = None,
        authority_ids: tuple[str, ...] | list[str] = (),
    ) -> "FaultPlan":
        """A DNS authority outage window; empty ids = the discovery authority."""
        ids = tuple(authority_ids)
        events = [FaultEvent(start_seconds, FaultEventKind.AUTHORITY_DOWN, ids)]
        if end_seconds is not None:
            if end_seconds <= start_seconds:
                raise ValueError("an outage must end after it starts")
            events.append(FaultEvent(end_seconds, FaultEventKind.AUTHORITY_UP, ids))
        return cls(tuple(events))

    @classmethod
    def flash_crowd(
        cls,
        server_ids: tuple[str, ...] | list[str],
        start_seconds: float,
        end_seconds: float,
        extra_load: int,
        load_kind: str = "search",
    ) -> "FaultPlan":
        """A flash-crowd window on a server set."""
        if end_seconds <= start_seconds:
            raise ValueError("a flash crowd must disperse after it forms")
        ids = tuple(server_ids)
        return cls(
            (
                FaultEvent(
                    start_seconds,
                    FaultEventKind.FLASH_CROWD,
                    ids,
                    extra_load=extra_load,
                    load_kind=load_kind,
                ),
                FaultEvent(
                    end_seconds, FaultEventKind.FLASH_CROWD_END, ids, load_kind=load_kind
                ),
            )
        )
