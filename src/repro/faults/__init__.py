"""Deterministic fault injection: correlated disasters as replayable tapes.

Churn (:mod:`repro.churn`) models *independent* failures — one server
crashes, one lease expires.  Production federations are judged on the
*correlated* ones: a region loses its uplink, a DNS authority goes dark, a
stadium fills, a bad kernel rolls across a replica group.  This package
makes those first-class:

* :mod:`repro.faults.schedule` — :class:`FaultPlan` tapes (the third
  sibling of :class:`~repro.churn.schedule.ChurnSchedule` and
  :class:`~repro.control.schedule.ControlSchedule`): time-ordered
  partition / gray-failure / authority-outage / flash-crowd events with
  windowed constructors.
* :mod:`repro.faults.injector` — :class:`FaultInjector` applies a plan's
  events to a running federation's
  :class:`~repro.simulation.network.NetworkFaultState` at round
  boundaries, exactly as the churn controller and control plane do.
* :mod:`repro.faults.scenarios` — the named disaster library (regional
  outage, stadium flash crowd, authority outage with cache coasting,
  asymmetric partition with conflicting operator drains, rolling gray
  failure), each with availability/latency acceptance bands checked by
  ``benchmarks/bench_e17_faults.py``.

Tapes are plain data: the same plan replays byte for byte, and a run with
no plan attaches no fault state at all — byte-identical to the fault-free
engine.
"""

from repro.faults.injector import AppliedFaultEvent, FaultInjector
from repro.faults.schedule import FaultEvent, FaultEventKind, FaultPlan

__all__ = [
    "AppliedFaultEvent",
    "DisasterSpec",
    "FaultEvent",
    "FaultEventKind",
    "FaultInjector",
    "FaultPlan",
    "SCENARIOS",
    "check_bands",
    "get_scenario",
    "scenario_metrics",
]

_SCENARIO_EXPORTS = ("SCENARIOS", "DisasterSpec", "get_scenario", "scenario_metrics", "check_bands")


def __getattr__(name: str):
    # The scenario library builds on the workload engine, which itself
    # imports the injector from this package — so scenarios load lazily
    # to keep the package importable from either direction.
    if name in _SCENARIO_EXPORTS:
        from repro.faults import scenarios

        return getattr(scenarios, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
