"""The correlated-disaster scenario library.

Each :class:`DisasterSpec` is a complete, named, deterministic incident:
a world (the standard two-store replicated city), a fleet workload, a
:class:`~repro.faults.schedule.FaultPlan` tape (plus, for one scenario, a
conflicting operator :class:`~repro.control.schedule.ControlSchedule`),
and *acceptance bands* — the availability/latency envelope a resilient
client stack must stay inside while the disaster plays out.

The five disasters cover the correlated-failure families the fault
subsystem models:

* ``regional-outage`` — every store's replica 0 drops off the network at
  once (a rack loses its uplink); clients must fail over to replica 1
  and keep failed requests near zero.
* ``stadium-flash-crowd`` — external demand slams store 0's replicas
  with more arrivals than their queues admit; the overload must shed
  load server-side without collapsing fleet-wide availability.
* ``authority-outage`` — the discovery DNS authority goes dark for two
  minutes; warm devices must coast on stale-while-unreachable cached SRV
  views (bounded by ``stale_serve_max_ms``) and recover after it returns.
* ``asymmetric-partition`` — region 0 loses its path to store 0's
  replica 0 while operators, blind to the partition, drain replica 1 for
  maintenance; region-0 clients must still find service.
* ``rolling-gray`` — a bad kernel marches across the replica fleet: each
  replica rank in turn answers 8x slower and drops a third of its
  packets (bounded retransmits); tail latency inflates but requests
  must keep succeeding.

``benchmarks/bench_e17_faults.py`` runs every scenario twice — fault-free
baseline and faulted — and gates the band checks byte-for-byte via
``BENCH_e17.json``.  Everything is deterministic: tapes are plain data
and every RNG stream is seeded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.churn.retry import RetryPolicy
from repro.control.schedule import ControlSchedule
from repro.core.config import FederationConfig
from repro.faults.schedule import FaultPlan
from repro.simulation.queueing import ServiceTimeModel
from repro.workload.engine import WorkloadConfig, WorkloadReport
from repro.worldgen.scenario import FederatedScenario, build_scenario

WORLD_SEED = 33
WORKLOAD_SEED = 7
STORE_COUNT = 2
STORE_REPLICAS = 2
STEP_SECONDS = 20.0
"""Long rounds (as in E14): a 10-step run spans >3 simulated minutes, so
fault windows, cache TTLs and health cooldowns all get room to play out."""

SERVICE_TIMES = ServiceTimeModel(
    default_ms=2.0,
    per_kind_ms={"search": 1.5, "routing": 4.0, "tiles": 0.5, "localization": 2.5},
)
SERVER_QUEUE_CAPACITY = 256

RETRY_POLICY = RetryPolicy.full_jitter()
"""Full-jitter backoff with escalating per-attempt timeouts: the policy
built for correlated failures, where deterministic backoff synchronizes a
whole region's retry storm against the surviving replica."""


@dataclass(frozen=True)
class DisasterSpec:
    """One named disaster: world + workload + fault tape + acceptance bands."""

    name: str
    title: str
    description: str
    plan: Callable[[FederatedScenario], FaultPlan]
    """Builds the scenario's fault tape against a concrete world (tapes
    name server ids, which only exist once the world is built)."""
    bands: dict[str, tuple[float | None, float | None]]
    """Acceptance envelope: metric name -> (min, max), ``None`` = unbounded.
    Checked against :func:`scenario_metrics` of a baseline+faulted pair."""
    control: Callable[[FederatedScenario], ControlSchedule | None] = lambda _: None
    """Optional operator tape played *alongside* the disaster (the
    asymmetric-partition scenario's conflicting drain)."""
    clients: int = 24
    steps: int = 10
    resolver_pools: int = 2
    """Client regions: region = device index mod pools, the side a
    region-scoped partition cuts."""
    device_cache_ttl_seconds: float = 120.0
    registration_ttl_seconds: float = 3600.0
    stale_serve_max_ms: float = 0.0
    """How long past expiry a cached SRV view may serve when live
    discovery fails (graceful degradation; 0 disables)."""

    def federation_config(self) -> FederationConfig:
        return FederationConfig(
            device_discovery_cache_ttl_seconds=self.device_cache_ttl_seconds,
            registration_ttl_seconds=self.registration_ttl_seconds,
            client_tile_cache_entries=256,
            service_times=SERVICE_TIMES,
            server_queue_capacity=SERVER_QUEUE_CAPACITY,
            retry_policy=RETRY_POLICY,
            stale_serve_max_ms=self.stale_serve_max_ms,
        )

    def build(self) -> FederatedScenario:
        """The scenario's world: the standard two-store replicated city."""
        return build_scenario(
            store_count=STORE_COUNT,
            city_rows=5,
            city_cols=5,
            config=self.federation_config(),
            seed=WORLD_SEED,
            reuse_worlds=True,
            store_replicas=STORE_REPLICAS,
        )

    def workload(self, scenario: FederatedScenario, faulted: bool) -> WorkloadConfig:
        """The fleet config; ``faulted=False`` is the fault-free baseline."""
        return WorkloadConfig(
            clients=self.clients,
            steps=self.steps,
            seed=WORKLOAD_SEED,
            step_seconds=STEP_SECONDS,
            resolver_pools=self.resolver_pools,
            faults=self.plan(scenario) if faulted else None,
            control=self.control(scenario) if faulted else None,
        )


def scenario_metrics(
    baseline: WorkloadReport, faulted: WorkloadReport
) -> dict[str, float]:
    """The flat metric dict a scenario's acceptance bands are checked on."""
    base_avail = baseline.availability()
    fault_avail = faulted.availability()
    base_p95 = baseline.latency_percentiles()["p95"]
    fault_p95 = faulted.latency_percentiles()["p95"]
    total = faulted.requests + faulted.errors
    return {
        "baseline_failed_rate": base_avail["failed_request_rate"],
        "baseline_dropped": float(baseline.dropped_requests),
        "baseline_p95_ms": base_p95,
        "failed_rate": fault_avail["failed_request_rate"],
        "availability": 1.0 - fault_avail["failed_request_rate"],
        "failovers": fault_avail["failovers"],
        "p95_ms": fault_p95,
        "p95_inflation": fault_p95 / base_p95 if base_p95 > 0.0 else 0.0,
        "dropped_requests": float(faulted.dropped_requests),
        "degraded_rate": faulted.degraded_requests / total if total else 0.0,
        "stale_serves": faulted.fault_stats.get("stale_serves", 0.0),
        "events_applied": faulted.fault_stats.get("events_applied", 0.0),
        "control_events": faulted.control_stats.get("events_applied", 0.0),
    }


def check_bands(spec: DisasterSpec, metrics: dict[str, float]) -> list[str]:
    """Every band violation, as human-readable failure strings."""
    failures: list[str] = []
    for metric, (low, high) in sorted(spec.bands.items()):
        value = metrics.get(metric)
        if value is None:
            failures.append(f"{spec.name}: metric {metric!r} was not measured")
            continue
        if low is not None and value < low:
            failures.append(
                f"{spec.name}: {metric}={value:.4f} below acceptance band "
                f"minimum {low:.4f}"
            )
        if high is not None and value > high:
            failures.append(
                f"{spec.name}: {metric}={value:.4f} above acceptance band "
                f"maximum {high:.4f}"
            )
    return failures


# ----------------------------------------------------------------------
# The disasters
# ----------------------------------------------------------------------
def _first_replicas(scenario: FederatedScenario, rank: int = 0) -> tuple[str, ...]:
    """Replica ``rank`` of every store, in store order."""
    return tuple(
        scenario.store_replica_ids(index)[rank]
        for index in range(len(scenario.stores))
    )


def _regional_outage_plan(scenario: FederatedScenario) -> FaultPlan:
    # One rack hosts every store's replica 0; its uplink dies at t=45 and
    # comes back at t=145 (rounds ~3..7 of a 10-round run).
    return FaultPlan.partition(_first_replicas(scenario, 0), 45.0, 145.0)


def _flash_crowd_plan(scenario: FederatedScenario) -> FaultPlan:
    # The stadium next to store 0 fills: 300 extra search arrivals per
    # replica per round — past the 256-job queue, so load *must* shed.
    return FaultPlan.flash_crowd(
        tuple(scenario.store_replica_ids(0)), 45.0, 145.0, extra_load=300
    )


def _authority_outage_plan(scenario: FederatedScenario) -> FaultPlan:
    # The discovery authority goes dark for two minutes; with a 30s device
    # cache and 60s DNS record TTL, every cache layer expires mid-outage
    # and only the stale-serve grace keeps warm devices answering.
    return FaultPlan.authority_outage(45.0, 165.0)


def _asymmetric_partition_plan(scenario: FederatedScenario) -> FaultPlan:
    # Region 0 (even devices) loses its route to store 0's replica 0...
    return FaultPlan.partition(
        (scenario.store_replica_ids(0)[0],), 45.0, 145.0, regions=(0,)
    )


def _asymmetric_partition_control(scenario: FederatedScenario) -> ControlSchedule:
    # ...while operators, blind to the partition, drain replica 1 for
    # maintenance over the same window — the conflicting-action incident.
    return ControlSchedule.drain_window(scenario.store_replica_ids(0)[1], 45.0, 145.0)


def _rolling_gray_plan(scenario: FederatedScenario) -> FaultPlan:
    # A bad kernel rolls across the replica fleet, one rank at a time:
    # 12x latency and 35% loss (bounded retransmits) for a minute each.
    plan = FaultPlan()
    start = 45.0
    for rank in range(STORE_REPLICAS):
        plan = plan + FaultPlan.gray(
            _first_replicas(scenario, rank),
            start,
            start + 60.0,
            latency_multiplier=12.0,
            loss_probability=0.35,
        )
        start += 60.0
    return plan


SCENARIOS: tuple[DisasterSpec, ...] = (
    DisasterSpec(
        name="regional-outage",
        title="Full regional outage with cross-pool failover",
        description="Every store's replica 0 is cut from all client "
        "regions for 100s; clients must fail over to replica 1.",
        plan=_regional_outage_plan,
        bands={
            "baseline_failed_rate": (None, 0.01),
            "failed_rate": (None, 0.05),
            "availability": (0.95, None),
            "failovers": (1.0, None),
            "events_applied": (2.0, None),
        },
    ),
    DisasterSpec(
        name="stadium-flash-crowd",
        title="Stadium flash crowd overloads one store",
        description="External demand slams store 0's replicas with 300 "
        "extra search arrivals per round, past queue capacity.",
        plan=_flash_crowd_plan,
        bands={
            "baseline_dropped": (None, 0.0),
            "dropped_requests": (1.0, None),
            "failed_rate": (None, 0.25),
            "events_applied": (2.0, None),
        },
    ),
    DisasterSpec(
        name="authority-outage",
        title="DNS authority outage with cache coasting",
        description="The discovery authority is dark for 120s; warm "
        "devices coast on stale-while-unreachable cached SRV views.",
        plan=_authority_outage_plan,
        device_cache_ttl_seconds=30.0,
        registration_ttl_seconds=60.0,
        stale_serve_max_ms=60_000.0,
        bands={
            "baseline_failed_rate": (None, 0.01),
            "stale_serves": (1.0, None),
            "degraded_rate": (0.001, None),
            "failed_rate": (None, 0.5),
            "events_applied": (2.0, None),
        },
    ),
    DisasterSpec(
        name="asymmetric-partition",
        title="Asymmetric partition with conflicting operator drains",
        description="Region 0 loses store 0's replica 0 while operators "
        "drain the healthy replica 1 for maintenance.",
        plan=_asymmetric_partition_plan,
        control=_asymmetric_partition_control,
        bands={
            "failed_rate": (None, 0.1),
            "failovers": (1.0, None),
            "control_events": (1.0, None),
            "events_applied": (2.0, None),
        },
    ),
    DisasterSpec(
        name="rolling-gray",
        title="Rolling gray failure across the replica fleet",
        description="Each replica rank in turn answers 12x slower with "
        "35% loss for 60s; bounded retransmits keep requests succeeding.",
        plan=_rolling_gray_plan,
        bands={
            "failed_rate": (None, 0.1),
            "p95_inflation": (1.5, None),
            "events_applied": (4.0, None),
        },
    ),
)


def get_scenario(name: str) -> DisasterSpec:
    for spec in SCENARIOS:
        if spec.name == name:
            return spec
    known = ", ".join(spec.name for spec in SCENARIOS)
    raise KeyError(f"unknown disaster scenario {name!r}; known: {known}")
