"""OpenFLAME reproduction: a federated mapping infrastructure for the Spatial Web.

This package reproduces the system described in "Uniting the World by
Dividing it: Federated Maps to Enable Spatial Applications" (HotOS 2025):

* ``repro.core`` — the public API: :class:`~repro.core.Federation` and
  :class:`~repro.core.OpenFlameClient`.
* ``repro.mapserver`` — independently operated map servers with per-service
  access policies.
* ``repro.discovery`` / ``repro.dns`` — DNS-based map server discovery.
* ``repro.services`` — the federated client-side location-based services.
* ``repro.centralized`` — the centralized baseline architecture (Figure 1).
* ``repro.worldgen`` — synthetic cities, stores and campuses for experiments.
* ``repro.workload`` — fleet simulation: mobility models, Zipf traffic and
  the workload engine that measures tail latency and cache hit-rates.

Quickstart::

    from repro.worldgen import build_scenario

    scenario = build_scenario(store_count=1)
    client = scenario.federation.client()
    hits = client.search("seaweed", near=scenario.stores[0].entrance)
    print(hits.labels())
"""

from repro.core import (
    Federation,
    FederationConfig,
    FederationConfigError,
    OpenFlameClient,
    OpenFlameError,
    ServiceUnavailableError,
)

__version__ = "0.1.0"

__all__ = [
    "Federation",
    "FederationConfig",
    "FederationConfigError",
    "OpenFlameClient",
    "OpenFlameError",
    "ServiceUnavailableError",
    "__version__",
]
