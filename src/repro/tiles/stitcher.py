"""Compositing tiles from multiple map servers into one view.

Section 5.2 (Tile rendering): "The client would download these
representations from multiple discovered map servers and stitch them together
before showing them to the user."

The stitcher overlays tiles for the same coordinate coming from different
servers.  Indoor maps are typically higher fidelity, so by default later
(finer) layers win where both have content; coverage statistics quantify how
much each server contributed (experiment E11).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.simulation.lru import LruCache
from repro.tiles.renderer import FeatureClass, Tile
from repro.tiles.tile_math import TILE_SIZE_PIXELS, TileCoordinate


@dataclass(frozen=True)
class CompositeTile:
    """A stitched tile plus bookkeeping about which source supplied each pixel."""

    coordinate: TileCoordinate
    raster: np.ndarray
    contributions: dict[str, int]

    @property
    def coverage_fraction(self) -> float:
        return float((self.raster != int(FeatureClass.EMPTY)).mean())

    def contribution_fraction(self, source_map: str) -> float:
        total_pixels = TILE_SIZE_PIXELS * TILE_SIZE_PIXELS
        return self.contributions.get(source_map, 0) / total_pixels


_composite_memo: LruCache = LruCache(max_entries=512)
"""Process-wide bounded memo of stitched composites (LRU, ~64KB/raster, so
the cap bounds retention to ~32MB; a city's viewport working set is far
smaller).

Fleets of clients render the same viewports over and over, and the tiles
they stitch are the immutable rasters the per-server renderers cache — so
the composite of a given layer stack is computed once.  The key includes
each layer's raster digest (:attr:`repro.tiles.renderer.Tile.content_key`),
so scenarios that reuse a map name for different worlds cannot collide.
CompositeTile is frozen, making the shared instances safe.
"""


@dataclass
class TileStitcher:
    """Overlays tiles from several sources for the same tile coordinate."""

    prefer_later_layers: bool = True
    stitched_count: int = field(default=0, init=False)

    def stitch(self, tiles: list[Tile]) -> CompositeTile:
        """Composite ``tiles`` (all for the same coordinate) into one tile."""
        if not tiles:
            raise ValueError("cannot stitch zero tiles")
        coordinate = tiles[0].coordinate
        if any(tile.coordinate != coordinate for tile in tiles):
            raise ValueError("all tiles being stitched must share a coordinate")

        memo_key = (
            self.prefer_later_layers,
            coordinate,
            tuple((tile.source_map, tile.content_key) for tile in tiles),
        )
        memoized = _composite_memo.lookup(memo_key)
        if memoized is not None:
            self.stitched_count += 1
            return memoized

        composite = np.zeros((TILE_SIZE_PIXELS, TILE_SIZE_PIXELS), dtype=np.uint8)
        owner = np.full((TILE_SIZE_PIXELS, TILE_SIZE_PIXELS), -1, dtype=np.int32)

        layers = tiles if self.prefer_later_layers else list(reversed(tiles))
        for layer_index, tile in enumerate(layers):
            has_content = tile.raster != int(FeatureClass.EMPTY)
            composite = np.where(has_content, tile.raster, composite)
            owner = np.where(has_content, layer_index, owner)

        contributions: dict[str, int] = {}
        for layer_index, tile in enumerate(layers):
            contributions[tile.source_map] = contributions.get(tile.source_map, 0) + int(
                (owner == layer_index).sum()
            )

        self.stitched_count += 1
        result = CompositeTile(coordinate, composite, contributions)
        _composite_memo.store(memo_key, result)
        return result

    def stitch_grid(self, tiles_by_coordinate: dict[TileCoordinate, list[Tile]]) -> dict[TileCoordinate, CompositeTile]:
        """Stitch a whole viewport of tiles at once."""
        return {
            coordinate: self.stitch(tiles)
            for coordinate, tiles in tiles_by_coordinate.items()
            if tiles
        }


def composite_coverage(composites: dict[TileCoordinate, CompositeTile]) -> float:
    """Mean coverage fraction across a stitched viewport."""
    if not composites:
        return 0.0
    return float(np.mean([tile.coverage_fraction for tile in composites.values()]))
