"""Rasterising map data into tiles.

A tile here is a small numpy uint8 grid of feature-class codes rather than a
styled RGB image: enough to measure pre-rendering cost, cache behaviour,
coverage and stitching quality without dragging in an imaging stack.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from enum import IntEnum
from functools import cached_property

import numpy as np

from repro.osm.elements import TAG_BUILDING, TAG_HIGHWAY, TAG_INDOOR
from repro.osm.mapdata import MapData
from repro.tiles.tile_math import TILE_SIZE_PIXELS, TileCoordinate, pixel_in_tile, tile_bounds


class FeatureClass(IntEnum):
    """Feature codes painted into tile rasters (higher paints over lower)."""

    EMPTY = 0
    AREA = 1      # building / room footprints
    PATH = 2      # roads, corridors, aisles
    POI = 3       # named point features


@dataclass(frozen=True)
class Tile:
    """One rendered tile: its address, raster and the map that produced it."""

    coordinate: TileCoordinate
    raster: np.ndarray
    source_map: str

    def __post_init__(self) -> None:
        if self.raster.shape != (TILE_SIZE_PIXELS, TILE_SIZE_PIXELS):
            raise ValueError(
                f"tile raster must be {TILE_SIZE_PIXELS}x{TILE_SIZE_PIXELS}, got {self.raster.shape}"
            )

    @cached_property
    def content_key(self) -> bytes:
        """Digest of the raster, for memoizing work keyed on tile content.

        Two tiles with equal digests composite identically even if they come
        from different scenario builds that happen to reuse a map name.
        """
        return hashlib.blake2b(self.raster.tobytes(), digest_size=16).digest()

    @property
    def coverage_fraction(self) -> float:
        """Fraction of pixels carrying any feature."""
        return float((self.raster != FeatureClass.EMPTY).mean())

    def feature_pixel_count(self, feature: FeatureClass) -> int:
        return int((self.raster == int(feature)).sum())


@dataclass
class TileRenderer:
    """Renders tiles from one map's data.

    ``line_thickness`` widens painted polylines so that coarse zooms still
    show connected paths.
    """

    map_data: MapData
    line_thickness: int = 1
    _cache: dict[str, Tile] = field(default_factory=dict)
    render_count: int = 0

    def render(self, coordinate: TileCoordinate) -> Tile:
        """Render (or fetch from cache) one tile."""
        key = coordinate.key()
        cached = self._cache.get(key)
        if cached is not None:
            return cached

        raster = np.zeros((TILE_SIZE_PIXELS, TILE_SIZE_PIXELS), dtype=np.uint8)
        bounds = tile_bounds(coordinate).expanded(20.0)

        for way in self.map_data.ways():
            nodes = self.map_data.way_nodes(way.way_id)
            if not any(bounds.contains(node.location) for node in nodes):
                continue
            if TAG_BUILDING in way.tags or way.tags.get(TAG_INDOOR) == "room":
                self._paint_polyline(raster, coordinate, nodes, FeatureClass.AREA)
            elif TAG_HIGHWAY in way.tags or "indoor_path" in way.tags or "aisle_path" in way.tags:
                self._paint_polyline(raster, coordinate, nodes, FeatureClass.PATH)

        for node in self.map_data.nodes_in_box(bounds):
            if node.name:
                column, row = pixel_in_tile(node.location, coordinate)
                raster[row, column] = int(FeatureClass.POI)

        tile = Tile(coordinate, raster, self.map_data.metadata.name)
        self._cache[key] = tile
        self.render_count += 1
        return tile

    def prerender(self, coordinates: list[TileCoordinate]) -> list[Tile]:
        """Render a batch of tiles ahead of any request (Figure 1 pipeline)."""
        return [self.render(coordinate) for coordinate in coordinates]

    @property
    def cache_size(self) -> int:
        return len(self._cache)

    # ------------------------------------------------------------------
    # Rasterisation helpers
    # ------------------------------------------------------------------
    def _paint_polyline(self, raster: np.ndarray, coordinate: TileCoordinate, nodes, feature: FeatureClass) -> None:
        for a, b in zip(nodes, nodes[1:]):
            start = pixel_in_tile(a.location, coordinate)
            end = pixel_in_tile(b.location, coordinate)
            self._paint_segment(raster, start, end, feature)

    def _paint_segment(
        self,
        raster: np.ndarray,
        start: tuple[int, int],
        end: tuple[int, int],
        feature: FeatureClass,
    ) -> None:
        """Bresenham-style line rasterisation with optional thickness."""
        x0, y0 = start
        x1, y1 = end
        dx = abs(x1 - x0)
        dy = abs(y1 - y0)
        step_x = 1 if x0 < x1 else -1
        step_y = 1 if y0 < y1 else -1
        error = dx - dy
        x, y = x0, y0
        while True:
            self._paint_pixel(raster, x, y, feature)
            if x == x1 and y == y1:
                break
            doubled = 2 * error
            if doubled > -dy:
                error -= dy
                x += step_x
            if doubled < dx:
                error += dx
                y += step_y

    def _paint_pixel(self, raster: np.ndarray, column: int, row: int, feature: FeatureClass) -> None:
        thickness = max(0, self.line_thickness - 1)
        for drow in range(-thickness, thickness + 1):
            for dcol in range(-thickness, thickness + 1):
                r, c = row + drow, column + dcol
                if 0 <= r < TILE_SIZE_PIXELS and 0 <= c < TILE_SIZE_PIXELS:
                    raster[r, c] = max(raster[r, c], int(feature))
