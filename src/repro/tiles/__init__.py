"""Tile substrate: XYZ tile math, rasterisation, alignment, stitching."""

from repro.tiles.cache import TileCache, TileCacheStats
from repro.tiles.correspondence import Correspondence, CorrespondenceSet, MapAlignment
from repro.tiles.renderer import FeatureClass, Tile, TileRenderer
from repro.tiles.stitcher import CompositeTile, TileStitcher, composite_coverage
from repro.tiles.tile_math import (
    MAX_ZOOM,
    TILE_SIZE_PIXELS,
    TileCoordinate,
    meters_per_pixel,
    pixel_in_tile,
    tile_bounds,
    tile_for_point,
    tiles_for_box,
)

__all__ = [
    "CompositeTile",
    "Correspondence",
    "CorrespondenceSet",
    "FeatureClass",
    "MAX_ZOOM",
    "MapAlignment",
    "TILE_SIZE_PIXELS",
    "Tile",
    "TileCache",
    "TileCacheStats",
    "TileCoordinate",
    "TileRenderer",
    "TileStitcher",
    "composite_coverage",
    "meters_per_pixel",
    "pixel_in_tile",
    "tile_bounds",
    "tile_for_point",
    "tiles_for_box",
]
