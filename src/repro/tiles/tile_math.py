"""Slippy-map tile arithmetic (Web-Mercator XYZ tiles).

Tile rendering "powers interactive maps by delivering map tiles ... based on
the user's latitude, longitude, and zoom level" (Section 4).  This module
implements the standard XYZ tile addressing used by OpenStreetMap-style tile
servers: conversion between geographic coordinates, tile coordinates and
pixel positions within a tile.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.geometry.bbox import BoundingBox
from repro.geometry.point import LatLng

TILE_SIZE_PIXELS = 256
MAX_ZOOM = 24
# Web-Mercator is undefined at the poles; clamp like real map stacks do.
_MAX_MERCATOR_LATITUDE = 85.05112878


@dataclass(frozen=True, slots=True)
class TileCoordinate:
    """A tile address: zoom level and integer (x, y) indices."""

    zoom: int
    x: int
    y: int

    def __post_init__(self) -> None:
        if not (0 <= self.zoom <= MAX_ZOOM):
            raise ValueError(f"zoom {self.zoom} outside [0, {MAX_ZOOM}]")
        side = 1 << self.zoom
        if not (0 <= self.x < side and 0 <= self.y < side):
            raise ValueError(f"tile ({self.x}, {self.y}) outside zoom-{self.zoom} grid")

    def parent(self) -> "TileCoordinate":
        if self.zoom == 0:
            raise ValueError("the zoom-0 tile has no parent")
        return TileCoordinate(self.zoom - 1, self.x // 2, self.y // 2)

    def children(self) -> list["TileCoordinate"]:
        if self.zoom >= MAX_ZOOM:
            raise ValueError("cannot subdivide a tile at MAX_ZOOM")
        zoom = self.zoom + 1
        return [
            TileCoordinate(zoom, self.x * 2, self.y * 2),
            TileCoordinate(zoom, self.x * 2 + 1, self.y * 2),
            TileCoordinate(zoom, self.x * 2, self.y * 2 + 1),
            TileCoordinate(zoom, self.x * 2 + 1, self.y * 2 + 1),
        ]

    def key(self) -> str:
        """A stable string key, e.g. for caches: "z/x/y"."""
        return f"{self.zoom}/{self.x}/{self.y}"


def tile_for_point(point: LatLng, zoom: int) -> TileCoordinate:
    """The tile containing ``point`` at ``zoom``."""
    if not (0 <= zoom <= MAX_ZOOM):
        raise ValueError(f"zoom {zoom} outside [0, {MAX_ZOOM}]")
    latitude = max(-_MAX_MERCATOR_LATITUDE, min(_MAX_MERCATOR_LATITUDE, point.latitude))
    side = 1 << zoom
    x = int((point.longitude + 180.0) / 360.0 * side)
    lat_rad = math.radians(latitude)
    y = int((1.0 - math.asinh(math.tan(lat_rad)) / math.pi) / 2.0 * side)
    x = min(max(x, 0), side - 1)
    y = min(max(y, 0), side - 1)
    return TileCoordinate(zoom, x, y)


def tile_bounds(tile: TileCoordinate) -> BoundingBox:
    """The geographic bounding box of a tile."""
    side = 1 << tile.zoom

    def x_to_lng(x: float) -> float:
        return x / side * 360.0 - 180.0

    def y_to_lat(y: float) -> float:
        n = math.pi - 2.0 * math.pi * y / side
        return math.degrees(math.atan(math.sinh(n)))

    west = x_to_lng(tile.x)
    east = x_to_lng(tile.x + 1)
    north = y_to_lat(tile.y)
    south = y_to_lat(tile.y + 1)
    return BoundingBox(south, west, north, east)


def tiles_for_box(box: BoundingBox, zoom: int) -> list[TileCoordinate]:
    """All tiles at ``zoom`` intersecting ``box``, in row-major order."""
    top_left = tile_for_point(LatLng(box.north, box.west), zoom)
    bottom_right = tile_for_point(LatLng(box.south, box.east), zoom)
    tiles = []
    for y in range(top_left.y, bottom_right.y + 1):
        for x in range(top_left.x, bottom_right.x + 1):
            tiles.append(TileCoordinate(zoom, x, y))
    return tiles


def pixel_in_tile(point: LatLng, tile: TileCoordinate) -> tuple[int, int]:
    """Pixel coordinates (column, row) of ``point`` within ``tile``.

    Points outside the tile are clamped to its border — callers that care
    should check containment first via ``tile_bounds``.
    """
    bounds = tile_bounds(tile)
    if bounds.width_degrees <= 0 or bounds.height_degrees <= 0:
        return (0, 0)
    fx = (point.longitude - bounds.west) / bounds.width_degrees
    fy = (bounds.north - point.latitude) / bounds.height_degrees
    column = int(min(max(fx, 0.0), 0.999999) * TILE_SIZE_PIXELS)
    row = int(min(max(fy, 0.0), 0.999999) * TILE_SIZE_PIXELS)
    return (column, row)


def meters_per_pixel(tile: TileCoordinate) -> float:
    """Approximate ground resolution of a tile at its centre latitude."""
    bounds = tile_bounds(tile)
    width_meters = LatLng(bounds.center.latitude, bounds.west).distance_to(
        LatLng(bounds.center.latitude, bounds.east)
    )
    return width_meters / TILE_SIZE_PIXELS
