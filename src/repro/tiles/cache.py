"""A client-side LRU cache for downloaded tiles.

Tile rendering is the chattiest federated service: one viewport at a typical
zoom needs several tiles from every overlapping map server, each charged as a
client↔map-server exchange.  Since rendered tiles are immutable for the life
of a simulation, a small per-device LRU keyed by (server, tile address)
removes the re-download cost for every revisited viewport — the workload
engine's panning and commuting clients hit it constantly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simulation.lru import LruCache, LruStats
from repro.tiles.renderer import Tile
from repro.tiles.tile_math import TileCoordinate

TileCacheStats = LruStats


@dataclass
class TileCache:
    """LRU cache of tiles keyed by (server id, tile coordinate)."""

    max_entries: int = 256
    _lru: LruCache = field(init=False)

    def __post_init__(self) -> None:
        self._lru = LruCache(max_entries=self.max_entries)

    @property
    def stats(self) -> LruStats:
        return self._lru.stats

    def get(self, server_id: str, coordinate: TileCoordinate) -> Tile | None:
        return self._lru.lookup((server_id, coordinate.key()))

    def put(self, server_id: str, coordinate: TileCoordinate, tile: Tile) -> None:
        self._lru.store((server_id, coordinate.key()), tile)

    def flush(self) -> None:
        self._lru.flush()

    @property
    def size(self) -> int:
        return self._lru.size
