"""MapCruncher-style alignment from manual correspondences.

Section 5.2 (Tile rendering): "stitching together map data in different
coordinates and projection systems can be done using manual correspondences
between maps (e.g., MapCruncher)."

A :class:`CorrespondenceSet` collects pairs of (local-frame point, geographic
point) that a human operator identified as the same physical feature; from
them an alignment — a :class:`repro.geometry.transform.SimilarityTransform`
composed with a :class:`repro.geometry.projection.LocalProjection` — is
estimated, letting the client re-project a private map's content into the
global frame for display alongside outdoor tiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry.point import LatLng, LocalPoint
from repro.geometry.projection import LocalProjection
from repro.geometry.transform import (
    SimilarityTransform,
    alignment_residual_meters,
    estimate_similarity,
)


@dataclass(frozen=True, slots=True)
class Correspondence:
    """One manually identified pair: local map point ↔ geographic point."""

    local_point: LocalPoint
    geographic_point: LatLng


@dataclass
class MapAlignment:
    """The estimated alignment of a local frame into the geographic frame."""

    transform: SimilarityTransform
    projection: LocalProjection
    rms_error_meters: float
    correspondence_count: int

    def local_to_geographic(self, point: LocalPoint) -> LatLng:
        """Re-project a local-frame point into geographic coordinates."""
        aligned = self.transform.apply(point)
        return self.projection.to_geographic(aligned)

    def geographic_to_local(self, point: LatLng) -> LocalPoint:
        """Project a geographic point back into the source local frame."""
        projected = self.projection.to_local(point)
        inverse = self.transform.inverse()
        return inverse.apply(LocalPoint(projected.x, projected.y, inverse.source_frame))


@dataclass
class CorrespondenceSet:
    """A growing set of manual correspondences for one local map."""

    local_frame: str
    correspondences: list[Correspondence] = field(default_factory=list)

    def add(self, local_point: LocalPoint, geographic_point: LatLng) -> None:
        if local_point.frame != self.local_frame:
            raise ValueError(
                f"correspondence local frame {local_point.frame!r} does not match set frame {self.local_frame!r}"
            )
        self.correspondences.append(Correspondence(local_point, geographic_point))

    def __len__(self) -> int:
        return len(self.correspondences)

    def estimate_alignment(self) -> MapAlignment:
        """Estimate the local→geographic alignment from the correspondences.

        The geographic side is first projected into a tangent plane anchored
        at the centroid of the geographic correspondence points; a similarity
        transform is then fitted between the two planar point sets.
        """
        if len(self.correspondences) < 2:
            raise ValueError("at least two correspondences are required to estimate an alignment")

        anchor_lat = sum(c.geographic_point.latitude for c in self.correspondences) / len(self)
        anchor_lng = sum(c.geographic_point.longitude for c in self.correspondences) / len(self)
        projection = LocalProjection(LatLng(anchor_lat, anchor_lng), frame="aligned")

        source = [(c.local_point.x, c.local_point.y) for c in self.correspondences]
        destination = []
        for correspondence in self.correspondences:
            projected = projection.to_local(correspondence.geographic_point)
            destination.append((projected.x, projected.y))

        transform = estimate_similarity(
            source, destination, source_frame=self.local_frame, destination_frame="aligned"
        )
        rms = alignment_residual_meters(transform, source, destination)
        return MapAlignment(
            transform=transform,
            projection=projection,
            rms_error_meters=rms,
            correspondence_count=len(self),
        )
