"""The centralized mapping baseline (Figure 1 of the paper)."""

from repro.centralized.preprocess import (
    PreprocessedData,
    PreprocessingReport,
    preprocess_world_map,
)
from repro.centralized.system import CentralizedMapSystem, CentralizedStats

__all__ = [
    "CentralizedMapSystem",
    "CentralizedStats",
    "PreprocessedData",
    "PreprocessingReport",
    "preprocess_world_map",
]
