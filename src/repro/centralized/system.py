"""The centralized mapping system (Figure 1 baseline).

A single organization ingests every map it can obtain into one database,
preprocesses it, and serves all five location-based services from that single
copy.  Two properties distinguish it from the federation and drive the
experiments:

* It can only answer from data that has been *ingested* — indoor maps that
  organizations decline to hand over (the paper's privacy argument) simply do
  not exist here (experiments E6/E7).
* Every request is one client↔provider exchange with no discovery overhead —
  the latency/message baseline the federation is compared against (E1/E2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry.point import LatLng
from repro.localization.cues import CueBundle, CueType, LocalizationResult
from repro.mapserver.geocode import Address, GeocodeResult, ReverseGeocodeResult
from repro.mapserver.search import SearchResult
from repro.osm.mapdata import MapData, MapMetadata
from repro.centralized.preprocess import PreprocessedData, preprocess_world_map
from repro.routing.shortest_path import NoRouteError, Route, dijkstra
from repro.simulation.network import SimulatedNetwork
from repro.tiles.renderer import Tile
from repro.tiles.tile_math import TileCoordinate


@dataclass
class CentralizedStats:
    """Request accounting for the centralized provider."""

    requests_by_service: dict[str, int] = field(default_factory=dict)

    def record(self, service: str) -> None:
        self.requests_by_service[service] = self.requests_by_service.get(service, 0) + 1

    @property
    def total_requests(self) -> int:
        return sum(self.requests_by_service.values())


class CentralizedMapSystem:
    """The Figure-1 architecture: one provider, one merged map, five services."""

    def __init__(
        self,
        network: SimulatedNetwork | None = None,
        use_contraction_hierarchy: bool = True,
        prerender_zoom: int | None = None,
        name: str = "central-maps",
    ) -> None:
        self.network = network or SimulatedNetwork()
        self.name = name
        self.world_map = MapData(metadata=MapMetadata(name=name, operator=name))
        self._use_ch = use_contraction_hierarchy
        self._prerender_zoom = prerender_zoom
        self._prepared: PreprocessedData | None = None
        self.stats = CentralizedStats()
        self.gnss_accuracy_meters = 10.0

    # ------------------------------------------------------------------
    # Ingestion and preprocessing
    # ------------------------------------------------------------------
    def ingest(self, map_data: MapData) -> None:
        """Copy an organization's map into the central database."""
        offset = self.world_map.max_element_id() + 1_000_000
        self.world_map.merge(map_data, id_offset=offset)
        self._prepared = None

    def preprocess(self) -> PreprocessedData:
        """Run (or re-run) the preprocessing pipeline over the ingested data."""
        self._prepared = preprocess_world_map(
            self.world_map,
            use_contraction_hierarchy=self._use_ch,
            prerender_zoom=self._prerender_zoom,
        )
        return self._prepared

    @property
    def prepared(self) -> PreprocessedData:
        if self._prepared is None:
            self.preprocess()
        assert self._prepared is not None
        return self._prepared

    # ------------------------------------------------------------------
    # Location-based services (each is one client↔provider exchange)
    # ------------------------------------------------------------------
    def geocode(self, address: Address, limit: int = 5) -> list[GeocodeResult]:
        self.network.client_central_exchange()
        self.stats.record("geocode")
        return self.prepared.geocode_index.lookup(address, limit)

    def reverse_geocode(self, location: LatLng, max_distance_meters: float = 250.0) -> ReverseGeocodeResult | None:
        self.network.client_central_exchange()
        self.stats.record("reverse_geocode")
        candidates = self.world_map.nodes_near(location, max_distance_meters)
        best: ReverseGeocodeResult | None = None
        from repro.mapserver.geocode import GeocodeIndex as _GI

        for node in candidates:
            label = _GI._label_for(node)
            if not label:
                continue
            distance = location.distance_to(node.location)
            if best is None or distance < best.distance_meters:
                best = ReverseGeocodeResult(node.node_id, node.location, label, distance, self.name)
        return best

    def search(
        self,
        query: str,
        near: LatLng | None = None,
        radius_meters: float | None = None,
        limit: int = 10,
    ) -> list[SearchResult]:
        self.network.client_central_exchange()
        self.stats.record("search")
        scored = self.prepared.search_index.candidates(query)
        results: list[SearchResult] = []
        for node_id, keyword_score in scored.items():
            node = self.world_map.node(node_id)
            distance = near.distance_to(node.location) if near is not None else 0.0
            if radius_meters is not None and near is not None and distance > radius_meters:
                continue
            proximity = 1.0 / (1.0 + distance / 100.0) if near is not None else 1.0
            results.append(
                SearchResult(
                    node_id=node_id,
                    location=node.location,
                    label=node.name or node.tags.get("product") or f"node {node_id}",
                    relevance=0.7 * keyword_score + 0.3 * proximity,
                    distance_meters=distance,
                    map_name=self.name,
                    tags=tuple(sorted(node.tags.items())),
                )
            )
        results.sort(key=lambda r: r.relevance, reverse=True)
        return results[:limit]

    def route(self, origin: LatLng, destination: LatLng, metric: str = "distance") -> Route | None:
        self.network.client_central_exchange()
        self.stats.record("routing")
        graph = self.prepared.graph
        if graph.vertex_count < 2:
            return None
        source = graph.nearest_vertex(origin)
        target = graph.nearest_vertex(destination)
        try:
            if self.prepared.hierarchy is not None and metric == self.prepared.hierarchy.metric:
                return self.prepared.hierarchy.query(source, target)
            return dijkstra(graph, source, target, metric)
        except NoRouteError:
            return None

    def route_locations(self, origin: LatLng, destination: LatLng, metric: str = "distance") -> list[LatLng]:
        """Route and return the geographic polyline (empty if unroutable)."""
        route = self.route(origin, destination, metric)
        if route is None:
            return []
        return route.locations(self.prepared.graph)

    def localize(self, cues: CueBundle) -> LocalizationResult | None:
        """Centralized localization: GNSS only.

        The centralized provider has no access to indoor fingerprint
        databases (the organizations kept them private), so indoors it can do
        no better than the coarse satellite fix — the contrast measured in
        experiment E6.
        """
        self.network.client_central_exchange()
        self.stats.record("localization")
        if cues.gnss is None:
            return None
        return LocalizationResult(
            server_id=self.name,
            location=cues.gnss.location,
            accuracy_meters=max(cues.gnss.accuracy_meters, self.gnss_accuracy_meters),
            confidence=0.6,
            cue_type=CueType.GNSS,
        )

    def get_tile(self, coordinate: TileCoordinate) -> Tile:
        self.network.client_central_exchange()
        self.stats.record("tiles")
        return self.prepared.tile_renderer.render(coordinate)
