"""The centralized preprocessing pipeline (Figure 1).

"The map data of the world is preprocessed into different forms required for
each location-based service.  For example, to provide the routing service,
map data might be converted to a graph and then preprocessed using the
contraction hierarchies algorithm... The tile rendering service might
pre-render tiles... Geocode, reverse geocode, and location-based search would
involve indexing map nodes and their metadata against geographic coordinates"
(Section 4.1).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.mapserver.geocode import GeocodeIndex
from repro.mapserver.search import SearchIndex
from repro.osm.mapdata import MapData
from repro.routing.contraction import ContractionHierarchy, build_contraction_hierarchy
from repro.routing.graph import RoutingGraph, graph_from_map
from repro.tiles.renderer import TileRenderer
from repro.tiles.tile_math import tiles_for_box


@dataclass
class PreprocessingReport:
    """What the pipeline produced and how long each stage took (seconds)."""

    graph_vertices: int = 0
    graph_edges: int = 0
    ch_shortcuts: int = 0
    geocode_entries: int = 0
    search_entries: int = 0
    tiles_prerendered: int = 0
    stage_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return sum(self.stage_seconds.values())


@dataclass
class PreprocessedData:
    """The artefacts the centralized services read at query time."""

    graph: RoutingGraph
    hierarchy: ContractionHierarchy | None
    geocode_index: GeocodeIndex
    search_index: SearchIndex
    tile_renderer: TileRenderer
    report: PreprocessingReport


def preprocess_world_map(
    world_map: MapData,
    use_contraction_hierarchy: bool = True,
    prerender_zoom: int | None = None,
) -> PreprocessedData:
    """Run the full Figure-1 preprocessing pipeline over a merged world map."""
    report = PreprocessingReport()

    start = time.perf_counter()
    # The point of this pipeline is to *measure* the Figure-1 preprocessing
    # cost, so the extraction must actually run — never serve the memo.
    graph = graph_from_map(world_map, use_cache=False)
    report.stage_seconds["graph_build"] = time.perf_counter() - start
    report.graph_vertices = graph.vertex_count
    report.graph_edges = graph.edge_count

    hierarchy = None
    if use_contraction_hierarchy and graph.vertex_count > 1:
        start = time.perf_counter()
        hierarchy = build_contraction_hierarchy(graph)
        report.stage_seconds["contraction_hierarchy"] = time.perf_counter() - start
        report.ch_shortcuts = hierarchy.shortcut_count

    start = time.perf_counter()
    geocode_index = GeocodeIndex(world_map)
    report.stage_seconds["geocode_index"] = time.perf_counter() - start
    report.geocode_entries = geocode_index.entry_count

    start = time.perf_counter()
    search_index = SearchIndex(world_map)
    report.stage_seconds["search_index"] = time.perf_counter() - start
    report.search_entries = search_index.indexed_nodes

    tile_renderer = TileRenderer(world_map)
    if prerender_zoom is not None and world_map.node_count:
        start = time.perf_counter()
        coordinates = tiles_for_box(world_map.bounding_box(), prerender_zoom)
        tile_renderer.prerender(coordinates)
        report.stage_seconds["tile_prerender"] = time.perf_counter() - start
        report.tiles_prerendered = len(coordinates)

    return PreprocessedData(
        graph=graph,
        hierarchy=hierarchy,
        geocode_index=geocode_index,
        search_index=search_index,
        tile_renderer=tile_renderer,
        report=report,
    )
