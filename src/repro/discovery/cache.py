"""The device-side discovery cache.

Section 5.1 argues map-server addresses change rarely, "so the system would
benefit from a ubiquitous caching mechanism".  The recursive resolver already
caches DNS answers; this cache sits one layer closer to the application and
stores the *merged per-cell discovery result* (the ancestor walk collapsed to
a server list), so a device revisiting a cell skips DNS entirely — including
the client→resolver hop the resolver cache cannot remove.

Entries honour DNS TTLs: the discoverer computes each cell's time-to-live
from the remaining lifetimes of the DNS answers (and negative entries) that
produced it, clamped by the device-configured TTL, so a device cache can
never outlive the records it was derived from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simulation.clock import SimulatedClock
from repro.simulation.lru import LruCache, LruStats

DiscoveryCacheStats = LruStats


@dataclass
class DiscoveryCache:
    """An LRU, TTL-bounded cache of per-cell discovery results.

    Keys are cell tokens; values are the ordered tuple of server ids the
    discovery walk produced for that cell.  ``default_ttl_seconds <= 0``
    disables the cache entirely (every ``get`` is a miss, ``put`` is a no-op),
    which keeps the uncached baseline byte-identical to not having a cache.
    """

    clock: SimulatedClock
    max_entries: int = 4096
    default_ttl_seconds: float = 120.0
    stale_grace_seconds: float = 0.0
    """How long past expiry an entry may still be served *stale* via
    :meth:`get_stale` (graceful degradation during discovery outages).
    Zero — the default — keeps eviction and stats byte-identical to the
    no-grace behaviour."""
    _lru: LruCache = field(init=False)

    def __post_init__(self) -> None:
        self._lru = LruCache(max_entries=self.max_entries)

    @property
    def stats(self) -> LruStats:
        return self._lru.stats

    @property
    def enabled(self) -> bool:
        return self.default_ttl_seconds > 0.0

    def get(self, cell_token: str) -> tuple[str, ...] | None:
        """The cached *fresh* server list for a cell, or None on a miss."""
        if not self.enabled:
            return None
        now = self.clock.now()
        if self.stale_grace_seconds <= 0.0:
            entry = self._lru.lookup(cell_token, is_live=lambda value: value[0] > now)
            return entry[1] if entry is not None else None
        # With a stale grace window, entries must survive their expiry so a
        # later get_stale can find them: is_live retains within-grace entries,
        # and the expired-but-retained case is re-accounted as a miss (a stale
        # entry does not answer a normal lookup — resolution is still tried).
        grace = self.stale_grace_seconds
        entry = self._lru.lookup(cell_token, is_live=lambda value: value[0] + grace > now)
        if entry is not None and entry[0] <= now:
            self._lru.stats.hits -= 1
            self._lru.stats.misses += 1
            return None
        return entry[1] if entry is not None else None

    def get_stale(self, cell_token: str) -> tuple[str, ...] | None:
        """An *expired* entry still inside the stale grace window, else None.

        The degradation path: when live resolution fails (authority dark,
        SERVFAIL), the discoverer may serve this stale view rather than
        hard-fail.  No stats or recency are perturbed — degraded serves are
        counted by the discoverer, not as cache hits.
        """
        if not self.enabled or self.stale_grace_seconds <= 0.0:
            return None
        entry = self._lru.peek(cell_token)
        if entry is None:
            return None
        expires_at, servers = entry
        now = self.clock.now()
        if expires_at <= now < expires_at + self.stale_grace_seconds:
            return servers
        return None

    def put(self, cell_token: str, servers: list[str] | tuple[str, ...], ttl_seconds: float | None = None) -> None:
        """Cache a cell's discovery result for ``ttl_seconds``.

        The effective TTL is the smaller of ``ttl_seconds`` (the DNS-derived
        bound) and the device-configured default.
        """
        if not self.enabled:
            return
        ttl = self.default_ttl_seconds
        if ttl_seconds is not None:
            ttl = min(ttl, ttl_seconds)
        if ttl <= 0.0:
            return
        self._lru.store(cell_token, (self.clock.now() + ttl, tuple(dict.fromkeys(servers))))

    def flush(self) -> None:
        self._lru.flush()

    @property
    def size(self) -> int:
        return self._lru.size
