"""The device-side discovery cache.

Section 5.1 argues map-server addresses change rarely, "so the system would
benefit from a ubiquitous caching mechanism".  The recursive resolver already
caches DNS answers; this cache sits one layer closer to the application and
stores the *merged per-cell discovery result* (the ancestor walk collapsed to
a server list), so a device revisiting a cell skips DNS entirely — including
the client→resolver hop the resolver cache cannot remove.

Entries honour DNS TTLs: the discoverer computes each cell's time-to-live
from the remaining lifetimes of the DNS answers (and negative entries) that
produced it, clamped by the device-configured TTL, so a device cache can
never outlive the records it was derived from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simulation.clock import SimulatedClock
from repro.simulation.lru import LruCache, LruStats

DiscoveryCacheStats = LruStats


@dataclass
class DiscoveryCache:
    """An LRU, TTL-bounded cache of per-cell discovery results.

    Keys are cell tokens; values are the ordered tuple of server ids the
    discovery walk produced for that cell.  ``default_ttl_seconds <= 0``
    disables the cache entirely (every ``get`` is a miss, ``put`` is a no-op),
    which keeps the uncached baseline byte-identical to not having a cache.
    """

    clock: SimulatedClock
    max_entries: int = 4096
    default_ttl_seconds: float = 120.0
    _lru: LruCache = field(init=False)

    def __post_init__(self) -> None:
        self._lru = LruCache(max_entries=self.max_entries)

    @property
    def stats(self) -> LruStats:
        return self._lru.stats

    @property
    def enabled(self) -> bool:
        return self.default_ttl_seconds > 0.0

    def get(self, cell_token: str) -> tuple[str, ...] | None:
        """The cached server list for a cell, or None on a miss."""
        if not self.enabled:
            return None
        entry = self._lru.lookup(
            cell_token, is_live=lambda value: value[0] > self.clock.now()
        )
        return entry[1] if entry is not None else None

    def put(self, cell_token: str, servers: list[str] | tuple[str, ...], ttl_seconds: float | None = None) -> None:
        """Cache a cell's discovery result for ``ttl_seconds``.

        The effective TTL is the smaller of ``ttl_seconds`` (the DNS-derived
        bound) and the device-configured default.
        """
        if not self.enabled:
            return
        ttl = self.default_ttl_seconds
        if ttl_seconds is not None:
            ttl = min(ttl, ttl_seconds)
        if ttl <= 0.0:
            return
        self._lru.store(cell_token, (self.clock.now() + ttl, tuple(dict.fromkeys(servers))))

    def flush(self) -> None:
        self._lru.flush()

    @property
    def size(self) -> int:
        return self._lru.size
