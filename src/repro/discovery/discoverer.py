"""Client-side map server discovery.

Section 5.1: "The discovery query would involve the coarse location of the
device obtained from ubiquitous sources like the GPS.  The discovery system
would then respond to the query with a list of map providers for the region."

The :class:`Discoverer` converts a coarse location (a point plus an
uncertainty radius, or a region) into spatial domain names, resolves them
through the caching DNS resolver, and returns a de-duplicated list of map
server identifiers.

Naming-level convention: registrations are published at cell levels *no finer
than* ``query_level`` (the registry enforces its own ``max_level``; the
federation configures both from one value).  A discovery query therefore
always enumerates cells at exactly ``query_level`` and, for each, also checks
its ancestor names up to ``ancestor_levels`` levels coarser — so any
registration at an equal or coarser level is guaranteed to be met by the
walk, while the DNS cache absorbs the repeated coarse-level lookups.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from repro.discovery.cache import DiscoveryCache
from repro.discovery.naming import SpatialNaming
from repro.discovery.registry import MAP_SERVER_RECORD_TYPE
from repro.dns.message import ResponseCode
from repro.dns.records import SrvData
from repro.dns.resolver import StubResolver
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import LatLng
from repro.geometry.polygon import Polygon
from repro.spatialindex.cellid import CellId
from repro.spatialindex.covering import cells_at_level, normalize_covering


@lru_cache(maxsize=65536)
def _ancestor_walk(naming: SpatialNaming, token: str, ancestor_levels: int) -> tuple[str, ...]:
    """Domain names for one cell's ancestor walk (cell first, then coarser).

    Every client in a fleet walks the same city cells, and each walk re-derives
    the same ~``ancestor_levels`` parent tokens and names; the walk is pure in
    (naming, token), so one process-wide cache serves the whole fleet.  The
    names themselves come from :meth:`SpatialNaming.ancestor_names` — this is
    only a bounded, memoized view of it.
    """
    return tuple(naming.ancestor_names(CellId(token))[: ancestor_levels + 1])


@dataclass(frozen=True, slots=True)
class DiscoveryResult:
    """The outcome of one discovery query."""

    server_ids: tuple[str, ...]
    cells_queried: tuple[CellId, ...]
    dns_lookups: int
    coalesced_lookups: int = 0
    """DNS lookups avoided because an identical query was already in flight."""

    def __contains__(self, server_id: str) -> bool:
        return server_id in self.server_ids


@dataclass
class Discoverer:
    """Resolves coarse locations to the map servers covering them.

    ``device_cache_ttl_seconds`` enables a small device-side cache of per-cell
    discovery results (on top of the resolver's own DNS cache): a device that
    keeps querying the same few cells — the common case for a user walking
    around one store or one block — stops issuing DNS traffic entirely for
    the cached cells until the TTL lapses.  Set it to 0 to disable.
    """

    resolver: StubResolver
    naming: SpatialNaming = None  # type: ignore[assignment]
    query_level: int = 17
    ancestor_levels: int = 9
    max_query_cells: int = 24
    device_cache_ttl_seconds: float = 0.0
    cache_max_entries: int = 4096
    stale_serve_max_ms: float = 0.0
    """Graceful degradation bound: when live resolution *fails* (SERVFAIL —
    authority dark or unreachable), an expired device-cache entry younger
    than this may still be served, stale, instead of hard-failing.  0 (the
    default) disables stale serving entirely."""

    def __post_init__(self) -> None:
        if self.naming is None:
            self.naming = SpatialNaming()
        self.cache = DiscoveryCache(
            clock=self.resolver.network.clock,
            max_entries=self.cache_max_entries,
            default_ttl_seconds=self.device_cache_ttl_seconds,
            stale_grace_seconds=self.stale_serve_max_ms / 1000.0,
        )
        self.stale_serves: int = 0
        """Cells answered from an expired cache entry because live
        resolution failed — the degraded-service counter the workload
        engine reads to tell degraded requests from healthy ones."""
        self.srv_view: dict[str, tuple[int, int]] = {}
        """Per-server ``(priority, weight)`` as this device last decoded it
        from an actual discovery answer.  Updated only on fresh name
        resolution — replays from the device cache keep whatever the device
        learned before — so after an operator re-weights a live replica the
        device's view stays stale until its discovery-cache entry *and* the
        resolver pool's DNS entry expire.  That staleness is the point: it
        is the client half of the control plane's convergence story."""

    @property
    def device_cache_hits(self) -> int:
        return self.cache.stats.hits

    @property
    def device_cache_misses(self) -> int:
        return self.cache.stats.misses

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def discover_at(self, location: LatLng, uncertainty_meters: float = 0.0) -> DiscoveryResult:
        """Discover map servers around a coarse device location."""
        if uncertainty_meters <= 0.0:
            cells = [CellId.from_point(location, self.query_level)]
        else:
            box = BoundingBox.around(location, uncertainty_meters)
            cells = cells_at_level(box, self.query_level, self.max_query_cells)
        return self._discover_cells(cells)

    def discover_region(self, region: Polygon | BoundingBox) -> DiscoveryResult:
        """Discover map servers intersecting a region (e.g. a viewport)."""
        box = region if isinstance(region, BoundingBox) else region.bounding_box
        cells = cells_at_level(box, self.query_level, self.max_query_cells)
        return self._discover_cells(cells)

    def discover_along(self, waypoints: list[LatLng], corridor_meters: float = 200.0) -> DiscoveryResult:
        """Discover every map server along a path of waypoints (for routing)."""
        if not waypoints:
            raise ValueError("waypoints must be non-empty")
        all_cells: list[CellId] = []
        for waypoint in waypoints:
            box = BoundingBox.around(waypoint, corridor_meters)
            all_cells.extend(cells_at_level(box, self.query_level, self.max_query_cells))
        return self._discover_cells(normalize_covering(all_cells))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _discover_cells(self, cells: list[CellId]) -> DiscoveryResult:
        servers: list[str] = []
        seen: set[str] = set()
        # Single-flight tables for this query batch: duplicate queries for a
        # cell (or for a name shared between two cells' ancestor walks) issued
        # while the first one is logically in flight coalesce onto its result
        # instead of issuing more DNS traffic.
        name_results: dict[str, tuple[list[str], float, bool]] = {}
        cell_results: dict[str, list[str]] = {}
        lookups = 0
        coalesced = 0

        for cell in cells:
            inflight = cell_results.get(cell.token)
            if inflight is not None:
                cell_servers = inflight
                coalesced += 1
            else:
                cached = self.cache.get(cell.token)
                if cached is not None:
                    cell_servers = list(cached)
                else:
                    cell_servers = []
                    cell_expires_at = math.inf
                    resolution_failed = False
                    for name in self._names_for_cell(cell):
                        if name not in name_results:
                            lookups += 1
                            name_results[name] = self._resolve_name(name)
                        else:
                            coalesced += 1
                        name_servers, name_expires_at, name_failed = name_results[name]
                        cell_servers.extend(name_servers)
                        cell_expires_at = min(cell_expires_at, name_expires_at)
                        resolution_failed = resolution_failed or name_failed
                    # The expiry is absolute: the clock advances while the walk
                    # resolves, and an entry derived from an answer expiring at
                    # T must itself expire at T no matter when it is stored.
                    self.cache.put(
                        cell.token,
                        cell_servers,
                        ttl_seconds=cell_expires_at - self.resolver.network.clock.now(),
                    )
                    if not cell_servers and resolution_failed:
                        # Graceful degradation: live resolution failed (not
                        # "nobody covers this cell" — the authority could not
                        # answer at all).  Serve a just-expired cached view if
                        # one is still inside the stale window; the entry is
                        # NOT re-cached, so the window stays anchored to the
                        # moment the data went stale.
                        stale = self.cache.get_stale(cell.token)
                        if stale is not None:
                            cell_servers = list(stale)
                            self.stale_serves += 1
                cell_results[cell.token] = cell_servers

            for server_id in cell_servers:
                if server_id not in seen:
                    seen.add(server_id)
                    servers.append(server_id)

        return DiscoveryResult(tuple(servers), tuple(cells), lookups, coalesced)

    def _resolve_name(self, name: str) -> tuple[list[str], float, bool]:
        """Resolve one spatial name to ``(targets, absolute expiry, failed)``.

        The expiry bounds how long a device-cache entry derived from this
        answer may live.  It is the instant the resolver's own cache entry
        lapses (an answer served from a cache expiring in 10s must not seed a
        120s device entry), falling back to the minimum record TTL for
        answers the resolver did not cache, and to the resolver's negative
        TTL for empty answers.  ``failed`` marks a *transient* resolution
        failure (SERVFAIL/REFUSED) — the cue for stale-serve degradation —
        as opposed to an authoritative "nobody covers this name".
        """
        response = self.resolver.resolve(name, MAP_SERVER_RECORD_TYPE)
        dns_cache = self.resolver.recursive.cache
        now = self.resolver.network.clock.now()
        remaining = dns_cache.remaining_ttl(name, MAP_SERVER_RECORD_TYPE)
        if response.code not in (ResponseCode.NOERROR, ResponseCode.NXDOMAIN):
            # Transient failures (SERVFAIL/REFUSED) are deliberately not
            # cached by the resolver; the device cache must not negative-cache
            # them either, or it would hide the recovery an uncached client
            # sees on its very next query.
            return [], now, True
        if response.code != ResponseCode.NOERROR or not response.answers:
            ttl = remaining if remaining is not None else dns_cache.negative_ttl_seconds
            return [], now + ttl, False
        matching = [r for r in response.answers if r.record_type == MAP_SERVER_RECORD_TYPE]
        if not matching:
            ttl = remaining if remaining is not None else dns_cache.negative_ttl_seconds
            return [], now + ttl, False
        decoded = [SrvData.decode(record.data) for record in matching]
        targets = []
        for srv in decoded:
            # The freshest SRV data this device has actually seen for the
            # target; weighted replica selection reads this view.
            self.srv_view[srv.target] = (srv.priority, srv.weight)
            targets.append(srv.target)
        ttl = min(record.ttl_seconds for record in matching)
        if remaining is not None:
            ttl = min(ttl, remaining)
        return targets, now + ttl, False

    def _names_for_cell(self, cell: CellId) -> tuple[str, ...]:
        """Names to query for a cell: the cell itself plus a few ancestors.

        Registrations may live at coarser cells than the query level (large
        providers cover whole districts with one record), so each query also
        walks up the hierarchy.  The walk is bounded by ``ancestor_levels``
        and memoized process-wide (see :func:`_ancestor_walk`).
        """
        return _ancestor_walk(self.naming, cell.token, self.ancestor_levels)
