"""Map server discovery over the DNS (Section 5.1 of the paper)."""

from repro.discovery.cache import DiscoveryCache, DiscoveryCacheStats
from repro.discovery.discoverer import Discoverer, DiscoveryResult
from repro.discovery.naming import DEFAULT_DISCOVERY_SUFFIX, SpatialNaming
from repro.discovery.registry import (
    DEFAULT_REGISTRATION_TTL,
    MAP_SERVER_RECORD_TYPE,
    DiscoveryRegistry,
    Registration,
)

__all__ = [
    "DEFAULT_DISCOVERY_SUFFIX",
    "DEFAULT_REGISTRATION_TTL",
    "Discoverer",
    "DiscoveryCache",
    "DiscoveryCacheStats",
    "DiscoveryRegistry",
    "DiscoveryResult",
    "MAP_SERVER_RECORD_TYPE",
    "Registration",
    "SpatialNaming",
]
