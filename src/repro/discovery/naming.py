"""Encoding spatial cells as hierarchical domain names.

Section 5.1: "we can leverage spatial indexing systems (e.g., S2, H3) to
convert locations to hierarchical domain names.  A polygonal region, or a
zone, can be approximated by a collection of domain names."

A cell token like ``"2031"`` becomes the domain name
``"1.3.0.2.<suffix>"`` — one DNS label per cell digit, least significant
(deepest) first, so that DNS's suffix-based delegation mirrors the cell
hierarchy: the authority for cell ``"20"`` can delegate all of its
descendants by delegating the name ``"0.2.<suffix>"``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dns.records import normalize_name
from repro.spatialindex.cellid import CellId

DEFAULT_DISCOVERY_SUFFIX = "loc.openflame.example"
"""Default DNS suffix under which spatial names live."""


@dataclass(frozen=True, slots=True)
class SpatialNaming:
    """Bidirectional codec between cells and domain names under one suffix."""

    suffix: str = DEFAULT_DISCOVERY_SUFFIX

    def __post_init__(self) -> None:
        object.__setattr__(self, "suffix", normalize_name(self.suffix))
        if not self.suffix:
            raise ValueError("discovery suffix must be non-empty")

    def cell_to_name(self, cell: CellId) -> str:
        """Domain name for a cell (the root cell maps to the bare suffix)."""
        if cell.is_root:
            return self.suffix
        labels = ".".join(reversed(cell.token))
        return f"{labels}.{self.suffix}"

    def name_to_cell(self, name: str) -> CellId:
        """Inverse of :meth:`cell_to_name`; raises ``ValueError`` for foreign names."""
        normalized = normalize_name(name)
        if normalized == self.suffix:
            return CellId.root()
        suffix_with_dot = "." + self.suffix
        if not normalized.endswith(suffix_with_dot):
            raise ValueError(f"{name!r} is not under discovery suffix {self.suffix!r}")
        prefix = normalized[: -len(suffix_with_dot)]
        labels = prefix.split(".")
        token = "".join(reversed(labels))
        return CellId(token)

    def is_spatial_name(self, name: str) -> bool:
        """True if ``name`` lies under the discovery suffix."""
        normalized = normalize_name(name)
        return normalized == self.suffix or normalized.endswith("." + self.suffix)

    def ancestor_names(self, cell: CellId) -> list[str]:
        """Domain names of the cell and all of its ancestors, deepest first."""
        names = []
        current = cell
        while True:
            names.append(self.cell_to_name(current))
            if current.is_root:
                break
            current = current.parent()
        return names
