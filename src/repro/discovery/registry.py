"""Registering map servers in the discovery DNS.

A map operator registers its map by (1) computing a cell covering of the
map's coverage region and (2) publishing one record per covering cell naming
the map server.  Because coverings over-approximate regions, nearby clients
may discover servers whose precise polygon does not contain them — exactly
the boundary fuzziness Section 3 accepts, and the reason clients filter
discovered servers afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.dns.records import RecordType, ResourceRecord, SrvData
from repro.dns.server import NameServer
from repro.dns.zone import Zone
from repro.discovery.naming import SpatialNaming
from repro.geometry.polygon import Polygon
from repro.spatialindex.cellid import CellId
from repro.spatialindex.covering import CoveringOptions, RegionCoverer

MAP_SERVER_RECORD_TYPE = RecordType.SRV
"""Record type used to advertise map servers under spatial names."""

DEFAULT_REGISTRATION_TTL = 3600.0
"""TTL for registration records — map server addresses change rarely (§5.1)."""


@dataclass(frozen=True, slots=True)
class Registration:
    """The result of registering one map server."""

    server_id: str
    cells: tuple[CellId, ...]
    record_count: int
    priority: int = 0
    weight: int = 0
    port: int = 443
    target: str = ""
    """SRV target host; defaults to the server id (the common case where the
    directory key *is* the advertised host)."""

    def __post_init__(self) -> None:
        if not self.target:
            object.__setattr__(self, "target", self.server_id)


@dataclass
class DiscoveryRegistry:
    """Owns the spatial DNS zone and registers map servers into it.

    In a real deployment each organization would run its own authoritative
    servers for the sub-zones delegated to it; for the prototype a single
    authoritative :class:`NameServer` hosts the whole spatial zone, which is
    sufficient to measure query counts, caching and latency.
    """

    naming: SpatialNaming = field(default_factory=SpatialNaming)
    covering_options: CoveringOptions = field(default_factory=CoveringOptions)
    ttl_seconds: float = DEFAULT_REGISTRATION_TTL
    zone: Zone = field(init=False)
    authority: NameServer = field(init=False)
    registrations: dict[str, Registration] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.zone = Zone(origin=self.naming.suffix, default_ttl=self.ttl_seconds)
        self.authority = NameServer(server_id=f"ns.{self.naming.suffix}")
        self.authority.host_zone(self.zone)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_covering(
        self,
        server_id: str,
        cells: list[CellId],
        priority: int = 0,
        weight: int = 0,
        port: int = 443,
        target: str | None = None,
    ) -> Registration:
        """Register ``server_id`` under an explicit list of cells.

        ``priority``/``weight`` carry RFC 2782 load-sharing semantics into
        every emitted SRV record; clients decode them back out of discovery
        answers to order replica chains.  ``target`` is the advertised SRV
        host (defaulting to the server id).  Registering an endpoint
        (``target:port``) that another registration already advertises at a
        shared spatial name is rejected outright: two SRV records for one
        host:port would silently shadow each other (only one backend
        exists), which is a deployment error, not a bigger replica group.
        """
        if not cells:
            raise ValueError("cannot register a map server with an empty covering")
        if server_id in self.registrations:
            raise ValueError(f"map server {server_id!r} is already registered")
        srv = SrvData(target=target or server_id, port=port, priority=priority, weight=weight)
        for cell in cells:
            name = self.naming.cell_to_name(cell)
            for record in self.zone.records_at(name, MAP_SERVER_RECORD_TYPE):
                if SrvData.decode(record.data).endpoint == srv.endpoint:
                    raise ValueError(
                        f"endpoint {srv.target}:{srv.port} is already advertised at "
                        f"{name!r} (by an existing registration); refusing to shadow it"
                    )
        record_count = 0
        data = srv.encode()
        for cell in cells:
            name = self.naming.cell_to_name(cell)
            self.zone.add(name, MAP_SERVER_RECORD_TYPE, data, self.ttl_seconds)
            record_count += 1
        registration = Registration(
            server_id,
            tuple(cells),
            record_count,
            priority=priority,
            weight=weight,
            port=port,
            target=srv.target,
        )
        self.registrations[server_id] = registration
        return registration

    def register_region(
        self,
        server_id: str,
        region: Polygon,
        priority: int = 0,
        weight: int = 0,
        port: int = 443,
        target: str | None = None,
    ) -> Registration:
        """Register a map server for a polygonal coverage region."""
        coverer = RegionCoverer(self.covering_options)
        cells = coverer.cover_polygon(region)
        return self.register_covering(
            server_id, cells, priority=priority, weight=weight, port=port, target=target
        )

    def update_region(self, server_id: str, region: Polygon) -> Registration:
        """Re-register a map server for a new coverage region.

        Maps evolve — a store is extended, a campus adds a building.  The
        update withdraws the old covering records and publishes the new ones;
        clients keep working throughout because stale cached records only
        over-approximate coverage until their TTL lapses.
        """
        registration = self.registrations.get(server_id)
        if registration is None:
            raise ValueError(f"map server {server_id!r} is not registered")
        self.deregister(server_id)
        return self.register_region(
            server_id,
            region,
            priority=registration.priority,
            weight=registration.weight,
            port=registration.port,
            target=registration.target,
        )

    def reweight(
        self, server_id: str, priority: int | None = None, weight: int | None = None
    ) -> Registration:
        """Re-emit a registered server's SRV records with new priority/weight.

        The operator control plane's authority-side half: every spatial name
        the registration covers gets a replacement record carrying the new
        RFC 2782 values.  The replacement is published *before* the stale
        record is withdrawn, so at no instant does a covered name stop
        resolving the endpoint — there is no NXDOMAIN (or empty-answer)
        window for a fresh query to fall into.  Caches are untouched:
        clients keep acting on the old values until their TTLs lapse, which
        is exactly the convergence lag the workload engine measures.
        """
        registration = self.registrations.get(server_id)
        if registration is None:
            raise ValueError(f"map server {server_id!r} is not registered")
        new_priority = registration.priority if priority is None else priority
        new_weight = registration.weight if weight is None else weight
        if (new_priority, new_weight) == (registration.priority, registration.weight):
            return registration
        srv = SrvData(
            target=registration.target,
            port=registration.port,
            priority=new_priority,
            weight=new_weight,
        )
        data = srv.encode()
        for cell in registration.cells:
            name = self.naming.cell_to_name(cell)
            stale = [
                record
                for record in self.zone.records_at(name, MAP_SERVER_RECORD_TYPE)
                if SrvData.decode(record.data).endpoint == srv.endpoint
            ]
            self.zone.add(name, MAP_SERVER_RECORD_TYPE, data, self.ttl_seconds)
            for record in stale:
                self.zone.remove_record(record)
        updated = replace(registration, priority=new_priority, weight=new_weight)
        self.registrations[server_id] = updated
        return updated

    def deregister(self, server_id: str) -> int:
        """Remove a map server's records; returns the number of records removed.

        Removal is surgical (:meth:`repro.dns.zone.Zone.remove_record`):
        other servers' records at shared spatial names — replicas of the
        same coverage region — keep resolving untouched, and the authority
        stops answering for the departed server immediately.
        """
        registration = self.registrations.pop(server_id, None)
        if registration is None:
            return 0
        removed = 0
        expected = (registration.target, registration.port)
        for cell in registration.cells:
            name = self.naming.cell_to_name(cell)
            for record in self.zone.records_at(name, MAP_SERVER_RECORD_TYPE):
                if SrvData.decode(record.data).endpoint == expected and self.zone.remove_record(record):
                    removed += 1
        return removed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def registered_servers(self) -> list[str]:
        return sorted(self.registrations)

    def records_for_cell(self, cell: CellId) -> list[ResourceRecord]:
        return self.zone.records_at(self.naming.cell_to_name(cell), MAP_SERVER_RECORD_TYPE)

    def servers_at_cell(self, cell: CellId) -> list[str]:
        """Server ids registered exactly at ``cell`` (not ancestors/descendants)."""
        return [SrvData.decode(r.data).target for r in self.records_for_cell(cell)]

    @property
    def total_records(self) -> int:
        return self.zone.record_count
