"""Warm pools: pre-registered zero-weight standby replicas.

Elastic capacity without cold starts: a :class:`WarmPool` deploys extra
replicas into an existing replica group *at SRV weight 0* — registered in
discovery (every answer carries them) but last-resort for RFC 2782
selection, so they serve (almost) no traffic while pooled.  Promotion is
then a pure weight change (``set_weight(promote_weight)``) that clients
converge to as their TTLs lapse; no registration race, no NXDOMAIN
window, no cache-fill stampede.

Retirement runs the other way — drain (weight back to 0) and, after a
grace period, *park*: the standby's records are withdrawn at the
authority (fresh discoveries stop seeing it) while the server itself
stays reachable, so devices holding stale cached answers drain off it
gracefully.  A parked standby is back in the pool; re-promotion unparks
(re-registers) it first.

The pool is bookkeeping plus :class:`~repro.core.federation.Federation`
lifecycle calls — the *decisions* (when to promote, how fast to ramp)
live in :class:`repro.autoscale.scaler.Autoscaler`, and the weight
changes themselves travel through the control plane so they are audited
like any operator action.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.federation import Federation


@dataclass
class WarmPool:
    """The standby replicas attached to one replica group.

    Built via :meth:`provision` (or ``Federation.attach_warm_pool``);
    holds the federation, the group id, and the standby server ids in
    deployment order.  All state queries read the live federation — the
    pool object itself is stateless, so it can never disagree with the
    SRV truth.
    """

    federation: "Federation"
    group_id: str
    standby_ids: tuple[str, ...]

    @classmethod
    def provision(cls, federation: "Federation", group_id: str, size: int) -> "WarmPool":
        """Deploy ``size`` standbys into the group at weight 0 and wrap
        them as a pool.  The standbys continue the group's ``rN.`` id
        sequence and register immediately (pre-registered, zero-weight)."""
        standby_ids = federation.extend_replica_group(
            group_id, count=size, weight=0, priority=0
        )
        return cls(federation=federation, group_id=group_id, standby_ids=standby_ids)

    # ------------------------------------------------------------------
    # State queries (live SRV truth)
    # ------------------------------------------------------------------
    def weight_of(self, server_id: str) -> int:
        """The standby's currently advertised SRV weight."""
        return self.federation.srv_of(server_id)[1]

    def is_parked(self, server_id: str) -> bool:
        """Whether the standby's records are currently withdrawn."""
        return server_id not in self.federation.registry.registrations

    def pooled_ids(self) -> tuple[str, ...]:
        """Standbys at weight 0 (parked or registered): promotable."""
        return tuple(sid for sid in self.standby_ids if self.weight_of(sid) == 0)

    def serving_ids(self) -> tuple[str, ...]:
        """Standbys carrying positive weight, in deployment order."""
        return tuple(sid for sid in self.standby_ids if self.weight_of(sid) > 0)

    # ------------------------------------------------------------------
    # Lifecycle (federation calls; weight changes go via the control plane)
    # ------------------------------------------------------------------
    def ensure_registered(self, server_id: str) -> None:
        """Unpark a standby before promotion (no-op when registered)."""
        self._check(server_id)
        self.federation.unpark_map_server(server_id)

    def park(self, server_id: str) -> int:
        """Deregister a *fully drained* standby back into the pool.

        Refuses to park a standby still carrying weight — parking it
        would strand converged clients on a server fresh discoveries can
        no longer see.  Returns the number of records withdrawn.
        """
        self._check(server_id)
        if self.weight_of(server_id) != 0:
            raise ValueError(
                f"standby {server_id!r} still carries weight; drain it before parking"
            )
        return self.federation.park_map_server(server_id)

    def _check(self, server_id: str) -> None:
        if server_id not in self.standby_ids:
            raise ValueError(
                f"server {server_id!r} is not a standby of group {self.group_id!r}"
            )
