"""Autoscaler decision machinery: thresholds, debouncing, cooldowns.

Everything here is pure state-machine code with no federation or
telemetry dependencies, so the stability properties — how many
consecutive breaching evaluations arm an action, how long after an action
the loop must hold still — are unit-testable in isolation.

The central hazard this machinery exists for is *delayed actuation*:
a weight change lands at the authority instantly, but clients converge
only as their cached TTLs lapse (22–67 s measured in E15).  A controller
that re-evaluates inside that lag sees its own action as "no effect" and,
naively, acts again — the classic weight oscillator.  The cure is the
combination used here: :class:`HysteresisGate` separates the breach and
recover thresholds *and* requires consecutive confirmations, while
:class:`Cooldown` spaces actions at least a convergence window apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class AutoscalerConfig:
    """Tunables of one closed-loop autoscaler run.

    Signal inputs (all read from telemetry roll-ups over the trailing
    ``signal_windows`` sealed windows):

    * ``wait_high_ms`` / ``wait_low_ms`` — zonal mean queue-wait
      hysteresis band (breach above high, recover below low);
    * ``shed_high`` — zonal shed rate that counts as pressure on its own;
    * ``burn_high`` / ``burn_low`` — per-window SLO error-budget burn
      band (0 disables the burn trigger);
    * ``p95_high_ms`` — global latency p95 that counts as pressure
      (``None`` disables the trigger).

    Actuation:

    * ``promote_weight`` — the SRV weight a promoted standby serves at;
    * ``ramp_weights`` — the gradual drain ladder a retiring standby
      steps down (must be strictly decreasing and end at 0; the classic
      4→2→1→0 default sheds load in halves instead of a step drain);
    * ``slope_fast_per_s`` — when the zone's demand slope (requests/s per
      window, from the telemetry reader) is at or below this, a retiring
      standby takes two ramp steps per evaluation instead of one (load is
      ebbing fast, drain fast);
    * ``outlier_wait_ratio`` — protective drain: inside a pressured zone,
      a member whose own telemetry mean wait exceeds this multiple of the
      zone mean is drained (0 disables), and undrained once the zone
      recovers.

    Stability:

    * ``breach_evals`` / ``recover_evals`` — consecutive evaluations the
      pressure signal must hold before the gate arms (evaluations happen
      once per *sealed telemetry window*, not per round);
    * ``cooldown_seconds`` — minimum spacing between scale-direction
      actions on one group; must cover the client convergence window or
      the loop oscillates;
    * ``ramp_cooldown_seconds`` — spacing between successive down-ramp
      steps (shorter: each step only sheds part of the standby's share);
    * ``park_delay_seconds`` — how long a fully drained standby stays
      registered (at weight 0) before being deregistered back into the
      pool, giving stale clients time to converge off it.

    Determinism: the config is frozen and every threshold comparison in
    the scaler is pure arithmetic over telemetry floats, so identical
    runs make identical decisions.
    """

    zone_level: int = 12
    signal_windows: int = 1
    wait_high_ms: float = 25.0
    wait_low_ms: float = 5.0
    shed_high: float = 0.2
    burn_high: float = 1.0
    burn_low: float = 0.25
    p95_high_ms: float | None = None
    breach_evals: int = 2
    recover_evals: int = 3
    promote_weight: int = 4
    ramp_weights: tuple[int, ...] = (4, 2, 1, 0)
    slope_fast_per_s: float = -0.5
    outlier_wait_ratio: float = 0.0
    cooldown_seconds: float = 90.0
    ramp_cooldown_seconds: float = 40.0
    park_delay_seconds: float = 60.0

    def __post_init__(self) -> None:
        if not (0 <= self.zone_level <= 30):
            raise ValueError("zone level must be in [0, 30]")
        if self.signal_windows < 1:
            raise ValueError("signals need at least one trailing window")
        if self.wait_low_ms < 0.0 or self.wait_high_ms <= self.wait_low_ms:
            raise ValueError("need 0 <= wait_low_ms < wait_high_ms (hysteresis band)")
        if self.burn_high > 0.0 and not (0.0 <= self.burn_low < self.burn_high):
            raise ValueError("need 0 <= burn_low < burn_high (hysteresis band)")
        if not (0.0 <= self.shed_high <= 1.0):
            raise ValueError("shed_high is a rate in [0, 1]")
        if self.p95_high_ms is not None and self.p95_high_ms <= 0.0:
            raise ValueError("p95_high_ms must be positive (or None to disable)")
        if self.breach_evals < 1 or self.recover_evals < 1:
            raise ValueError("gate streaks need at least one evaluation")
        if self.promote_weight < 1:
            raise ValueError("promoted standbys need a positive weight")
        if len(self.ramp_weights) < 2 or self.ramp_weights[-1] != 0:
            raise ValueError("ramp_weights must end at 0 (a completed drain)")
        if any(b >= a for a, b in zip(self.ramp_weights, self.ramp_weights[1:])):
            raise ValueError("ramp_weights must be strictly decreasing")
        if any(weight < 0 for weight in self.ramp_weights):
            raise ValueError("ramp weights cannot be negative")
        if self.outlier_wait_ratio < 0.0:
            raise ValueError("outlier_wait_ratio cannot be negative")
        if self.cooldown_seconds < 0.0 or self.ramp_cooldown_seconds < 0.0:
            raise ValueError("cooldowns cannot be negative")
        if self.park_delay_seconds < 0.0:
            raise ValueError("park delay cannot be negative")


@dataclass
class HysteresisGate:
    """Debounces a pressure signal into ``breach`` / ``recover`` / ``hold``.

    Each :meth:`update` takes the two band comparisons for one evaluation
    (``pressed``: above the high threshold; ``relaxed``: below the low
    threshold; both False in the dead band between them) and returns the
    armed decision:

    * ``"breach"`` once ``breach_evals`` *consecutive* pressed
      evaluations have been seen (and for every consecutive pressed
      evaluation after that — pairing with a :class:`Cooldown` spaces the
      resulting actions);
    * ``"recover"`` symmetrically after ``recover_evals`` consecutive
      relaxed evaluations;
    * ``"hold"`` otherwise.  A dead-band evaluation resets *both*
      streaks: hysteresis means flapping around either threshold never
      arms anything.

    Determinism: pure counters, no time, no randomness.
    """

    breach_evals: int
    recover_evals: int
    breach_streak: int = 0
    recover_streak: int = 0

    def __post_init__(self) -> None:
        if self.breach_evals < 1 or self.recover_evals < 1:
            raise ValueError("gate streaks need at least one evaluation")

    def update(self, pressed: bool, relaxed: bool) -> str:
        """Fold one evaluation in; returns ``breach``/``recover``/``hold``."""
        if pressed and relaxed:
            raise ValueError("a signal cannot be above high and below low at once")
        if pressed:
            self.breach_streak += 1
            self.recover_streak = 0
        elif relaxed:
            self.recover_streak += 1
            self.breach_streak = 0
        else:
            self.breach_streak = 0
            self.recover_streak = 0
        if self.breach_streak >= self.breach_evals:
            return "breach"
        if self.recover_streak >= self.recover_evals:
            return "recover"
        return "hold"


@dataclass
class Cooldown:
    """Minimum simulated-time spacing between actions.

    :meth:`ready` answers whether enough time has passed since the last
    :meth:`stamp` (always true before the first stamp); the caller stamps
    only when it actually acts, so a blocked decision retries at the next
    evaluation rather than resetting its own timer.
    """

    seconds: float
    last_at: float | None = field(default=None)

    def __post_init__(self) -> None:
        if self.seconds < 0.0:
            raise ValueError("a cooldown cannot be negative")

    def ready(self, now: float) -> bool:
        return self.last_at is None or now - self.last_at >= self.seconds

    def stamp(self, now: float) -> None:
        self.last_at = now
