"""The closed-loop autoscaler: one control loop per warm-pooled group.

Each :class:`Autoscaler` evaluation (paced to the telemetry cadence — one
per *sealed window*, not per round) reads the group's zone pressure from
the :class:`~repro.telemetry.reader.TelemetryReader` and issues at most
one batched control-plane action per group:

* **breach** (pressure sustained ``breach_evals`` evaluations):
  first restore any standby caught mid-drain back to full weight
  (undrain on load recovery), else promote one pooled standby
  (unpark → ``set_weight(promote_weight)``), else — with
  ``outlier_wait_ratio`` set — protectively drain a member replica whose
  own telemetry wait is an outlier against its zone;
* **recover** (quiet sustained ``recover_evals`` evaluations):
  first undrain any protectively drained member, else step the
  most-recently promoted standby down the ``ramp_weights`` ladder
  (4→2→1→0 by default; two steps per evaluation when the zone's demand
  slope says load is ebbing fast), and once drained — after
  ``park_delay_seconds`` — deregister it back into the pool.

Every weight change travels through
:meth:`repro.control.ControlPlane.apply_batch`, so the run's audit trail
(``ControlPlane.applied``) shows each decision cycle as one batch, with
rejected ops (e.g. the group-guard refusing to zero the last positive
weight) recorded rather than raised.

Cost is accounted as **replica-seconds**: the integral over simulated
time of replicas that are reachable, registered, and positively weighted
across the managed groups — the "what you pay for" series static
provisioning is compared against in ``BENCH_e19.json``.

Determinism: evaluations iterate groups and servers in sorted/deployment
order, read only sealed telemetry, and use no randomness or wall clock,
so a fixed seed yields a byte-identical decision tape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.autoscale.policy import AutoscalerConfig, Cooldown, HysteresisGate
from repro.autoscale.warmpool import WarmPool
from repro.control.plane import ControlOp, ControlPlane
from repro.control.schedule import ControlEventKind
from repro.telemetry.reader import TelemetryReader
from repro.telemetry.spatial import cell_ancestor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.federation import Federation


@dataclass
class _GroupState:
    """Per-group control state: the gate, the cooldowns, in-flight drains."""

    gate: HysteresisGate
    up_cooldown: Cooldown
    down_cooldown: Cooldown
    ramp_cooldown: Cooldown
    drained_at: dict[str, float] = field(default_factory=dict)
    """Fully drained standby → the instant it reached weight 0 (awaiting
    its park delay)."""
    protected: dict[str, bool] = field(default_factory=dict)
    """Members this loop protectively drained (awaiting zone recovery)."""
    member_cooldowns: dict[str, Cooldown] = field(default_factory=dict)


class Autoscaler:
    """Drives warm-pool capacity from telemetry roll-ups, per group.

    Args:
        federation: the live federation; scaling domains are the replica
            groups with a pool in ``federation.warm_pools``.
        reader: the telemetry query surface — the *only* signal source.
        config: thresholds, ramps, and stability tunables.
        control: an optional shared control plane; by default the
            autoscaler gets its own (schedule-free) plane so its audit
            trail stays separate from any scripted operator tape.

    The engine calls :meth:`begin` once at run start (cost-integral
    anchor) and :meth:`observe` at every round seal (the ``RoundObserver``
    signature); everything else is internal.
    """

    def __init__(
        self,
        federation: "Federation",
        reader: TelemetryReader,
        config: AutoscalerConfig | None = None,
        control: ControlPlane | None = None,
    ) -> None:
        self.federation = federation
        self.reader = reader
        self.config = config or AutoscalerConfig()
        self.control = control or ControlPlane(federation=federation)
        self.pools: dict[str, WarmPool] = {
            group_id: pool  # type: ignore[misc]
            for group_id, pool in sorted(federation.warm_pools.items())
        }
        self._states: dict[str, _GroupState] = {
            group_id: _GroupState(
                gate=HysteresisGate(self.config.breach_evals, self.config.recover_evals),
                up_cooldown=Cooldown(self.config.cooldown_seconds),
                down_cooldown=Cooldown(self.config.cooldown_seconds),
                ramp_cooldown=Cooldown(self.config.ramp_cooldown_seconds),
            )
            for group_id in self.pools
        }
        self._zones: dict[str, tuple[str, ...]] = {
            group_id: self._derive_zones(group_id) for group_id in self.pools
        }
        self._last_direction: dict[str, tuple[int, float]] = {}
        """Per-server last applied scale direction (+1 up / -1 down) and
        its instant, for the flap (oscillation) metric."""
        self._seen_windows = 0
        self._last_now: float | None = None
        self.replica_seconds = 0.0
        self.active_peak = 0
        self.counters: dict[str, int] = {
            "evals": 0,
            "actions": 0,
            "ops_applied": 0,
            "ops_rejected": 0,
            "promotions": 0,
            "undrains": 0,
            "ramp_steps": 0,
            "protect_drains": 0,
            "protect_undrains": 0,
            "parks": 0,
            "weight_changes": 0,
            "flaps": 0,
        }

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------
    def begin(self, now: float) -> None:
        """Anchor the replica-seconds integral at run start."""
        if self._last_now is None:
            self._last_now = now
            self.active_peak = self._active_replicas()

    def observe(self, round_index: int, now: float) -> None:
        """The round-seal hook (``RoundObserver`` signature).

        Always advances the cost integral and parks any drained standby
        whose grace period elapsed; *evaluates* (and possibly acts) only
        when a new telemetry window sealed since the last call, so the
        decision cadence is the telemetry cadence regardless of round
        length.
        """
        del round_index  # decisions key on simulated time and windows
        active = self._active_replicas()
        self.active_peak = max(self.active_peak, active)
        if self._last_now is not None:
            self.replica_seconds += active * (now - self._last_now)
        self._last_now = now
        for group_id in self.pools:
            self._park_due(group_id, now)
        window_count = self.reader.window_count
        if window_count == self._seen_windows:
            return
        self._seen_windows = window_count
        for group_id in self.pools:
            self._evaluate(group_id, now)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, float]:
        """Bounded headline floats for ``WorkloadReport.snapshot``
        (``autoscale.*`` keys, present only when the autoscaler ran)."""
        data = {name: float(value) for name, value in self.counters.items()}
        data["groups"] = float(len(self.pools))
        data["standbys"] = float(sum(len(p.standby_ids) for p in self.pools.values()))
        data["replica_seconds"] = self.replica_seconds
        data["active_peak"] = float(self.active_peak)
        return data

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------
    def _derive_zones(self, group_id: str) -> tuple[str, ...]:
        """The zone-level ancestors of the group's registered covering
        cells (from the pipeline's server→cells map — telemetry metadata,
        not federation introspection)."""
        group = self.federation.replica_groups[group_id]
        tokens: set[str] = set()
        for server_id in group.server_ids:
            for token in self.reader.pipeline.server_cells.get(server_id, ()):
                tokens.add(cell_ancestor(token, self.config.zone_level))
        return tuple(sorted(tokens))

    def _group_pressure(self, group_id: str) -> tuple[float, float, float]:
        """(worst mean wait, worst shed rate, most negative demand slope)
        across the group's zones over the trailing signal windows."""
        config = self.config
        zonal = self.reader.zonal(config.zone_level, last=config.signal_windows)
        wait = shed = 0.0
        slope = 0.0
        for index, zone in enumerate(self._zones[group_id]):
            stats = zonal.get(zone)
            if stats is not None:
                wait = max(wait, stats["mean_wait_ms"])
                shed = max(shed, stats["shed_rate"])
            zone_slope = self.reader.demand_slope(zone, config.zone_level)
            slope = zone_slope if index == 0 else min(slope, zone_slope)
        return wait, shed, slope

    # ------------------------------------------------------------------
    # The control loop
    # ------------------------------------------------------------------
    def _evaluate(self, group_id: str, now: float) -> None:
        config = self.config
        state = self._states[group_id]
        if not self.reader.has_signal(last=config.signal_windows):
            # Zero-sample window(s): missing telemetry is "no signal", not
            # pressure 0.0.  Hold the gate in its dead band — this resets
            # both streaks, so an empty window can neither advance a breach
            # nor fake the quiet streak that triggers a scale-down.
            state.gate.update(False, False)
            self.counters["evals"] += 1
            return
        wait, shed, slope = self._group_pressure(group_id)
        burn = self.reader.max_burn(last=config.signal_windows)
        p95 = self.reader.p95_ms(last=config.signal_windows)
        pressed = (
            wait >= config.wait_high_ms
            or shed >= config.shed_high
            or (config.burn_high > 0.0 and burn >= config.burn_high)
            or (config.p95_high_ms is not None and p95 >= config.p95_high_ms)
        )
        relaxed = (
            wait <= config.wait_low_ms
            and shed < config.shed_high
            and (config.burn_high <= 0.0 or burn <= config.burn_low)
            and (config.p95_high_ms is None or p95 < config.p95_high_ms)
        )
        decision = state.gate.update(pressed, relaxed and not pressed)
        self.counters["evals"] += 1
        if decision == "breach":
            self._scale_up(group_id, state, now)
        elif decision == "recover":
            self._scale_down(group_id, state, now, slope)

    def _scale_up(self, group_id: str, state: _GroupState, now: float) -> None:
        config = self.config
        pool = self.pools[group_id]
        # 1) Load came back while a standby was mid-drain: cancel the
        # retirement, restoring full weight in one batch.
        ramping = [
            sid for sid in pool.serving_ids() if pool.weight_of(sid) < config.promote_weight
        ]
        if ramping and state.up_cooldown.ready(now) and state.down_cooldown.ready(now):
            ops = [
                ControlOp(ControlEventKind.SET_WEIGHT, sid, config.promote_weight)
                for sid in ramping
            ]
            applied = self._apply(ops, now)
            if applied:
                for sid in ramping:
                    state.drained_at.pop(sid, None)
                    self._note_direction(sid, +1, now)
                self.counters["undrains"] += len(ramping)
                state.up_cooldown.stamp(now)
            return
        # 2) Promote one pooled standby (drained-awaiting-park first:
        # pooled_ids preserves deployment order and a recently drained
        # standby sits earliest, with the warmest caches).
        pooled = pool.pooled_ids()
        if pooled and state.up_cooldown.ready(now) and state.down_cooldown.ready(now):
            candidate = pooled[0]
            pool.ensure_registered(candidate)
            applied = self._apply(
                [ControlOp(ControlEventKind.SET_WEIGHT, candidate, config.promote_weight)],
                now,
            )
            if applied:
                state.drained_at.pop(candidate, None)
                self._note_direction(candidate, +1, now)
                self.counters["promotions"] += 1
                state.up_cooldown.stamp(now)
            return
        # 3) Pool exhausted: protect an outlier member (its own telemetry
        # wait far above the zone mean — a sick replica dragging the tail).
        if config.outlier_wait_ratio > 0.0:
            self._protect_outlier(group_id, state, now)

    def _protect_outlier(self, group_id: str, state: _GroupState, now: float) -> None:
        config = self.config
        pool = self.pools[group_id]
        group = self.federation.replica_groups[group_id]
        wait, _shed, _slope = self._group_pressure(group_id)
        if wait <= 0.0:
            return
        rollup = self.reader.server_rollup(last=config.signal_windows)
        for server_id in group.server_ids:
            if server_id in pool.standby_ids or server_id in state.protected:
                continue
            member = rollup.get(server_id)
            if member is None:
                continue
            if member["mean_wait_ms"] < config.outlier_wait_ratio * wait:
                continue
            cooldown = state.member_cooldowns.setdefault(
                server_id, Cooldown(config.cooldown_seconds)
            )
            if not cooldown.ready(now):
                continue
            applied = self._apply([ControlOp(ControlEventKind.DRAIN, server_id)], now)
            if applied:
                state.protected[server_id] = True
                self._note_direction(server_id, -1, now)
                self.counters["protect_drains"] += 1
                cooldown.stamp(now)
            return

    def _scale_down(
        self, group_id: str, state: _GroupState, now: float, slope: float
    ) -> None:
        config = self.config
        pool = self.pools[group_id]
        # 1) Zone recovered: restore any protectively drained member first
        # (its pre-drain weight is remembered by the plane).
        for server_id in sorted(state.protected):
            cooldown = state.member_cooldowns.setdefault(
                server_id, Cooldown(config.cooldown_seconds)
            )
            if not cooldown.ready(now):
                continue
            applied = self._apply([ControlOp(ControlEventKind.UNDRAIN, server_id)], now)
            if applied:
                del state.protected[server_id]
                self._note_direction(server_id, +1, now)
                self.counters["protect_undrains"] += 1
                cooldown.stamp(now)
            return
        # 2) Ramp the most recently promoted serving standby down the
        # ladder — gradually, and faster when demand is ebbing steeply.
        serving = pool.serving_ids()
        if not serving:
            return
        if not (
            state.up_cooldown.ready(now)
            and state.down_cooldown.ready(now)
            and state.ramp_cooldown.ready(now)
        ):
            return
        candidate = serving[-1]
        weight = pool.weight_of(candidate)
        ladder = [w for w in config.ramp_weights if w < weight]
        if not ladder:
            ladder = [0]
        steps = 2 if slope <= config.slope_fast_per_s else 1
        targets = ladder[:steps]
        ops = [
            ControlOp(ControlEventKind.SET_WEIGHT, candidate, target)
            for target in targets
        ]
        applied = self._apply(ops, now)
        if applied:
            self._note_direction(candidate, -1, now)
            self.counters["ramp_steps"] += len(targets)
            if targets[-1] == 0:
                state.drained_at[candidate] = now
            state.ramp_cooldown.stamp(now)
            state.down_cooldown.stamp(now)

    def _park_due(self, group_id: str, now: float) -> None:
        """Deregister drained standbys whose park delay elapsed (not an
        SRV op: no client-visible weight changes, no cooldown stamp)."""
        state = self._states[group_id]
        pool = self.pools[group_id]
        due = [
            sid
            for sid, drained in sorted(state.drained_at.items())
            if now - drained >= self.config.park_delay_seconds
        ]
        for server_id in due:
            if pool.weight_of(server_id) == 0 and not pool.is_parked(server_id):
                pool.park(server_id)
                self.counters["parks"] += 1
            del state.drained_at[server_id]

    # ------------------------------------------------------------------
    # Actuation plumbing
    # ------------------------------------------------------------------
    def _apply(self, ops: list[ControlOp], now: float) -> int:
        """Issue one decision cycle's batch; returns applied-op count."""
        records = self.control.apply_batch(now, ops)
        applied = sum(1 for record in records if record.applied)
        rejected = len(records) - applied
        self.counters["actions"] += 1
        self.counters["ops_applied"] += applied
        self.counters["ops_rejected"] += rejected
        self.counters["weight_changes"] += applied
        return applied

    def _note_direction(self, server_id: str, direction: int, now: float) -> None:
        """Track per-server scale direction.  A *flap* — the oscillation
        the stability machinery exists to bound — is a direction reversal
        landing within a convergence window (``cooldown_seconds``) of the
        opposite action: the controller undid itself before clients could
        even converge on the first change.  A reversal after the window
        (a diurnal re-promotion for the next peak) is legitimate elasticity,
        not a flap."""
        previous = self._last_direction.get(server_id)
        if previous is not None:
            prev_direction, prev_at = previous
            if (
                direction != prev_direction
                and now - prev_at < self.config.cooldown_seconds
            ):
                self.counters["flaps"] += 1
        self._last_direction[server_id] = (direction, now)

    def _active_replicas(self) -> int:
        """Replicas currently serving across the managed groups:
        reachable, registered, positively weighted (the replica-seconds
        cost basis)."""
        federation = self.federation
        total = 0
        for group_id in self.pools:
            group = federation.replica_groups[group_id]
            for server_id in group.server_ids:
                if (
                    server_id in federation.servers
                    and server_id in federation.registry.registrations
                    and federation.srv_of(server_id)[1] > 0
                ):
                    total += 1
        return total
