"""Closed-loop autoscaling: telemetry roll-ups in, control-plane ops out.

This package completes the monitor→analyze→plan→execute loop the
federation grew toward: PR 8's telemetry pipeline gave it eyes
(demand heatmaps, zonal queue-wait/shed maps, SLO burn), and this package
acts on them.  The hard rule is the *observability boundary*: the
:class:`Autoscaler` reads only what the telemetry pipeline emitted — via
:class:`repro.telemetry.reader.TelemetryReader` — never the engine's
omniscient ``server_stats`` or the queue objects themselves, exactly as a
production controller only sees its monitoring system.

* :mod:`repro.autoscale.policy` — the decision machinery, kept pure and
  unit-testable: :class:`AutoscalerConfig` (thresholds, ramps, cooldowns),
  :class:`HysteresisGate` (consecutive-evaluation debouncing of the
  pressure signal), and :class:`Cooldown` (minimum spacing between
  actions).  Hysteresis + cooldown are what keep TTL-delayed client
  convergence (22–67 s measured in E15) from turning the loop into a
  weight oscillator: the controller must *not* react to the lag between
  issuing a weight change and clients converging to it.
* :mod:`repro.autoscale.warmpool` — :class:`WarmPool`: pre-registered
  zero-weight standby replicas attached to one replica group
  (``Federation.attach_warm_pool``), promoted by a pure weight change and
  retired by drain → deregister (``park``) back into the pool.
* :mod:`repro.autoscale.scaler` — :class:`Autoscaler`: the per-region
  control loop run at round seal via the engine's ``RoundObserver`` hook,
  issuing batched :class:`repro.control.ControlPlane` ops and accounting
  cost as replica-seconds.

Autoscaling is **off by default**: a
:class:`repro.workload.WorkloadConfig` without an ``autoscale`` config
runs byte-identically to a build without this package (the same
transparency discipline telemetry, faults, churn, and control follow).
"""

from repro.autoscale.policy import AutoscalerConfig, Cooldown, HysteresisGate
from repro.autoscale.scaler import Autoscaler
from repro.autoscale.warmpool import WarmPool

__all__ = [
    "Autoscaler",
    "AutoscalerConfig",
    "Cooldown",
    "HysteresisGate",
    "WarmPool",
]
