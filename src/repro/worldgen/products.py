"""Deterministic product catalogues for indoor store maps.

The grocery-store scenario (Section 2) revolves around finding a product —
"a particular flavor of seaweed" — on a specific shelf.  The catalogue
generator produces a reproducible inventory with categories, product names
and per-product keywords that the search services index.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

_CATEGORIES: dict[str, list[str]] = {
    "snacks": ["seaweed", "crackers", "trail mix", "rice cakes", "popcorn", "granola bars"],
    "produce": ["apples", "bananas", "spinach", "carrots", "avocado", "ginger"],
    "dairy": ["milk", "yogurt", "butter", "cheddar", "oat milk", "cream"],
    "bakery": ["sourdough", "bagels", "croissant", "baguette", "muffins", "rye bread"],
    "pantry": ["olive oil", "soy sauce", "pasta", "black beans", "rice", "miso paste"],
    "frozen": ["dumplings", "ice cream", "frozen peas", "pizza", "edamame", "berries"],
    "household": ["detergent", "paper towels", "sponges", "trash bags", "soap", "batteries"],
    "beverages": ["green tea", "coffee beans", "sparkling water", "orange juice", "kombucha", "cola"],
}

_VARIANTS = ["classic", "organic", "spicy", "family size", "low sodium", "premium", "wasabi", "original"]


@dataclass(frozen=True, slots=True)
class Product:
    """One stocked product."""

    sku: str
    name: str
    category: str
    keywords: tuple[str, ...]

    @property
    def search_text(self) -> str:
        return " ".join((self.name, self.category) + self.keywords)


def category_names() -> list[str]:
    """All product categories, in a stable order (used to name aisles)."""
    return list(_CATEGORIES)


def generate_catalog(product_count: int, seed: int = 0) -> list[Product]:
    """Generate ``product_count`` products spread over the categories.

    The catalogue is deterministic in ``seed`` and always contains at least
    one seaweed product so the paper's walkthrough query has a guaranteed
    answer.
    """
    if product_count < 1:
        raise ValueError("product_count must be >= 1")
    rng = random.Random(seed)
    products: list[Product] = []
    categories = category_names()

    # Guarantee the walkthrough product from Section 2.
    products.append(
        Product(
            sku="SKU-0000",
            name="wasabi seaweed snack",
            category="snacks",
            keywords=("seaweed", "wasabi", "snack", "nori"),
        )
    )

    index = 1
    while len(products) < product_count:
        category = categories[index % len(categories)]
        base = _CATEGORIES[category][index % len(_CATEGORIES[category])]
        variant = _VARIANTS[rng.randrange(len(_VARIANTS))]
        name = f"{variant} {base}"
        products.append(
            Product(
                sku=f"SKU-{index:04d}",
                name=name,
                category=category,
                keywords=tuple(sorted({base, variant.split()[0], category})),
            )
        )
        index += 1
    return products
