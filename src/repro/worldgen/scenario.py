"""Complete federated scenarios: a city, its stores and a campus, wired up.

A :class:`FederatedScenario` is the standard test-bed used by the examples,
tests and benchmarks: one outdoor city map server (the "world provider"),
several independently operated grocery-store map servers with indoor detail
and localization databases, optionally a campus map server with a restrictive
policy — all registered in one discovery DNS — plus a matching
:class:`repro.centralized.CentralizedMapSystem` that has ingested only the
data a centralized provider could realistically obtain (the outdoor map, and
optionally the indoor maps too, for ablations).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.centralized.system import CentralizedMapSystem
from repro.core.config import FederationConfig
from repro.core.federation import Federation
from repro.geometry.point import LatLng
from repro.mapserver.server import MapServer
from repro.simulation.lru import LruCache
from repro.worldgen.campus import CampusWorld, generate_campus
from repro.worldgen.indoor import IndoorWorld, generate_store
from repro.worldgen.outdoor import CityWorld, generate_city


@dataclass
class FederatedScenario:
    """A fully wired scenario: federation + centralized baseline + worlds."""

    federation: Federation
    centralized: CentralizedMapSystem
    city: CityWorld
    stores: list[IndoorWorld] = field(default_factory=list)
    campus: CampusWorld | None = None
    seed: int = 0

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def city_server(self) -> MapServer:
        assert self.federation.world_provider is not None
        return self.federation.world_provider

    def store_server(self, index: int = 0) -> MapServer:
        """The (first replica of the) map server for store ``index``."""
        name = self.stores[index].name
        server = self.federation.servers.get(name)
        if server is not None:
            return server
        group = self.federation.replica_groups.get(name)
        if group is None:
            return self.federation.servers[name]  # raise the original KeyError
        for server_id in group.server_ids:
            replica = self.federation.servers.get(server_id)
            if replica is not None:
                return replica
        raise KeyError(f"every replica of {name!r} is offline")

    def store_replica_ids(self, index: int = 0) -> tuple[str, ...]:
        """All server ids serving store ``index`` (one id without replication)."""
        name = self.stores[index].name
        group = self.federation.replica_groups.get(name)
        if group is not None:
            return group.server_ids
        return (name,)

    @property
    def campus_server(self) -> MapServer | None:
        if self.campus is None:
            return None
        return self.federation.servers.get(self.campus.name)

    def rng(self) -> random.Random:
        return random.Random(self.seed)


_world_memo: LruCache = LruCache(max_entries=16)
"""Generated worlds memoized (bounded LRU) by their full generation parameters.

Opt-in via ``build_scenario(reuse_worlds=True)``: sweeps that stand up many
federations over the *same* deterministic world (the E13 fleet benchmark
builds one per sweep point per cache setting) skip regenerating and
re-indexing identical geometry.  Callers that mutate maps must keep the
default, which generates private worlds."""


def _generate_worlds(
    store_count: int,
    include_campus: bool,
    city_rows: int,
    city_cols: int,
    products_per_store: int,
    seed: int,
) -> tuple[CityWorld, list[IndoorWorld], CampusWorld | None]:
    rng = random.Random(seed)
    city = generate_city(rows=city_rows, cols=city_cols, seed=seed)
    stores: list[IndoorWorld] = []
    for index in range(store_count):
        row = (index * 2 + 1) % max(1, city_rows - 1)
        col = (index * 3 + 1) % max(1, city_cols - 1)
        block_anchor = city.intersections[row][col].location
        store_anchor = block_anchor.destination(90.0, 35.0).destination(0.0, 25.0)
        store_name = f"store-{index}.maps.example"
        street_address = city.address_near(store_anchor)
        stores.append(
            generate_store(
                name=store_name,
                anchor=store_anchor,
                product_count=products_per_store,
                street_address=street_address,
                rotation_degrees=rng.uniform(-10.0, 10.0),
                seed=seed + index + 1,
            )
        )
    campus: CampusWorld | None = None
    if include_campus:
        campus_anchor = city.intersections[city_rows - 2][city_cols - 2].location.destination(90.0, 60.0)
        campus = generate_campus(anchor=campus_anchor, seed=seed + 100)
    return city, stores, campus


def build_scenario(
    store_count: int = 2,
    include_campus: bool = False,
    centralized_ingests_indoor: bool = False,
    city_rows: int = 6,
    city_cols: int = 6,
    products_per_store: int = 60,
    config: FederationConfig | None = None,
    seed: int = 0,
    reuse_worlds: bool = False,
    store_replicas: int = 1,
    store_replica_weights: tuple[int, ...] | None = None,
    store_replica_priorities: tuple[int, ...] | None = None,
) -> FederatedScenario:
    """Build the standard scenario used throughout the experiments.

    ``centralized_ingests_indoor`` models the ablation where organizations
    *do* hand their indoor maps to the centralized provider; the default
    (False) reflects the paper's premise that they will not.

    ``reuse_worlds`` shares the generated (immutable-by-convention) worlds
    between scenarios with identical generation parameters — sweeps that
    rebuild the same deterministic world many times opt in to skip the
    regeneration cost.

    ``store_replicas`` > 1 deploys each store as a replica group (the store
    name becomes the group id, server ids ``r<i>.<name>``): every replica
    advertises the same coverage, so clients can fail over between them
    under churn.  The city world provider is never replicated.
    ``store_replica_weights`` / ``store_replica_priorities`` configure the
    groups' per-replica RFC 2782 values (e.g. a warm standby at priority 1
    that sees traffic only when tier 0 is down).
    """
    if reuse_worlds:
        memo_key = (store_count, include_campus, city_rows, city_cols, products_per_store, seed)
        worlds = _world_memo.lookup(memo_key)
        if worlds is None:
            worlds = _generate_worlds(
                store_count, include_campus, city_rows, city_cols, products_per_store, seed
            )
            _world_memo.store(memo_key, worlds)
        city, stores, campus = worlds
    else:
        city, stores, campus = _generate_worlds(
            store_count, include_campus, city_rows, city_cols, products_per_store, seed
        )

    federation = Federation(config=config or FederationConfig())
    centralized = CentralizedMapSystem(network=federation.network)

    # Outdoor city — the world provider, also fully ingested centrally.
    federation.add_map_server(
        "city.maps.example",
        city.map_data,
        is_world_provider=True,
    )
    centralized.ingest(city.map_data)

    # Grocery stores scattered next to street intersections.
    if store_replicas < 1:
        raise ValueError("store_replicas must be >= 1")
    for store in stores:
        if store_replicas == 1:
            server = federation.add_map_server(store.name, store.map_data)
            store.equip_map_server(server)
        else:
            group = federation.add_replica_group(
                store.name,
                store.map_data,
                replica_count=store_replicas,
                weights=store_replica_weights,
                priorities=store_replica_priorities,
            )
            for server_id in group.server_ids:
                store.equip_map_server(federation.servers[server_id])
        if centralized_ingests_indoor:
            centralized.ingest(store.map_data)

    # Optional campus with the Section 5.3 policy applied.
    if campus is not None:
        federation.add_map_server(
            campus.name,
            campus.map_data,
            policy=campus.recommended_policy(),
        )
        if centralized_ingests_indoor:
            centralized.ingest(campus.map_data)

    centralized.preprocess()
    return FederatedScenario(
        federation=federation,
        centralized=centralized,
        city=city,
        stores=stores,
        campus=campus,
        seed=seed,
    )


def outdoor_point_near(scenario: FederatedScenario, store_index: int = 0, distance_meters: float = 150.0) -> LatLng:
    """A point on the street network roughly ``distance_meters`` from a store.

    Used as the "user standing on the sidewalk" origin of the Section 2
    walkthrough.
    """
    store = scenario.stores[store_index]
    entrance = store.entrance
    graph_vertex = scenario.city_server.routing_service.graph.nearest_vertex(
        entrance.destination(180.0, distance_meters)
    )
    return scenario.city_server.routing_service.graph.location(graph_vertex)
