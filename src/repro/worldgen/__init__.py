"""Synthetic world generation: cities, stores, campuses, products, scenarios."""

from repro.worldgen.campus import CampusWorld, generate_campus
from repro.worldgen.indoor import IMAGE_DESCRIPTOR_DIMENSIONS, IndoorWorld, generate_store
from repro.worldgen.outdoor import CityWorld, generate_city
from repro.worldgen.products import Product, category_names, generate_catalog
from repro.worldgen.scenario import FederatedScenario, build_scenario, outdoor_point_near

__all__ = [
    "CampusWorld",
    "CityWorld",
    "FederatedScenario",
    "IMAGE_DESCRIPTOR_DIMENSIONS",
    "IndoorWorld",
    "Product",
    "build_scenario",
    "category_names",
    "generate_campus",
    "generate_catalog",
    "generate_city",
    "generate_store",
    "outdoor_point_near",
]
