"""Synthetic outdoor city maps.

The outdoor world stands in for the public data a large provider (Google,
OSM) would hold: a street grid with named streets, addressed buildings and a
handful of public points of interest.  The city map is the "world provider"
map in federated scenarios and the bulk of the centralized baseline's
database.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.geometry.bbox import BoundingBox
from repro.geometry.point import LatLng
from repro.geometry.polygon import Polygon
from repro.osm.builder import MapBuilder
from repro.osm.elements import (
    TAG_AMENITY,
    TAG_CITY,
    TAG_HIGHWAY,
    TAG_HOUSE_NUMBER,
    TAG_NAME,
    TAG_STREET,
    Node,
)
from repro.osm.mapdata import MapData

_STREET_NAMES = [
    "Forbes", "Fifth", "Craig", "Murray", "Negley", "Shady", "Walnut", "Ellsworth",
    "Butler", "Penn", "Liberty", "Baum", "Centre", "Highland", "Aiken", "Atwood",
]
_AVENUE_NAMES = [
    "Oak", "Maple", "Cedar", "Birch", "Spruce", "Willow", "Chestnut", "Elm",
    "Juniper", "Laurel", "Magnolia", "Poplar", "Sycamore", "Hawthorn", "Linden", "Alder",
]
_POI_KINDS = [
    ("restaurant", "amenity"),
    ("cafe", "amenity"),
    ("parking", "amenity"),
    ("pharmacy", "amenity"),
    ("theater", "amenity"),
    ("library", "amenity"),
]


@dataclass
class CityWorld:
    """A generated city: its map plus handles used by scenarios and tests."""

    map_data: MapData
    bounds: BoundingBox
    intersections: list[list[Node]]
    street_names: list[str]
    avenue_names: list[str]
    building_addresses: dict[str, LatLng] = field(default_factory=dict)
    poi_locations: dict[str, LatLng] = field(default_factory=dict)
    city_name: str = "Simville"

    def random_street_point(self, rng: random.Random) -> LatLng:
        """A random intersection location (always on the road graph)."""
        row = rng.randrange(len(self.intersections))
        col = rng.randrange(len(self.intersections[0]))
        return self.intersections[row][col].location

    def address_near(self, location: LatLng) -> str | None:
        """The building address closest to ``location`` (None if no buildings)."""
        best = None
        best_distance = float("inf")
        for address, addr_location in self.building_addresses.items():
            distance = location.distance_to(addr_location)
            if distance < best_distance:
                best_distance = distance
                best = address
        return best


def generate_city(
    origin: LatLng = LatLng(40.4400, -79.9600),
    rows: int = 8,
    cols: int = 8,
    block_meters: float = 120.0,
    buildings_per_block: int = 2,
    poi_count: int = 12,
    seed: int = 0,
    city_name: str = "Simville",
    operator: str = "city-maps",
) -> CityWorld:
    """Generate a grid city anchored at ``origin``.

    ``rows`` x ``cols`` intersections are laid out every ``block_meters``;
    east-west streets and north-south avenues connect them; buildings with
    house numbers line the streets and a few public POIs are scattered on the
    blocks.
    """
    if rows < 2 or cols < 2:
        raise ValueError("a city needs at least a 2x2 grid of intersections")
    rng = random.Random(seed)
    builder = MapBuilder(name=f"{city_name} city map", operator=operator)

    street_names = [_STREET_NAMES[i % len(_STREET_NAMES)] + " Street" for i in range(rows)]
    avenue_names = [_AVENUE_NAMES[j % len(_AVENUE_NAMES)] + " Avenue" for j in range(cols)]

    # Intersection nodes.
    intersections: list[list[Node]] = []
    for i in range(rows):
        row_nodes: list[Node] = []
        for j in range(cols):
            location = origin.destination(0.0, i * block_meters).destination(90.0, j * block_meters)
            node = builder.add_node(
                location,
                {
                    TAG_NAME: f"{street_names[i]} & {avenue_names[j]}",
                    "junction": "yes",
                    TAG_CITY: city_name,
                },
            )
            row_nodes.append(node)
        intersections.append(row_nodes)

    # Streets (east-west) and avenues (north-south).
    for i in range(rows):
        builder.add_way(intersections[i], {TAG_HIGHWAY: "residential", TAG_NAME: street_names[i]})
    for j in range(cols):
        column_nodes = [intersections[i][j] for i in range(rows)]
        builder.add_way(column_nodes, {TAG_HIGHWAY: "residential", TAG_NAME: avenue_names[j]})

    # Buildings with addresses along each street segment.
    building_addresses: dict[str, LatLng] = {}
    house_number = 100
    for i in range(rows):
        for j in range(cols - 1):
            segment_start = intersections[i][j].location
            for b in range(buildings_per_block):
                offset_along = (b + 1) * block_meters / (buildings_per_block + 1)
                side = 1.0 if (i + j + b) % 2 == 0 else -1.0
                location = segment_start.destination(90.0, offset_along).destination(0.0, side * 18.0)
                address = f"{house_number} {street_names[i]}"
                builder.add_node(
                    location,
                    {
                        TAG_HOUSE_NUMBER: str(house_number),
                        TAG_STREET: street_names[i],
                        TAG_CITY: city_name,
                        "building": "yes",
                        TAG_NAME: f"{house_number} {street_names[i]}",
                    },
                )
                building_addresses[address] = location
                house_number += 2

    # Public POIs.
    poi_locations: dict[str, LatLng] = {}
    for p in range(poi_count):
        kind, tag_key = _POI_KINDS[p % len(_POI_KINDS)]
        i = rng.randrange(rows - 1)
        j = rng.randrange(cols - 1)
        base = intersections[i][j].location
        location = base.destination(90.0, rng.uniform(20.0, block_meters - 20.0)).destination(
            0.0, rng.uniform(20.0, block_meters - 20.0)
        )
        name = f"{city_name} {kind.title()} {p + 1}"
        builder.add_node(
            location,
            {TAG_NAME: name, TAG_AMENITY: kind, TAG_CITY: city_name},
        )
        poi_locations[name] = location

    map_data = builder.build()
    bounds = map_data.bounding_box().expanded(40.0)
    map_data.set_coverage(Polygon.from_bbox(bounds))
    return CityWorld(
        map_data=map_data,
        bounds=bounds,
        intersections=intersections,
        street_names=street_names,
        avenue_names=avenue_names,
        building_addresses=building_addresses,
        poi_locations=poi_locations,
        city_name=city_name,
    )
