"""Synthetic indoor store maps with localization survey data.

An :class:`IndoorWorld` is the kind of map the paper argues organizations
will only serve themselves (Section 1, Section 2): a store surveyed in its
own local frame, with aisles, shelves stocked with products, an entrance
connecting to the street, installed beacons, image fingerprints captured on a
survey grid, and fiducial tags at known positions.

Besides the map itself, the generator produces everything a map server needs
to *answer* localization requests (the fingerprint databases) and everything
an experiment needs to *issue* them (ground-truth cue synthesis with
controllable noise).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

import numpy as np

from repro.geometry.point import LatLng, LocalPoint
from repro.geometry.polygon import Polygon
from repro.geometry.projection import LocalProjection
from repro.localization.cues import (
    BeaconCue,
    BeaconReading,
    CueBundle,
    FiducialCue,
    GnssCue,
    ImageCue,
)
from repro.localization.fingerprint import (
    BEACON_MIN_RSSI_DBM,
    BeaconFingerprint,
    BeaconFingerprintDatabase,
    FiducialRegistry,
    ImageFingerprint,
    ImageFingerprintDatabase,
    rssi_at_distance,
)
from repro.mapserver.server import MapServer
from repro.osm.builder import MapBuilder
from repro.osm.elements import (
    TAG_ADDRESS,
    TAG_AMENITY,
    TAG_INDOOR,
    TAG_NAME,
    TAG_PRIVACY,
    TAG_PRODUCT,
    TAG_SHOP,
)
from repro.osm.mapdata import MapData
from repro.worldgen.products import Product, generate_catalog

IMAGE_DESCRIPTOR_DIMENSIONS = 16
"""Length of the synthetic visual descriptors."""


@dataclass
class IndoorWorld:
    """A generated store: map, frame, inventory and localization survey data."""

    name: str
    map_data: MapData
    projection: LocalProjection
    entrance: LatLng
    entrance_local: LocalPoint
    width_meters: float
    depth_meters: float
    beacons: dict[str, LocalPoint] = field(default_factory=dict)
    products: list[Product] = field(default_factory=list)
    product_locations: dict[str, LatLng] = field(default_factory=dict)
    beacon_db: BeaconFingerprintDatabase = field(default_factory=BeaconFingerprintDatabase)
    image_db: ImageFingerprintDatabase = field(default_factory=ImageFingerprintDatabase)
    fiducials: FiducialRegistry = field(default_factory=FiducialRegistry)
    descriptor_seed: int = 0

    # ------------------------------------------------------------------
    # Coordinate helpers
    # ------------------------------------------------------------------
    def local_to_geographic(self, point: LocalPoint) -> LatLng:
        return self.projection.to_geographic(point)

    def geographic_to_local(self, point: LatLng) -> LocalPoint:
        return self.projection.to_local(point)

    def contains_local(self, point: LocalPoint) -> bool:
        return 0.0 <= point.x <= self.width_meters and 0.0 <= point.y <= self.depth_meters

    def random_interior_point(self, rng: random.Random) -> LocalPoint:
        """A random point inside the store, in the store's local frame."""
        return LocalPoint(
            rng.uniform(1.0, self.width_meters - 1.0),
            rng.uniform(1.0, self.depth_meters - 1.0),
            self.projection.frame,
        )

    # ------------------------------------------------------------------
    # Cue synthesis (ground truth → what a client device would sense)
    # ------------------------------------------------------------------
    def image_descriptor_at(self, point: LocalPoint, noise: float = 0.0, rng: random.Random | None = None) -> tuple[float, ...]:
        """A deterministic location-dependent descriptor plus optional noise.

        The descriptor is a set of smooth sinusoidal functions of the local
        coordinates, so nearby positions have similar descriptors — the
        property image-retrieval localization relies on.
        """
        generator = np.random.default_rng(self.descriptor_seed)
        frequencies = generator.uniform(0.05, 0.4, size=(IMAGE_DESCRIPTOR_DIMENSIONS, 2))
        phases = generator.uniform(0.0, 2.0 * math.pi, size=IMAGE_DESCRIPTOR_DIMENSIONS)
        values = [
            math.sin(frequencies[d, 0] * point.x + frequencies[d, 1] * point.y + phases[d])
            for d in range(IMAGE_DESCRIPTOR_DIMENSIONS)
        ]
        if noise > 0.0:
            noise_rng = rng or random.Random(0)
            values = [value + noise_rng.gauss(0.0, noise) for value in values]
        return tuple(values)

    def sense_cues(
        self,
        true_position: LocalPoint,
        rng: random.Random,
        gnss_error_meters: float = 12.0,
        rssi_noise_db: float = 3.0,
        image_noise: float = 0.1,
        include_fiducial: bool = False,
    ) -> CueBundle:
        """What a device standing at ``true_position`` would sense.

        The GNSS cue is the true position corrupted by a large outdoor-grade
        error (indoors GPS is poor); beacon readings follow the path-loss
        model plus noise; the image cue is the local descriptor plus noise.
        """
        true_geo = self.local_to_geographic(true_position)

        gnss_bearing = rng.uniform(0.0, 360.0)
        gnss_offset = abs(rng.gauss(0.0, gnss_error_meters))
        gnss = GnssCue(true_geo.destination(gnss_bearing, gnss_offset), accuracy_meters=gnss_error_meters)

        readings = []
        for beacon_id, beacon_position in self.beacons.items():
            distance = true_position.distance_to(beacon_position)
            rssi = rssi_at_distance(distance) + rng.gauss(0.0, rssi_noise_db)
            if rssi >= BEACON_MIN_RSSI_DBM:
                readings.append(BeaconReading(beacon_id, rssi))
        beacons = BeaconCue(tuple(readings)) if readings else None

        image = ImageCue(self.image_descriptor_at(true_position, noise=image_noise, rng=rng))

        fiducial_cues: list[FiducialCue] = []
        if include_fiducial and self.fiducials.tags:
            tag_id, tag_location = next(iter(sorted(self.fiducials.tags.items())))
            # The camera-to-tag offset is observed in the device's (gravity +
            # compass aligned) frame, i.e. geographic east/north meters.
            east = tag_location.distance_to(
                LatLng(tag_location.latitude, true_geo.longitude)
            ) * (1.0 if true_geo.longitude >= tag_location.longitude else -1.0)
            north = tag_location.distance_to(
                LatLng(true_geo.latitude, tag_location.longitude)
            ) * (1.0 if true_geo.latitude >= tag_location.latitude else -1.0)
            fiducial_cues.append(
                FiducialCue(tag_id=tag_id, offset_east_meters=east, offset_north_meters=north)
            )

        return CueBundle(gnss=gnss, beacons=beacons, image=image, fiducials=fiducial_cues)

    # ------------------------------------------------------------------
    # Map server wiring
    # ------------------------------------------------------------------
    def equip_map_server(self, server: MapServer) -> None:
        """Install this store's fingerprint databases on its map server."""
        server.localization_service.beacon_db = self.beacon_db
        server.localization_service.image_db = self.image_db
        server.localization_service.fiducials = self.fiducials


def generate_store(
    name: str,
    anchor: LatLng,
    width_meters: float = 40.0,
    depth_meters: float = 30.0,
    aisle_count: int = 5,
    shelves_per_aisle: int = 6,
    product_count: int = 60,
    beacon_count: int = 6,
    rotation_degrees: float = 7.0,
    survey_grid_meters: float = 3.0,
    private_back_room: bool = True,
    street_address: str | None = None,
    seed: int = 0,
    operator: str | None = None,
) -> IndoorWorld:
    """Generate a grocery store anchored near ``anchor``.

    ``rotation_degrees`` models the imperfect alignment of the store's local
    frame with true north (Section 3: indoor maps are hard to georeference).
    The store entrance sits on the south wall and is the natural hand-over
    point to the outdoor map.
    """
    if aisle_count < 1 or shelves_per_aisle < 1:
        raise ValueError("a store needs at least one aisle with one shelf")
    rng = random.Random(seed)
    frame = f"{name}-frame"
    projection = LocalProjection(anchor=anchor, rotation_degrees=rotation_degrees, frame=frame)
    builder = MapBuilder(
        name=name,
        operator=operator or name,
        fidelity="3d",
        coordinate_frame=frame,
        projection=projection,
    )

    # Entrance on the south wall, midway along the width.
    entrance_local = LocalPoint(width_meters / 2.0, 0.0, frame)
    entrance_node = builder.add_local_node(
        entrance_local,
        {
            TAG_NAME: f"{name} entrance",
            TAG_INDOOR: "door",
            "entrance": "main",
            TAG_SHOP: "supermarket",
            **({TAG_ADDRESS: street_address} if street_address else {}),
        },
    )

    # A central corridor runs north from the entrance; aisles branch east-west.
    corridor_top = LocalPoint(width_meters / 2.0, depth_meters - 2.0, frame)
    corridor_nodes = [entrance_node]
    aisle_spacing = (depth_meters - 6.0) / max(1, aisle_count)
    catalog = generate_catalog(product_count, seed=seed)
    products_iter = iter(catalog)
    product_locations: dict[str, LatLng] = {}

    for aisle_index in range(aisle_count):
        y = 4.0 + aisle_index * aisle_spacing
        junction = builder.add_local_node(
            LocalPoint(width_meters / 2.0, y, frame),
            {TAG_INDOOR: "corridor", TAG_NAME: f"{name} aisle {aisle_index + 1} junction"},
        )
        corridor_nodes.append(junction)

        # Aisle way: west end — junction — east end.
        west_end = builder.add_local_node(
            LocalPoint(2.0, y, frame), {TAG_INDOOR: "corridor"}
        )
        east_end = builder.add_local_node(
            LocalPoint(width_meters - 2.0, y, frame), {TAG_INDOOR: "corridor"}
        )
        builder.add_way(
            [west_end, junction, east_end],
            {"aisle_path": "yes", TAG_NAME: f"{name} aisle {aisle_index + 1}"},
        )

        # Shelves along the aisle, stocked with products.
        for shelf_index in range(shelves_per_aisle):
            shelf_x = 3.0 + (width_meters - 6.0) * shelf_index / max(1, shelves_per_aisle - 1)
            shelf_offset = 1.2 if shelf_index % 2 == 0 else -1.2
            shelf_local = LocalPoint(shelf_x, y + shelf_offset, frame)
            product = next(products_iter, None)
            tags = {
                TAG_INDOOR: "shelf",
                TAG_NAME: f"{name} aisle {aisle_index + 1} shelf {shelf_index + 1}",
            }
            if product is not None:
                tags[TAG_PRODUCT] = product.name
                tags["sku"] = product.sku
                tags["category"] = product.category
                tags["keywords"] = " ".join(product.keywords)
            shelf_node = builder.add_local_node(shelf_local, tags)
            if product is not None:
                product_locations[product.name] = shelf_node.location

    corridor_end = builder.add_local_node(corridor_top, {TAG_INDOOR: "corridor"})
    corridor_nodes.append(corridor_end)
    builder.add_way(corridor_nodes, {"indoor_path": "yes", TAG_NAME: f"{name} main corridor"})

    # Checkout / customer service POIs.
    builder.add_local_node(
        LocalPoint(width_meters / 2.0 - 5.0, 2.0, frame),
        {TAG_NAME: f"{name} checkout", TAG_AMENITY: "checkout", TAG_INDOOR: "area"},
    )

    if private_back_room:
        builder.add_local_node(
            LocalPoint(width_meters - 3.0, depth_meters - 3.0, frame),
            {
                TAG_NAME: f"{name} stock room",
                TAG_INDOOR: "room",
                TAG_PRIVACY: "private",
            },
        )

    map_data = builder.build()

    # Coverage polygon: the store footprint (in geographic coordinates).
    corners_local = [
        LocalPoint(0.0, 0.0, frame),
        LocalPoint(width_meters, 0.0, frame),
        LocalPoint(width_meters, depth_meters, frame),
        LocalPoint(0.0, depth_meters, frame),
    ]
    footprint = Polygon([projection.to_geographic(corner) for corner in corners_local])
    map_data.set_coverage(footprint)

    world = IndoorWorld(
        name=name,
        map_data=map_data,
        projection=projection,
        entrance=entrance_node.location,
        entrance_local=entrance_local,
        width_meters=width_meters,
        depth_meters=depth_meters,
        products=catalog,
        product_locations=product_locations,
        descriptor_seed=seed,
    )

    _install_beacons(world, beacon_count, rng)
    _survey_fingerprints(world, survey_grid_meters)
    _install_fiducials(world)
    return world


def _install_beacons(world: IndoorWorld, beacon_count: int, rng: random.Random) -> None:
    """Place beacons roughly uniformly through the store."""
    for index in range(beacon_count):
        position = LocalPoint(
            rng.uniform(2.0, world.width_meters - 2.0),
            rng.uniform(2.0, world.depth_meters - 2.0),
            world.projection.frame,
        )
        world.beacons[f"{world.name}-beacon-{index}"] = position


def _survey_fingerprints(world: IndoorWorld, grid_meters: float) -> None:
    """Survey beacon and image fingerprints on a regular grid."""
    x = 1.0
    while x < world.width_meters:
        y = 1.0
        while y < world.depth_meters:
            point = LocalPoint(x, y, world.projection.frame)
            geographic = world.local_to_geographic(point)

            rssi = {}
            for beacon_id, beacon_position in world.beacons.items():
                value = rssi_at_distance(point.distance_to(beacon_position))
                if value >= BEACON_MIN_RSSI_DBM:
                    rssi[beacon_id] = value
            if rssi:
                world.beacon_db.add(BeaconFingerprint(geographic, rssi))

            world.image_db.add(
                ImageFingerprint(geographic, world.image_descriptor_at(point))
            )
            y += grid_meters
        x += grid_meters


def _install_fiducials(world: IndoorWorld) -> None:
    """Place fiducial tags at the entrance and the far corner."""
    entrance_geo = world.local_to_geographic(world.entrance_local)
    far_corner = world.local_to_geographic(
        LocalPoint(world.width_meters - 2.0, world.depth_meters - 2.0, world.projection.frame)
    )
    world.fiducials.add(f"{world.name}-tag-entrance", entrance_geo)
    world.fiducials.add(f"{world.name}-tag-back", far_corner)
