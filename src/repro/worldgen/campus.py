"""Synthetic university campus maps.

The campus is the paper's running example for the security/privacy model
(Section 5.3): a map server that serves fine-grained indoor data only to
principals authenticated with the university's email domain, and localization
only to the campus navigation application.  The generator produces a campus
map with public footpaths, buildings, and room-level detail tagged private.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.geometry.point import LatLng
from repro.geometry.polygon import Polygon
from repro.mapserver.policy import AccessPolicy, ServiceName
from repro.osm.builder import MapBuilder
from repro.osm.elements import (
    TAG_AMENITY,
    TAG_BUILDING,
    TAG_INDOOR,
    TAG_NAME,
    TAG_PRIVACY,
)
from repro.osm.mapdata import MapData

_BUILDING_NAMES = [
    "Gates Hall", "Newell Hall", "Wean Hall", "Porter Hall", "Baker Hall",
    "Doherty Hall", "Hamerschlag Hall", "Scaife Hall",
]
_ROOM_KINDS = ["lecture hall", "lab", "office", "seminar room", "lounge"]


@dataclass
class CampusWorld:
    """A generated campus: its map and the identities used by its policy."""

    name: str
    map_data: MapData
    email_domain: str
    navigation_app_id: str
    building_locations: dict[str, LatLng] = field(default_factory=dict)
    room_locations: dict[str, LatLng] = field(default_factory=dict)
    private_room_count: int = 0

    def recommended_policy(self) -> AccessPolicy:
        """The access policy Section 5.3 describes for a university map server.

        * Search/geocode (fine-grained data) restricted to the campus email
          domain — user-level control.
        * Localization restricted to the campus navigation application —
          application-level control.
        * Tiles left public — service-level control (everyone may *view* the
          campus outline).
        * Room-level nodes tagged private are only visible to campus users.
        """
        policy = AccessPolicy()
        policy.restrict_to_domain(ServiceName.SEARCH, self.email_domain)
        policy.restrict_to_domain(ServiceName.GEOCODE, self.email_domain)
        policy.restrict_to_application(ServiceName.LOCALIZATION, self.navigation_app_id)
        policy.private_data_domains.add(self.email_domain)
        return policy


def generate_campus(
    name: str = "State University",
    anchor: LatLng = LatLng(40.4430, -79.9440),
    building_count: int = 4,
    rooms_per_building: int = 6,
    campus_extent_meters: float = 400.0,
    email_domain: str = "campus.edu",
    navigation_app_id: str = "campus-nav",
    seed: int = 0,
) -> CampusWorld:
    """Generate a campus map anchored at ``anchor``."""
    if building_count < 1:
        raise ValueError("a campus needs at least one building")
    rng = random.Random(seed)
    builder = MapBuilder(name=f"{name} map", operator=name, fidelity="3d")

    # A quad footpath loop plus spurs to each building.
    quad_corners = [
        anchor,
        anchor.destination(90.0, campus_extent_meters),
        anchor.destination(90.0, campus_extent_meters).destination(0.0, campus_extent_meters),
        anchor.destination(0.0, campus_extent_meters),
    ]
    corner_nodes = [
        builder.add_node(corner, {TAG_NAME: f"{name} quad corner {i + 1}"})
        for i, corner in enumerate(quad_corners)
    ]
    builder.add_way(corner_nodes + [corner_nodes[0]], {"highway": "footway", TAG_NAME: f"{name} quad loop"})

    building_locations: dict[str, LatLng] = {}
    room_locations: dict[str, LatLng] = {}
    private_room_count = 0

    for b in range(building_count):
        building_name = _BUILDING_NAMES[b % len(_BUILDING_NAMES)]
        building_location = anchor.destination(90.0, rng.uniform(40.0, campus_extent_meters - 40.0)).destination(
            0.0, rng.uniform(40.0, campus_extent_meters - 40.0)
        )
        entrance = builder.add_node(
            building_location,
            {TAG_NAME: building_name, TAG_BUILDING: "university", "entrance": "main"},
        )
        building_locations[building_name] = building_location

        # Spur footpath from the nearest quad corner to the building entrance.
        nearest_corner = min(corner_nodes, key=lambda n: n.location.distance_to(building_location))
        builder.add_way([nearest_corner, entrance], {"highway": "footway"})

        # An indoor corridor with rooms; room detail is private.
        corridor_nodes = [entrance]
        for r in range(rooms_per_building):
            room_location = building_location.destination(90.0, 8.0 * (r + 1)).destination(0.0, 6.0)
            corridor_point = builder.add_node(
                building_location.destination(90.0, 8.0 * (r + 1)),
                {TAG_INDOOR: "corridor"},
            )
            corridor_nodes.append(corridor_point)
            kind = _ROOM_KINDS[r % len(_ROOM_KINDS)]
            room_name = f"{building_name} {100 + r} ({kind})"
            builder.add_node(
                room_location,
                {
                    TAG_NAME: room_name,
                    TAG_INDOOR: "room",
                    TAG_AMENITY: kind.replace(" ", "_"),
                    TAG_PRIVACY: "private",
                },
            )
            room_locations[room_name] = room_location
            private_room_count += 1
        builder.add_way(corridor_nodes, {"indoor_path": "yes", TAG_NAME: f"{building_name} corridor"})

    map_data = builder.build()
    map_data.set_coverage(Polygon.from_bbox(map_data.bounding_box().expanded(30.0)))
    return CampusWorld(
        name=name,
        map_data=map_data,
        email_domain=email_domain,
        navigation_app_id=navigation_app_id,
        building_locations=building_locations,
        room_locations=room_locations,
        private_room_count=private_room_count,
    )
