"""The telemetry pipeline: windowed emission → bounded retention → queries.

The workload engine drives a :class:`TelemetryPipeline` through three
verbs, all at round boundaries (the same granularity at which churn,
control, and faults land):

* :meth:`TelemetryPipeline.record_request` — one client request's
  telemetry (covering cell, region, kind, latency, weight, outcome),
  called from the request path while a round runs;
* :meth:`TelemetryPipeline.observe_servers` — cumulative server-queue
  frames, diffed internally into per-window deltas (phantom cohort
  weights ride the queue's own accounting, so batch-charged load is
  visible per window too);
* :meth:`TelemetryPipeline.flush` — the round-boundary hook: annotates
  the open window with the fault families currently in force and seals it
  once the configured width has elapsed.  Windows therefore close at the
  first round boundary at or after ``window_seconds`` — the engine's
  round-granularity semantic, same as every other tape.

Retention is bounded: once more than ``max_windows`` windows are held,
adjacent pairs are merged (halving the count, doubling each survivor's
span) — a million-client, thousand-round run keeps O(max_windows × keys)
memory and produces bounded output, at coarser temporal resolution for the
oldest data.  All queries (heatmaps, per-cell percentiles, zonal maps,
SLO burn) run over whatever windows survived.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.telemetry.slo import SLOConfig, alert_windows, burn_series
from repro.telemetry.spatial import (
    cell_percentiles,
    demand_heatmap,
    server_zonal,
)
from repro.telemetry.windows import ServerWindowStats, TelemetryWindow


@dataclass(frozen=True)
class TelemetryConfig:
    """Tunables of the telemetry pipeline for one run."""

    window_seconds: float = 60.0
    """Target emission-window width (simulated seconds).  Windows seal at
    the first round boundary at or after this much time has accumulated."""
    cell_level: int = 18
    """Cell level request records are keyed at (the finest level any query
    can roll up from; ~75 m of latitude — sub-building at city scale)."""
    heatmap_levels: tuple[int, ...] = (14, 16, 18)
    """Cell levels :meth:`TelemetryPipeline.demand_heatmap` reports."""
    max_windows: int = 64
    """Retention bound: beyond this, adjacent windows merge pairwise."""
    slo: SLOConfig = field(default_factory=SLOConfig)

    def __post_init__(self) -> None:
        if self.window_seconds <= 0.0:
            raise ValueError("telemetry window width must be positive")
        if not (0 <= self.cell_level <= 30):
            raise ValueError("cell level must be in [0, 30]")
        if any(level < 0 or level > 30 for level in self.heatmap_levels):
            raise ValueError("heatmap levels must be in [0, 30]")
        if self.max_windows < 2:
            raise ValueError("retention needs at least two windows")


_FRAME_FIELDS = ("arrivals", "served", "dropped", "wait_ms", "busy_ms")

_GAUGE_FIELDS = ("workers",)
"""Frame fields carried as gauges: the latest value is kept per window
instead of diffing against the baseline (diffing a constant would yield 0)."""


@dataclass
class TelemetryPipeline:
    """Collects windowed telemetry for one run and answers roll-up queries."""

    config: TelemetryConfig = field(default_factory=TelemetryConfig)
    server_cells: dict[str, tuple[str, ...]] = field(default_factory=dict)
    """Server id → covering-cell tokens its discovery registration
    advertises (the zones :meth:`server_zonal` attributes queue load to)."""
    windows: list[TelemetryWindow] = field(default_factory=list)
    downsample_merges: int = 0
    """Pairwise-merge passes retention ran (each halves the window count)."""
    records: float = 0.0
    """Weighted request records emitted over the whole run."""
    _open: TelemetryWindow | None = field(default=None, repr=False)
    _next_index: int = 0
    _server_baseline: dict[str, dict[str, float]] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    # Emission (engine-facing)
    # ------------------------------------------------------------------
    def begin(
        self, now_seconds: float, frames: Mapping[str, dict[str, object]] | None = None
    ) -> None:
        """Open the first window; idempotent so repeated runs don't reset.

        ``frames`` primes the per-server diff baselines, so queue activity
        that predates the run is never attributed to the first window.
        """
        if self._open is None:
            self._open = TelemetryWindow(
                index=self._next_index, start_seconds=now_seconds, end_seconds=now_seconds
            )
            self._next_index += 1
            if frames:
                for server_id in sorted(frames):
                    self._store_baseline(server_id, frames[server_id])

    def _store_baseline(self, server_id: str, frame: Mapping[str, object]) -> None:
        kinds: dict[str, float] = dict(frame.get("kinds", {}))
        self._server_baseline[server_id] = {
            **{name: float(frame.get(name, 0.0)) for name in _FRAME_FIELDS},
            "kinds": {kind: float(count) for kind, count in kinds.items()},
        }

    def record_request(
        self,
        cell: str,
        region: int,
        kind: str,
        latency_ms: float,
        weight: float = 1.0,
        ok: bool = True,
        degraded: bool = False,
    ) -> None:
        """Record one client request (weighted: a cohort tracer records on
        behalf of its whole phantom share)."""
        if self._open is None:
            raise RuntimeError("telemetry pipeline used before begin()")
        slow = ok and latency_ms > self.config.slo.latency_ms
        self._open.record(cell, region, kind, latency_ms, weight, ok, degraded, slow)
        self.records += weight

    def observe_servers(self, frames: Mapping[str, dict[str, object]]) -> None:
        """Fold cumulative server-queue frames into the open window.

        Frames are cumulative (the queue's lifetime accounting); the
        pipeline keeps the previous frame per server and attributes only
        the delta to the open window, so the queue hot path stays untouched
        by telemetry.
        """
        if self._open is None:
            raise RuntimeError("telemetry pipeline used before begin()")
        for server_id in sorted(frames):
            frame = frames[server_id]
            baseline = self._server_baseline.get(server_id, {})
            delta = ServerWindowStats()
            for name in _FRAME_FIELDS:
                value = float(frame.get(name, 0.0)) - float(baseline.get(name, 0.0))
                setattr(delta, name, value)
            for name in _GAUGE_FIELDS:
                setattr(delta, name, float(frame.get(name, 0.0)))
            kinds: dict[str, float] = dict(frame.get("kinds", {}))
            base_kinds: dict[str, float] = baseline.get("kinds", {})
            for kind in sorted(kinds):
                kind_delta = float(kinds[kind]) - float(base_kinds.get(kind, 0.0))
                if kind_delta:
                    delta.kinds[kind] = kind_delta
            self._store_baseline(server_id, frame)
            if delta.arrivals or delta.served or delta.dropped or delta.busy_ms:
                window_stats = self._open.servers.get(server_id)
                if window_stats is None:
                    self._open.servers[server_id] = delta
                else:
                    window_stats.merge_from(delta)

    def flush(self, now_seconds: float, faults_active: tuple[str, ...] = ()) -> None:
        """Round-boundary hook: annotate faults, seal the window when due."""
        if self._open is None:
            raise RuntimeError("telemetry pipeline used before begin()")
        if faults_active:
            self._open.faults_active = tuple(
                sorted(set(self._open.faults_active) | set(faults_active))
            )
        if now_seconds >= self._open.start_seconds + self.config.window_seconds:
            self._seal(now_seconds)

    def finalize(self, now_seconds: float) -> None:
        """Seal a non-empty trailing partial window at end of run."""
        if self._open is None:
            return
        if self._open.cells or self._open.servers or self._open.faults_active:
            self._seal(now_seconds)

    def _seal(self, now_seconds: float) -> None:
        assert self._open is not None
        self._open.end_seconds = now_seconds
        self.windows.append(self._open)
        self._open = TelemetryWindow(
            index=self._next_index, start_seconds=now_seconds, end_seconds=now_seconds
        )
        self._next_index += 1
        while len(self.windows) > self.config.max_windows:
            merged: list[TelemetryWindow] = []
            for position in range(0, len(self.windows) - 1, 2):
                first, second = self.windows[position], self.windows[position + 1]
                first.merge_from(second)
                merged.append(first)
            if len(self.windows) % 2:
                merged.append(self.windows[-1])
            self.windows = merged
            self.downsample_merges += 1

    # ------------------------------------------------------------------
    # Queries (post-run)
    # ------------------------------------------------------------------
    def demand_heatmap(self, levels: tuple[int, ...] | None = None) -> dict[int, dict[str, float]]:
        """Weighted demand per cell per level (default: configured levels)."""
        return demand_heatmap(self.windows, levels or self.config.heatmap_levels)

    def cell_rollup(self, level: int | None = None) -> dict[str, dict[str, float]]:
        """Per-cell demand + p50/p95 at one level (default: finest)."""
        return cell_percentiles(self.windows, self.config.cell_level if level is None else level)

    def server_zonal(self, level: int | None = None) -> dict[str, dict[str, float]]:
        """Queue-wait/shed-rate zonal map over servers' covering cells."""
        return server_zonal(
            self.windows,
            self.server_cells,
            self.config.cell_level if level is None else level,
        )

    def regions(self) -> tuple[int, ...]:
        return tuple(sorted({region for w in self.windows for region in w.regions}))

    def burn_series(self, region: int) -> list[float]:
        """Per-window SLO burn rate for one client region."""
        return burn_series(self.windows, region, self.config.slo)

    def alert_windows(self, region: int) -> list[int]:
        """Window indices whose multi-window burn crossed both thresholds."""
        return alert_windows(self.windows, region, self.config.slo)

    def region_degraded(self) -> dict[int, float]:
        """Weighted degraded (stale-served) requests per client region."""
        degraded: dict[int, float] = {}
        for window in self.windows:
            for region in window.regions:
                totals = window.region_totals(region)
                if totals["degraded"]:
                    degraded[region] = degraded.get(region, 0.0) + totals["degraded"]
        return degraded

    def fault_windows(self) -> dict[str, list[int]]:
        """Fault family → indices of windows it was in force during."""
        families: dict[str, list[int]] = {}
        for window in self.windows:
            for family in window.faults_active:
                families.setdefault(family, []).append(window.index)
        return families

    def summary(self) -> dict[str, float]:
        """Bounded headline floats for ``WorkloadReport.snapshot``."""
        cells = {key[0] for w in self.windows for key in w.cells}
        data: dict[str, float] = {
            "windows": float(len(self.windows)),
            "windows_emitted": float(sum(w.spans for w in self.windows)),
            "downsample_merges": float(self.downsample_merges),
            "records": self.records,
            "cells": float(len(cells)),
        }
        degraded = self.region_degraded()
        for region in self.regions():
            series = self.burn_series(region)
            data[f"region{region}.max_burn"] = max(series) if series else 0.0
            data[f"region{region}.alert_windows"] = float(len(self.alert_windows(region)))
            data[f"region{region}.degraded"] = degraded.get(region, 0.0)
        return data
