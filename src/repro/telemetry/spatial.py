"""Spatial roll-ups: zonal statistics aggregated up the cell hierarchy.

The cell decomposition (:mod:`repro.spatialindex.cellid`) makes ancestry a
string-prefix relation — a level-``L`` cell's token is the first ``L``
digits of every descendant's token — so rolling telemetry up the hierarchy
is token truncation plus mergeable-histogram folds.  Two map families come
out of one window stream:

* **demand-side** (client records): weighted request counts and latency
  percentiles per cell at any level — the demand heatmap and the per-cell
  p50/p95 maps;
* **supply-side** (server queue deltas): queue-wait and shed-rate maps
  attributed to each server's registered *covering cells* — zonal
  statistics over the same cells the discovery DNS advertises.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.simulation.metrics import Histogram
from repro.telemetry.windows import TelemetryWindow


def cell_ancestor(token: str, level: int) -> str:
    """The level-``level`` ancestor of a cell token (the token itself when
    it is already at or above that level)."""
    if level < 0:
        raise ValueError("cell level cannot be negative")
    return token[:level]


def demand_by_cell(
    windows: Iterable[TelemetryWindow], level: int
) -> dict[str, float]:
    """Weighted request count per level-``level`` cell over the windows."""
    demand: dict[str, float] = {}
    for window in windows:
        for (token, _region, _kind), stats in window.cells.items():
            cell = cell_ancestor(token, level)
            demand[cell] = demand.get(cell, 0.0) + stats.requests
    return demand


def latency_by_cell(
    windows: Iterable[TelemetryWindow], level: int
) -> dict[str, Histogram]:
    """Merged latency histogram per level-``level`` cell over the windows."""
    merged: dict[str, Histogram] = {}
    for window in windows:
        for (token, _region, _kind), stats in window.cells.items():
            cell = cell_ancestor(token, level)
            histogram = merged.get(cell)
            if histogram is None:
                histogram = merged[cell] = Histogram("latency_ms", streaming=True)
            histogram.merge(stats.latency)
    return merged


def cell_percentiles(
    windows: Sequence[TelemetryWindow], level: int
) -> dict[str, dict[str, float]]:
    """Per-cell demand + latency tail at one level, ready to print/emit."""
    demand = demand_by_cell(windows, level)
    latency = latency_by_cell(windows, level)
    rollup: dict[str, dict[str, float]] = {}
    for cell in sorted(demand):
        histogram = latency.get(cell)
        rollup[cell] = {
            "requests": demand[cell],
            "p50_ms": histogram.p50 if histogram is not None else 0.0,
            "p95_ms": histogram.p95 if histogram is not None else 0.0,
        }
    return rollup


def demand_heatmap(
    windows: Sequence[TelemetryWindow], levels: Sequence[int]
) -> dict[int, dict[str, float]]:
    """The demand heatmap: weighted request count per cell per level."""
    return {level: demand_by_cell(windows, level) for level in sorted(levels)}


def server_zonal(
    windows: Sequence[TelemetryWindow],
    server_cells: Mapping[str, tuple[str, ...]],
    level: int,
) -> dict[str, dict[str, float]]:
    """Queue-wait and shed-rate maps over servers' covering cells.

    Each server's per-window queue deltas are attributed to every covering
    cell its discovery registration advertises (truncated to ``level``),
    then aggregated per cell — the zonal-statistics view of *where* the
    federation's serving capacity queued, shed, and burned busy time.
    Servers with no registered cells (never registered, or unknown to the
    pipeline) are skipped rather than mapped to a synthetic zone.

    Besides the raw sums, each zone carries two derived rates —
    ``shed_rate`` (dropped/arrivals) and ``mean_wait_ms`` (wait/served) —
    and, when the frames carried the ``workers`` gauge, ``capacity_ms``
    (workers × window span, summed over the zone's active server-windows)
    with the ``utilization`` ratio ``busy_ms / capacity_ms``.  Idle servers
    emit no window delta, so capacity covers *active* servers only.
    """
    zones: dict[str, dict[str, float]] = {}
    for window in windows:
        span_ms = (window.end_seconds - window.start_seconds) * 1000.0
        for server_id, stats in window.servers.items():
            for token in server_cells.get(server_id, ()):
                cell = cell_ancestor(token, level)
                zone = zones.get(cell)
                if zone is None:
                    zone = zones[cell] = {
                        "arrivals": 0.0,
                        "served": 0.0,
                        "dropped": 0.0,
                        "wait_ms": 0.0,
                        "busy_ms": 0.0,
                        "capacity_ms": 0.0,
                    }
                zone["arrivals"] += stats.arrivals
                zone["served"] += stats.served
                zone["dropped"] += stats.dropped
                zone["wait_ms"] += stats.wait_ms
                zone["busy_ms"] += stats.busy_ms
                zone["capacity_ms"] += stats.workers * span_ms
    for zone in zones.values():
        zone["shed_rate"] = zone["dropped"] / zone["arrivals"] if zone["arrivals"] else 0.0
        zone["mean_wait_ms"] = zone["wait_ms"] / zone["served"] if zone["served"] else 0.0
        zone["utilization"] = zone["busy_ms"] / zone["capacity_ms"] if zone["capacity_ms"] else 0.0
    return zones
