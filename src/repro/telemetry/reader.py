"""The autoscaler-facing query surface over a live telemetry pipeline.

Closed-loop control must not peek at the raw simulation state (the
engine's omniscient ``server_stats``, the queue objects themselves): a
production controller only ever sees what the monitoring system emitted.
:class:`TelemetryReader` enforces that boundary — it wraps a
:class:`~repro.telemetry.pipeline.TelemetryPipeline` and answers the
questions a controller actually asks, all computed from *sealed* windows:

* supply side: zonal queue-wait / shed-rate / utilization maps over the
  trailing windows (:meth:`zonal`, :meth:`zone_stats`);
* demand side: per-cell demand and its slope between the last two
  windows (:meth:`demand`, :meth:`demand_slope`);
* SLO side: trailing burn rate per region and across regions
  (:meth:`burn`, :meth:`max_burn`), the global latency tail
  (:meth:`p95_ms`), and whole-run SLO attainment (:meth:`attainment`).

Determinism: every query is a pure fold over the pipeline's sealed
windows — no clocks, no randomness — so identical runs read identical
signals.  The open (unsealed) window is deliberately invisible: signals
change only when a window seals, which is what paces a controller's
evaluations to the telemetry cadence.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulation.metrics import Histogram
from repro.telemetry.pipeline import TelemetryPipeline
from repro.telemetry.spatial import cell_ancestor, demand_by_cell, server_zonal
from repro.telemetry.windows import TelemetryWindow


@dataclass
class TelemetryReader:
    """Read-only roll-up queries over one pipeline's sealed windows.

    Args are the pipeline to wrap; all methods take ``last`` — how many
    trailing sealed windows to fold (bounded by what retention kept) —
    and return plain floats/dicts ready for threshold comparisons.
    """

    pipeline: TelemetryPipeline

    # ------------------------------------------------------------------
    # Window access
    # ------------------------------------------------------------------
    @property
    def window_count(self) -> int:
        """Sealed windows currently retained (grows as rounds seal them;
        shrinks only under retention downsampling)."""
        return len(self.pipeline.windows)

    def last_windows(self, last: int = 1) -> tuple[TelemetryWindow, ...]:
        """The trailing ``last`` sealed windows, oldest first (fewer when
        the run has not sealed that many yet)."""
        if last < 1:
            raise ValueError("a reader query needs at least one window")
        return tuple(self.pipeline.windows[-last:])

    def has_signal(self, last: int = 1) -> bool:
        """Whether the trailing sealed windows carry any samples at all
        (a request sample or a server frame delta).

        A window can seal with *zero* samples — an all-quiet cell, an
        all-shed round where nothing reached a queue, a fleet that went
        dark.  Every accessor below answers such windows with its neutral
        fallback (0.0 / empty map / attainment 1.0), which is correct for
        *display* but poison for *control*: zero pressure and "no data"
        must not look alike to a controller deciding to scale down.  This
        is the distinguishing predicate — missing data is no signal.
        """
        return any(
            window.cells or window.servers for window in self.last_windows(last)
        )

    # ------------------------------------------------------------------
    # Supply side (zonal roll-ups)
    # ------------------------------------------------------------------
    def zonal(self, level: int, last: int = 1) -> dict[str, dict[str, float]]:
        """Queue-wait/shed/utilization map per level-``level`` zone over
        the trailing windows (see :func:`repro.telemetry.spatial.server_zonal`)."""
        return server_zonal(
            self.last_windows(last), self.pipeline.server_cells, level
        )

    def zone_stats(self, zone: str, level: int, last: int = 1) -> dict[str, float]:
        """One zone's trailing stats; an all-zero dict when the zone was
        quiet (no server window landed in it), so callers can threshold
        without key checks."""
        stats = self.zonal(level, last).get(zone)
        if stats is None:
            return {
                "arrivals": 0.0,
                "served": 0.0,
                "dropped": 0.0,
                "wait_ms": 0.0,
                "busy_ms": 0.0,
                "capacity_ms": 0.0,
                "shed_rate": 0.0,
                "mean_wait_ms": 0.0,
                "utilization": 0.0,
            }
        return stats

    def server_rollup(self, last: int = 1) -> dict[str, dict[str, float]]:
        """Per-server trailing window deltas (mean wait, shed rate) —
        still telemetry (the pipeline's windowed emission), *not* the raw
        queue objects.  Lets a controller spot an outlier replica inside
        a pressured zone."""
        merged: dict[str, dict[str, float]] = {}
        for window in self.last_windows(last):
            for server_id, stats in window.servers.items():
                entry = merged.setdefault(
                    server_id,
                    {"arrivals": 0.0, "served": 0.0, "dropped": 0.0, "wait_ms": 0.0},
                )
                entry["arrivals"] += stats.arrivals
                entry["served"] += stats.served
                entry["dropped"] += stats.dropped
                entry["wait_ms"] += stats.wait_ms
        for entry in merged.values():
            entry["shed_rate"] = entry["dropped"] / entry["arrivals"] if entry["arrivals"] else 0.0
            entry["mean_wait_ms"] = entry["wait_ms"] / entry["served"] if entry["served"] else 0.0
        return merged

    # ------------------------------------------------------------------
    # Demand side
    # ------------------------------------------------------------------
    def demand(self, level: int, last: int = 1) -> dict[str, float]:
        """Weighted request count per level-``level`` cell over the
        trailing windows."""
        return demand_by_cell(self.last_windows(last), level)

    def demand_rate(self, zone: str, level: int, window: TelemetryWindow) -> float:
        """One window's demand in one zone, in requests per simulated
        second (0 for zero-span windows)."""
        span = window.end_seconds - window.start_seconds
        if span <= 0.0:
            return 0.0
        total = 0.0
        for (token, _region, _kind), stats in window.cells.items():
            if cell_ancestor(token, level) == zone:
                total += stats.requests
        return total / span

    def demand_slope(self, zone: str, level: int) -> float:
        """Change in a zone's demand rate between the last two sealed
        windows (requests/second difference; positive = load rising,
        negative = ebbing).  0.0 until two windows exist — a controller
        must not infer a trend from a single sample."""
        if len(self.pipeline.windows) < 2:
            return 0.0
        previous, latest = self.pipeline.windows[-2], self.pipeline.windows[-1]
        return self.demand_rate(zone, level, latest) - self.demand_rate(
            zone, level, previous
        )

    # ------------------------------------------------------------------
    # SLO side
    # ------------------------------------------------------------------
    def burn(self, region: int, last: int = 1) -> float:
        """The region's worst per-window SLO burn rate over the trailing
        windows (0.0 for a region with no traffic)."""
        series = self.pipeline.burn_series(region)
        trailing = series[-last:] if series else []
        return max(trailing) if trailing else 0.0

    def max_burn(self, last: int = 1) -> float:
        """Worst trailing burn across every region seen so far."""
        regions = self.pipeline.regions()
        return max((self.burn(region, last) for region in regions), default=0.0)

    def p95_ms(self, last: int = 1) -> float:
        """Global p95 latency over the trailing windows, from the merged
        per-key streaming histograms (exact within the shared log-bucket
        family)."""
        histogram = Histogram("latency_ms", streaming=True)
        for window in self.last_windows(last):
            for stats in window.cells.values():
                histogram.merge(stats.latency)
        return histogram.p95 if histogram.count else 0.0

    def attainment(self) -> float:
        """Whole-run SLO attainment: the weighted fraction of requests
        that were served *and* under the latency SLO, over every retained
        window (1.0 when nothing was recorded yet)."""
        requests = bad = 0.0
        for window in self.pipeline.windows:
            for stats in window.cells.values():
                requests += stats.requests
                bad += stats.bad
        return 1.0 - (bad / requests) if requests else 1.0
