"""Windowed telemetry records: the emission format of the pipeline.

One :class:`TelemetryWindow` holds everything the federation emitted over
one span of simulated time, in two families:

* **client-side request records**, keyed ``(cell token, region, kind)`` —
  weighted counters (requests, errors, degraded serves, latency-SLO
  violations) plus one mergeable *streaming* histogram of latency per key,
  so a window's memory is O(distinct keys × histogram buckets) no matter
  how many requests (or phantom cohort weights) landed in it;
* **server-side queue deltas**, keyed by server id — the per-window
  difference of the server queue's cumulative accounting (arrivals, waits,
  drops, busy time, per-kind arrivals), phantom cohort weights included.

Windows are *mergeable*: :meth:`TelemetryWindow.merge_from` folds one
window into another (counters add, histograms merge bucket-wise), which is
what temporal downsampling uses to keep retention bounded — merging two
adjacent windows yields exactly the window that would have been emitted at
double the width.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simulation.metrics import Histogram

CellKey = tuple[str, int, str]
"""One request-record key: (covering-cell token, client region, request kind)."""


def _latency_histogram() -> Histogram:
    return Histogram("latency_ms", streaming=True)


@dataclass
class CellStats:
    """Weighted request accounting for one (cell, region, kind) key."""

    requests: float = 0.0
    errors: float = 0.0
    degraded: float = 0.0
    slow: float = 0.0
    """Requests served over the configured latency SLO threshold."""
    latency: Histogram = field(default_factory=_latency_histogram)

    def observe(
        self,
        latency_ms: float,
        weight: float,
        ok: bool,
        degraded: bool,
        slow: bool,
    ) -> None:
        self.requests += weight
        if degraded:
            self.degraded += weight
        if not ok:
            self.errors += weight
            return
        self.latency.observe(latency_ms, weight)
        if slow:
            self.slow += weight

    def merge_from(self, other: "CellStats") -> None:
        self.requests += other.requests
        self.errors += other.errors
        self.degraded += other.degraded
        self.slow += other.slow
        self.latency.merge(other.latency)

    @property
    def bad(self) -> float:
        """SLO-bad share of this key: no service at all, or served too slow."""
        return self.errors + self.slow


@dataclass
class ServerWindowStats:
    """One server queue's per-window delta (phantom cohort weights included)."""

    arrivals: float = 0.0
    served: float = 0.0
    dropped: float = 0.0
    wait_ms: float = 0.0
    busy_ms: float = 0.0
    workers: float = 0.0
    """Gauge, not a counter: the server's worker count as last observed in
    the window (0 when the frame predates the gauge).  Supply-side roll-ups
    multiply it by the window span to get serving capacity."""
    kinds: dict[str, float] = field(default_factory=dict)

    def merge_from(self, other: "ServerWindowStats") -> None:
        self.arrivals += other.arrivals
        self.served += other.served
        self.dropped += other.dropped
        self.wait_ms += other.wait_ms
        self.busy_ms += other.busy_ms
        self.workers = max(self.workers, other.workers)
        for kind, count in other.kinds.items():
            self.kinds[kind] = self.kinds.get(kind, 0.0) + count

    @property
    def shed_rate(self) -> float:
        return self.dropped / self.arrivals if self.arrivals else 0.0

    @property
    def mean_wait_ms(self) -> float:
        return self.wait_ms / self.served if self.served else 0.0


@dataclass
class TelemetryWindow:
    """Everything the federation emitted over one span of simulated time."""

    index: int
    start_seconds: float
    end_seconds: float
    cells: dict[CellKey, CellStats] = field(default_factory=dict)
    servers: dict[str, ServerWindowStats] = field(default_factory=dict)
    faults_active: tuple[str, ...] = ()
    """Fault families in force during (any part of) the window, sorted."""
    spans: int = 1
    """Original emission windows folded into this one (downsampling doubles
    it); the sum over retained windows is the total windows ever emitted."""

    def record(
        self,
        cell: str,
        region: int,
        kind: str,
        latency_ms: float,
        weight: float,
        ok: bool,
        degraded: bool,
        slow: bool,
    ) -> None:
        key = (cell, region, kind)
        stats = self.cells.get(key)
        if stats is None:
            stats = self.cells[key] = CellStats()
        stats.observe(latency_ms, weight, ok, degraded, slow)

    def merge_from(self, other: "TelemetryWindow") -> None:
        """Fold ``other`` (the later window) into this one."""
        self.end_seconds = other.end_seconds
        self.spans += other.spans
        for key, stats in other.cells.items():
            mine = self.cells.get(key)
            if mine is None:
                self.cells[key] = stats
            else:
                mine.merge_from(stats)
        for server_id, stats in other.servers.items():
            mine_s = self.servers.get(server_id)
            if mine_s is None:
                self.servers[server_id] = stats
            else:
                mine_s.merge_from(stats)
        self.faults_active = tuple(
            sorted(set(self.faults_active) | set(other.faults_active))
        )

    @property
    def requests(self) -> float:
        return sum(stats.requests for stats in self.cells.values())

    @property
    def regions(self) -> tuple[int, ...]:
        return tuple(sorted({key[1] for key in self.cells}))

    def region_totals(self, region: int) -> dict[str, float]:
        """This window's weighted request accounting for one client region."""
        totals = {"requests": 0.0, "errors": 0.0, "degraded": 0.0, "slow": 0.0}
        for (_, key_region, _), stats in self.cells.items():
            if key_region != region:
                continue
            totals["requests"] += stats.requests
            totals["errors"] += stats.errors
            totals["degraded"] += stats.degraded
            totals["slow"] += stats.slow
        return totals
