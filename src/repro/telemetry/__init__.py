"""Federation-wide telemetry: windowed emission, spatial roll-ups, SLO burn.

Every per-request datum a fleet produces used to be thrown away after one
end-of-run percentile snapshot — there was no way to see *where* (which
covering cell, which region) or *when* (which window) load, latency, or
failures concentrated.  This package is the observability substrate that
fixes that:

* :mod:`repro.telemetry.windows` — the emission format: per-window
  counters plus mergeable streaming histograms keyed by covering cell,
  client region, and request kind, with per-server queue deltas alongside.
* :mod:`repro.telemetry.spatial` — zonal statistics aggregated up the
  cell hierarchy: demand heatmaps by cell level, per-cell latency
  percentiles, queue-wait and shed-rate maps over servers' covering cells.
* :mod:`repro.telemetry.slo` — per-region SLO burn: error-budget
  consumption against configurable latency/availability SLOs, with
  multi-window burn-rate alerting.
* :mod:`repro.telemetry.pipeline` — the :class:`TelemetryPipeline` tying
  it together: round-boundary flushes seal windows, temporal downsampling
  keeps retention bounded (a million-client run produces bounded output),
  and the sealed windows are queryable after the run via
  ``WorkloadReport.telemetry``.
* :mod:`repro.telemetry.reader` — the :class:`TelemetryReader` query
  surface closed-loop controllers consume *during* a run: trailing-window
  zonal stats, demand slopes, burn rates, latency tails, and SLO
  attainment, all computed from sealed windows only (a controller sees
  what monitoring emitted, never the raw simulation state).

Telemetry is **off by default**: a :class:`repro.workload.WorkloadConfig`
without a ``telemetry`` config runs byte-identically to a build without
this package.
"""

from repro.telemetry.pipeline import TelemetryConfig, TelemetryPipeline
from repro.telemetry.reader import TelemetryReader
from repro.telemetry.slo import SLOConfig, alert_windows, burn_rate, burn_series
from repro.telemetry.spatial import (
    cell_ancestor,
    cell_percentiles,
    demand_by_cell,
    demand_heatmap,
    latency_by_cell,
    server_zonal,
)
from repro.telemetry.windows import CellStats, ServerWindowStats, TelemetryWindow

__all__ = [
    "CellStats",
    "SLOConfig",
    "ServerWindowStats",
    "TelemetryConfig",
    "TelemetryPipeline",
    "TelemetryReader",
    "TelemetryWindow",
    "alert_windows",
    "burn_rate",
    "burn_series",
    "cell_ancestor",
    "cell_percentiles",
    "demand_by_cell",
    "demand_heatmap",
    "latency_by_cell",
    "server_zonal",
]
