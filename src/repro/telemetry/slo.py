"""Per-region SLO burn: error-budget consumption and burn-rate alerting.

An SLO here is the pair the fleet benchmarks already reason about
informally: a latency threshold (a request served over it is *slow*) and
an availability target (the fraction of requests that must be good — i.e.
served, and served under the threshold).  The error budget is
``1 − target``; a window's **burn rate** is the fraction of its requests
that were bad, divided by the budget — burn 1.0 means the region is
consuming budget exactly as fast as the SLO allows, burn 10 means ten
times too fast.

Alerting follows the multi-window pattern (a fast window to catch spikes
quickly, a slow window to suppress blips): a window alerts when the
trailing mean burn over the last ``fast_windows`` windows crosses
``fast_burn_threshold`` *and* the trailing mean over ``slow_windows``
crosses ``slow_burn_threshold``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.telemetry.windows import TelemetryWindow


@dataclass(frozen=True)
class SLOConfig:
    """One latency/availability SLO plus its burn-rate alert policy."""

    latency_ms: float = 250.0
    """A request served above this is slow — it spends error budget."""
    availability_target: float = 0.99
    """Fraction of requests that must be good (served, under the latency
    threshold); the error budget is ``1 − availability_target``."""
    fast_windows: int = 1
    slow_windows: int = 3
    fast_burn_threshold: float = 10.0
    slow_burn_threshold: float = 2.0

    def __post_init__(self) -> None:
        if self.latency_ms <= 0.0:
            raise ValueError("latency SLO threshold must be positive")
        if not (0.0 < self.availability_target < 1.0):
            raise ValueError("availability target must be in (0, 1)")
        if self.fast_windows < 1 or self.slow_windows < 1:
            raise ValueError("burn windows must span at least one window")
        if self.fast_burn_threshold <= 0.0 or self.slow_burn_threshold <= 0.0:
            raise ValueError("burn thresholds must be positive")

    @property
    def error_budget(self) -> float:
        return 1.0 - self.availability_target


def burn_rate(requests: float, bad: float, error_budget: float) -> float:
    """How fast a window consumed error budget (0.0 for an empty window)."""
    if requests <= 0.0:
        return 0.0
    return (bad / requests) / error_budget


def burn_series(
    windows: Sequence[TelemetryWindow], region: int, config: SLOConfig
) -> list[float]:
    """Per-window burn rate for one region, in window order."""
    series: list[float] = []
    for window in windows:
        totals = window.region_totals(region)
        bad = totals["errors"] + totals["slow"]
        series.append(burn_rate(totals["requests"], bad, config.error_budget))
    return series


def _trailing_mean(series: Sequence[float], end: int, span: int) -> float:
    start = max(0, end - span + 1)
    chunk = series[start : end + 1]
    return sum(chunk) / len(chunk) if chunk else 0.0


def alert_windows(
    windows: Sequence[TelemetryWindow], region: int, config: SLOConfig
) -> list[int]:
    """Indices (``TelemetryWindow.index``) of windows whose multi-window
    burn crossed both thresholds for ``region``."""
    series = burn_series(windows, region, config)
    alerting: list[int] = []
    for position, window in enumerate(windows):
        fast = _trailing_mean(series, position, config.fast_windows)
        slow = _trailing_mean(series, position, config.slow_windows)
        if fast >= config.fast_burn_threshold and slow >= config.slow_burn_threshold:
            alerting.append(window.index)
    return alerting
