"""The routing service exposed by one map server.

A map server computes "the route that is relevant for the region that they
cover" (Section 5.2).  Requests arrive as geographic origin/destination
points; when a point lies outside the map's coverage the server clamps it to
the closest point it can serve (its entry/exit vertex), which is what makes
client-side stitching of partial legs possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from weakref import WeakKeyDictionary

from repro.geometry.point import LatLng
from repro.osm.mapdata import MapData
from repro.routing.contraction import ContractionHierarchy, build_contraction_hierarchy
from repro.routing.graph import RoutingGraph, graph_from_map
from repro.routing.shortest_path import NoRouteError, Route, bidirectional_dijkstra, dijkstra
from repro.routing.stitching import RouteLeg


_hierarchy_memo: "WeakKeyDictionary[RoutingGraph, ContractionHierarchy]" = WeakKeyDictionary()
"""Contraction hierarchies memoized per routing graph (identity-keyed).

:func:`repro.routing.graph.graph_from_map` hands the same graph object to
every service over an unchanged map, so the expensive preprocessing happens
once per distinct graph rather than once per map-server instance.
"""


@dataclass(frozen=True, slots=True)
class RouteResponse:
    """A route computed by one map server, expressed geographically."""

    points: tuple[LatLng, ...]
    cost: float
    metric: str
    entry_snap_meters: float
    exit_snap_meters: float
    settled_vertices: int
    map_name: str

    def as_leg(self, server_id: str) -> RouteLeg:
        """Convert to a :class:`RouteLeg` for client-side stitching."""
        return RouteLeg(server_id=server_id, points=self.points, cost=self.cost, metric=self.metric)


@dataclass
class RoutingService:
    """Shortest-path routing over one map's navigable ways.

    With ``algorithm="contraction"`` (the federation default) the service
    preprocesses its graph into a :class:`ContractionHierarchy` once and
    answers every subsequent query with the fast bidirectional upward search;
    queries for a different metric, or graphs too small to route, fall back
    to plain Dijkstra.  The hierarchy is built lazily on the first routing
    query so that servers that never route (tile-only providers, short-lived
    scenario builds) never pay the preprocessing cost.
    """

    map_data: MapData
    algorithm: str = "dijkstra"
    _graph: RoutingGraph = field(init=False)
    _hierarchy: ContractionHierarchy | None = field(init=False, default=None)
    _hierarchy_built: bool = field(init=False, default=False)
    queries_served: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self._graph = graph_from_map(self.map_data)

    def _ensure_hierarchy(self) -> ContractionHierarchy | None:
        if not self._hierarchy_built:
            self._hierarchy_built = True
            if self._graph.vertex_count > 0:
                # Graphs are shared across services of the same (unmutated)
                # map, so the one-off preprocessing is shared too.
                hierarchy = _hierarchy_memo.get(self._graph)
                if hierarchy is None:
                    hierarchy = build_contraction_hierarchy(self._graph)
                    _hierarchy_memo[self._graph] = hierarchy
                self._hierarchy = hierarchy
        return self._hierarchy

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def graph(self) -> RoutingGraph:
        return self._graph

    @property
    def is_routable(self) -> bool:
        return self._graph.vertex_count >= 2

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def route(
        self,
        origin: LatLng,
        destination: LatLng,
        metric: str = "distance",
    ) -> RouteResponse | None:
        """Route between two geographic points within this map.

        Points are snapped to the nearest graph vertex; ``None`` is returned
        when the map has no navigable graph or no path exists.
        """
        self.queries_served += 1
        if not self.is_routable:
            return None
        source = self._graph.nearest_vertex(origin)
        target = self._graph.nearest_vertex(destination)
        entry_snap = origin.distance_to(self._graph.location(source))
        exit_snap = destination.distance_to(self._graph.location(target))
        try:
            route = self._compute(source, target, metric)
        except NoRouteError:
            return None
        points = tuple(route.locations(self._graph))
        return RouteResponse(
            points=points,
            cost=route.cost,
            metric=metric,
            entry_snap_meters=entry_snap,
            exit_snap_meters=exit_snap,
            settled_vertices=route.settled_vertices,
            map_name=self.map_data.metadata.name,
        )

    def route_between_nodes(self, source: int, target: int, metric: str = "distance") -> Route:
        """Route between two existing graph vertices (used by tests and benches)."""
        self.queries_served += 1
        return self._compute(source, target, metric)

    def _compute(self, source: int, target: int, metric: str) -> Route:
        if self.algorithm == "contraction":
            hierarchy = self._ensure_hierarchy()
            if hierarchy is not None and metric == hierarchy.metric:
                return hierarchy.query(source, target)
        if self.algorithm == "bidirectional":
            return bidirectional_dijkstra(self._graph, source, target, metric)
        return dijkstra(self._graph, source, target, metric)
