"""The tile service exposed by one map server.

"Each map server would expose a visual representation of its map data as 2D
images, 3D meshes or other forms" (Section 5.2).  The service wraps a
:class:`repro.tiles.renderer.TileRenderer` with request accounting and the
option to pre-render a coverage area (the Figure 1 pipeline stage, reused
per-server in the federated architecture).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.osm.mapdata import MapData
from repro.tiles.renderer import Tile, TileRenderer
from repro.tiles.tile_math import TileCoordinate, tiles_for_box


@dataclass
class TileService:
    """Serves rendered tiles of one map."""

    map_data: MapData
    line_thickness: int = 1
    renderer: TileRenderer = field(init=False)
    tiles_served: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self.renderer = TileRenderer(self.map_data, line_thickness=self.line_thickness)

    def get_tile(self, coordinate: TileCoordinate) -> Tile:
        """Return the tile at ``coordinate`` (rendered on demand or cached)."""
        self.tiles_served += 1
        return self.renderer.render(coordinate)

    def prerender_coverage(self, zoom: int) -> int:
        """Pre-render all tiles covering the map at ``zoom``; returns the count."""
        try:
            box = self.map_data.bounding_box()
        except Exception:
            return 0
        coordinates = tiles_for_box(box, zoom)
        self.renderer.prerender(coordinates)
        return len(coordinates)

    def coverage_tiles(self, zoom: int) -> list[TileCoordinate]:
        """The tile coordinates needed to cover this map at ``zoom``."""
        return tiles_for_box(self.map_data.bounding_box(), zoom)

    @property
    def cache_size(self) -> int:
        return self.renderer.cache_size
