"""The tile service exposed by one map server.

"Each map server would expose a visual representation of its map data as 2D
images, 3D meshes or other forms" (Section 5.2).  The service wraps a
:class:`repro.tiles.renderer.TileRenderer` with request accounting and the
option to pre-render a coverage area (the Figure 1 pipeline stage, reused
per-server in the federated architecture).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.osm.mapdata import MapData
from repro.simulation.lru import LruCache
from repro.tiles.renderer import Tile, TileRenderer
from repro.tiles.tile_math import TileCoordinate, tiles_for_box

_renderer_memo: LruCache = LruCache(max_entries=32)
"""Renderers (and their tile caches) shared per map version + thickness.

Fleet sweeps stand up many federations over the same generated worlds; with
one renderer per (unchanged) map the tiles themselves are rasterised once
per process instead of once per scenario.  A bounded LRU rather than a weak
map: a renderer necessarily holds its map, so weak keying could never
collect entries, while LRU eviction caps retention at the last 32 worlds."""


@dataclass
class TileService:
    """Serves rendered tiles of one map."""

    map_data: MapData
    line_thickness: int = 1
    renderer: TileRenderer = field(init=False)
    tiles_served: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        key = (self.map_data, self.line_thickness)
        cached = _renderer_memo.lookup(key)
        if cached is not None:
            version, renderer = cached
            if version == self.map_data.version:
                self.renderer = renderer
                return
        self.renderer = TileRenderer(self.map_data, line_thickness=self.line_thickness)
        _renderer_memo.store(key, (self.map_data.version, self.renderer))

    def get_tile(self, coordinate: TileCoordinate) -> Tile:
        """Return the tile at ``coordinate`` (rendered on demand or cached)."""
        self.tiles_served += 1
        return self.renderer.render(coordinate)

    def prerender_coverage(self, zoom: int) -> int:
        """Pre-render all tiles covering the map at ``zoom``; returns the count."""
        try:
            box = self.map_data.bounding_box()
        except Exception:
            return 0
        coordinates = tiles_for_box(box, zoom)
        self.renderer.prerender(coordinates)
        return len(coordinates)

    def coverage_tiles(self, zoom: int) -> list[TileCoordinate]:
        """The tile coordinates needed to cover this map at ``zoom``."""
        return tiles_for_box(self.map_data.bounding_box(), zoom)

    @property
    def cache_size(self) -> int:
        return self.renderer.cache_size
