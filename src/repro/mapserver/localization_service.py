"""The localization service exposed by one map server.

Section 5.2: "The map servers accept location cues, localize the device
within their map, and return the results to the client."  Each server
advertises the localization technologies it supports (the cue types it can
consume); the federated client only sends it cues of those types.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.localization.cues import (
    BeaconCue,
    CueBundle,
    CueType,
    FiducialCue,
    GnssCue,
    ImageCue,
    LocalizationResult,
)
from repro.localization.fingerprint import (
    BeaconFingerprintDatabase,
    FiducialRegistry,
    ImageFingerprintDatabase,
)
from repro.osm.mapdata import MapData


@dataclass
class LocalizationService:
    """Cue-based localization within one map."""

    map_data: MapData
    server_id: str
    beacon_db: BeaconFingerprintDatabase = field(default_factory=BeaconFingerprintDatabase)
    image_db: ImageFingerprintDatabase = field(default_factory=ImageFingerprintDatabase)
    fiducials: FiducialRegistry = field(default_factory=FiducialRegistry)
    accepts_gnss: bool = False
    queries_served: int = field(default=0, init=False)

    # ------------------------------------------------------------------
    # Capabilities
    # ------------------------------------------------------------------
    def advertised_technologies(self) -> set[CueType]:
        """The cue types this server can localize against."""
        technologies: set[CueType] = set()
        if len(self.beacon_db):
            technologies.add(CueType.BEACON)
        if len(self.image_db):
            technologies.add(CueType.IMAGE)
        if len(self.fiducials):
            technologies.add(CueType.FIDUCIAL)
        if self.accepts_gnss:
            technologies.add(CueType.GNSS)
        return technologies

    @property
    def can_localize(self) -> bool:
        return bool(self.advertised_technologies())

    # ------------------------------------------------------------------
    # Localization
    # ------------------------------------------------------------------
    def localize(self, cues: CueBundle) -> list[LocalizationResult]:
        """Localize using every advertised technology for which a cue is present.

        Returns all candidate results (possibly from multiple technologies);
        the client-side selector ranks them together with other servers'.
        """
        self.queries_served += 1
        results: list[LocalizationResult] = []
        technologies = self.advertised_technologies()

        if CueType.FIDUCIAL in technologies:
            for fiducial in cues.fiducials:
                result = self._localize_fiducial(fiducial)
                if result is not None:
                    results.append(result)

        if CueType.IMAGE in technologies and cues.image is not None:
            result = self._localize_image(cues.image)
            if result is not None:
                results.append(result)

        if CueType.BEACON in technologies and cues.beacons is not None:
            result = self._localize_beacon(cues.beacons)
            if result is not None:
                results.append(result)

        if CueType.GNSS in technologies and cues.gnss is not None:
            results.append(self._localize_gnss(cues.gnss))

        # Only return results that fall within (or near) this map's coverage —
        # a server should not claim to know where a device is outside its map.
        return [r for r in results if self._plausibly_in_coverage(r)]

    # ------------------------------------------------------------------
    # Per-technology helpers
    # ------------------------------------------------------------------
    def _localize_beacon(self, cue: BeaconCue) -> LocalizationResult | None:
        return self.beacon_db.localize(cue, self.server_id)

    def _localize_image(self, cue: ImageCue) -> LocalizationResult | None:
        return self.image_db.localize(cue, self.server_id)

    def _localize_fiducial(self, cue: FiducialCue) -> LocalizationResult | None:
        return self.fiducials.localize(
            cue.tag_id, cue.offset_east_meters, cue.offset_north_meters, self.server_id
        )

    def _localize_gnss(self, cue: GnssCue) -> LocalizationResult:
        return LocalizationResult(
            server_id=self.server_id,
            location=cue.location,
            accuracy_meters=cue.accuracy_meters,
            confidence=0.6,
            cue_type=CueType.GNSS,
        )

    def _plausibly_in_coverage(self, result: LocalizationResult) -> bool:
        try:
            coverage = self.map_data.coverage
        except Exception:
            return True
        if coverage.contains(result.location):
            return True
        # Allow results slightly outside the polygon (fuzzy boundaries).
        return coverage.bounding_box.expanded(50.0).contains(result.location)
