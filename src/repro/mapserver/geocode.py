"""Forward and reverse geocoding within one map.

Forward geocode converts a textual address to a map node/location; reverse
geocode converts a location to the nearest meaningful map node (Section 4,
"Forward and reverse geocode").  Each map server indexes only its own map,
which is what makes the federated flow in Section 5.2 a two-step process:
coarse geocode on a world map, then precise geocode inside discovered maps.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.geometry.point import LatLng
from repro.osm.elements import (
    TAG_ADDRESS,
    TAG_CITY,
    TAG_HOUSE_NUMBER,
    TAG_NAME,
    TAG_STREET,
    Node,
)
from repro.osm.mapdata import MapData


@dataclass(frozen=True, slots=True)
class Address:
    """A hierarchical textual address."""

    free_text: str | None = None
    house_number: str | None = None
    street: str | None = None
    city: str | None = None
    place_name: str | None = None

    def as_query(self) -> str:
        """A single normalised query string for matching."""
        if self.free_text:
            return _normalise(self.free_text)
        parts = [self.place_name, self.house_number, self.street, self.city]
        return _normalise(" ".join(part for part in parts if part))

    @classmethod
    def parse(cls, text: str) -> "Address":
        """Parse a free-form address string into components (best effort)."""
        pieces = [piece.strip() for piece in text.split(",") if piece.strip()]
        house_number = None
        street = None
        city = None
        place_name = None
        if pieces:
            first = pieces[0]
            match = re.match(r"^(\d+[a-zA-Z]?)\s+(.*)$", first)
            if match:
                house_number, street = match.group(1), match.group(2)
            else:
                place_name = first
        if len(pieces) >= 2:
            city = pieces[-1]
            if len(pieces) >= 3 and street is None:
                street = pieces[1]
        return cls(
            free_text=text,
            house_number=house_number,
            street=street,
            city=city,
            place_name=place_name,
        )


@dataclass(frozen=True, slots=True)
class GeocodeResult:
    """One candidate returned by forward geocoding."""

    node_id: int
    location: LatLng
    label: str
    score: float
    map_name: str


@dataclass(frozen=True, slots=True)
class ReverseGeocodeResult:
    """The node snapped to by reverse geocoding."""

    node_id: int
    location: LatLng
    label: str
    distance_meters: float
    map_name: str


def _normalise(text: str) -> str:
    return re.sub(r"\s+", " ", text.strip().lower())


def _tokenise(text: str) -> set[str]:
    return {token for token in re.split(r"[^a-z0-9]+", _normalise(text)) if token}


@dataclass
class GeocodeIndex:
    """Token index over a map's addressable nodes."""

    map_data: MapData
    _entries: list[tuple[int, set[str], str]] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        self.rebuild()

    def rebuild(self) -> None:
        """(Re)build the index from the map's current nodes."""
        self._entries.clear()
        for node in self.map_data.nodes():
            label = self._label_for(node)
            if not label:
                continue
            tokens = _tokenise(label)
            extra = node.tags.get(TAG_ADDRESS)
            if extra:
                tokens |= _tokenise(extra)
            if tokens:
                self._entries.append((node.node_id, tokens, label))

    @staticmethod
    def _label_for(node: Node) -> str:
        """A human-readable label for an addressable node."""
        name = node.tags.get(TAG_NAME)
        street = node.tags.get(TAG_STREET)
        house = node.tags.get(TAG_HOUSE_NUMBER)
        city = node.tags.get(TAG_CITY)
        parts = []
        if name:
            parts.append(name)
        if house and street:
            parts.append(f"{house} {street}")
        elif street:
            parts.append(street)
        if city:
            parts.append(city)
        return ", ".join(parts)

    @property
    def entry_count(self) -> int:
        return len(self._entries)

    def lookup(self, address: Address, limit: int = 5, min_score: float = 0.3) -> list[GeocodeResult]:
        """Best-matching addressable nodes for an address query.

        ``min_score`` filters out incidental single-token matches (every city
        has thousands of nodes containing the token "street"), so an address
        that genuinely is not in this map returns an empty list rather than a
        noise match.
        """
        query_tokens = _tokenise(address.as_query())
        if not query_tokens:
            return []
        results: list[GeocodeResult] = []
        for node_id, tokens, label in self._entries:
            overlap = query_tokens & tokens
            if not overlap:
                continue
            precision = len(overlap) / len(query_tokens)
            recall = len(overlap) / len(tokens)
            score = 0.7 * precision + 0.3 * recall
            if score < min_score:
                continue
            node = self.map_data.node(node_id)
            results.append(
                GeocodeResult(node_id, node.location, label, score, self.map_data.metadata.name)
            )
        results.sort(key=lambda r: r.score, reverse=True)
        return results[:limit]


@dataclass
class GeocodeService:
    """Forward and reverse geocode over one map."""

    map_data: MapData
    index: GeocodeIndex = field(init=False)
    queries_served: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self.index = GeocodeIndex(self.map_data)

    def geocode(self, address: Address, limit: int = 5) -> list[GeocodeResult]:
        """Forward geocode an address within this map."""
        self.queries_served += 1
        return self.index.lookup(address, limit)

    def reverse_geocode(self, location: LatLng, max_distance_meters: float = 250.0) -> ReverseGeocodeResult | None:
        """Snap a location to the nearest named/addressable node within range."""
        self.queries_served += 1
        candidates = self.map_data.nodes_near(location, max_distance_meters)
        best: tuple[float, Node] | None = None
        for node in candidates:
            label = GeocodeIndex._label_for(node)
            if not label:
                continue
            distance = location.distance_to(node.location)
            if best is None or distance < best[0]:
                best = (distance, node)
        if best is None:
            return None
        distance, node = best
        return ReverseGeocodeResult(
            node_id=node.node_id,
            location=node.location,
            label=GeocodeIndex._label_for(node),
            distance_meters=distance,
            map_name=self.map_data.metadata.name,
        )
