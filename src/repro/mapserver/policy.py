"""Per-service access-control policies for map servers.

Section 5.3: "map providers in OpenFLAME can control access to their data and
services in fine-grained ways as they can implement separate authentication
processes for each of the services and map data."  Three control levels are
modelled exactly as the paper describes:

* **User-level** — e.g. only users who authenticate with the university's
  email domain get fine-grained map data.
* **Service-level** — e.g. tiles for everyone, localization only for people
  with physical access (a token).
* **Application-level** — e.g. localization only for requests from the campus
  navigation application.

Additionally, individual map elements can be marked private via a tag and
are filtered out of responses for principals without data access.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.mapserver.auth import Credential
from repro.osm.elements import TAG_PRIVACY, Node


class ServiceName(str, Enum):
    """The base location-based services a map server can expose (Section 4)."""

    GEOCODE = "geocode"
    REVERSE_GEOCODE = "reverse_geocode"
    SEARCH = "search"
    ROUTING = "routing"
    LOCALIZATION = "localization"
    TILES = "tiles"


class AccessDenied(Exception):
    """Raised when a request fails the map server's policy checks."""

    def __init__(self, service: ServiceName, reason: str):
        super().__init__(f"access to {service.value} denied: {reason}")
        self.service = service
        self.reason = reason


@dataclass
class ServiceRule:
    """The policy for one service.

    A request passes if it satisfies *all* configured constraints.  An empty
    rule allows everyone (the default for a fully public map server).
    """

    allowed_email_domains: set[str] = field(default_factory=set)
    allowed_applications: set[str] = field(default_factory=set)
    required_tokens: set[str] = field(default_factory=set)
    allow_anonymous: bool = True

    def evaluate(self, credential: Credential) -> str | None:
        """None if allowed, otherwise the reason the request is denied."""
        if not self.allow_anonymous and credential.is_anonymous:
            return "anonymous access is not permitted"
        if self.allowed_email_domains:
            domain = credential.email_domain
            if domain is None or domain not in self.allowed_email_domains:
                return "email domain is not authorised"
        if self.allowed_applications:
            if credential.application_id not in self.allowed_applications:
                return "application is not authorised"
        if self.required_tokens:
            if not self.required_tokens & set(credential.tokens):
                return "a required access token is missing"
        return None


@dataclass
class AccessPolicy:
    """The complete policy of one map server."""

    rules: dict[ServiceName, ServiceRule] = field(default_factory=dict)
    default_rule: ServiceRule = field(default_factory=ServiceRule)
    private_data_domains: set[str] = field(default_factory=set)
    private_data_tokens: set[str] = field(default_factory=set)
    checks_performed: int = field(default=0, init=False)

    # ------------------------------------------------------------------
    # Configuration helpers
    # ------------------------------------------------------------------
    def set_rule(self, service: ServiceName, rule: ServiceRule) -> None:
        self.rules[service] = rule

    def restrict_to_domain(self, service: ServiceName, domain: str) -> None:
        """User-level control: only users from ``domain`` may use ``service``."""
        rule = self.rules.setdefault(service, ServiceRule(allow_anonymous=False))
        rule.allow_anonymous = False
        rule.allowed_email_domains.add(domain.lower())

    def restrict_to_application(self, service: ServiceName, application_id: str) -> None:
        """Application-level control: only ``application_id`` may use ``service``."""
        rule = self.rules.setdefault(service, ServiceRule())
        rule.allowed_applications.add(application_id)

    def require_token(self, service: ServiceName, token: str) -> None:
        """Service-level control: ``service`` requires a bearer token."""
        rule = self.rules.setdefault(service, ServiceRule())
        rule.required_tokens.add(token)

    # ------------------------------------------------------------------
    # Enforcement
    # ------------------------------------------------------------------
    def check(self, service: ServiceName, credential: Credential) -> None:
        """Raise :class:`AccessDenied` if ``credential`` may not use ``service``."""
        self.checks_performed += 1
        rule = self.rules.get(service, self.default_rule)
        reason = rule.evaluate(credential)
        if reason is not None:
            raise AccessDenied(service, reason)

    def allows(self, service: ServiceName, credential: Credential) -> bool:
        """Non-raising variant of :meth:`check`."""
        try:
            self.check(service, credential)
        except AccessDenied:
            return False
        return True

    # ------------------------------------------------------------------
    # Data-level filtering
    # ------------------------------------------------------------------
    def can_see_private_data(self, credential: Credential) -> bool:
        """True if the principal may see elements tagged private."""
        if not self.private_data_domains and not self.private_data_tokens:
            return True
        domain = credential.email_domain
        if domain is not None and domain in self.private_data_domains:
            return True
        if self.private_data_tokens & set(credential.tokens):
            return True
        return False

    def filter_nodes(self, nodes: list[Node], credential: Credential) -> list[Node]:
        """Drop private-tagged nodes for principals without data access."""
        if self.can_see_private_data(credential):
            return nodes
        return [node for node in nodes if node.tags.get(TAG_PRIVACY) != "private"]
