"""Map servers: per-organization maps with services and access policies."""

from repro.mapserver.auth import ANONYMOUS, Credential
from repro.mapserver.geocode import (
    Address,
    GeocodeIndex,
    GeocodeResult,
    GeocodeService,
    ReverseGeocodeResult,
)
from repro.mapserver.localization_service import LocalizationService
from repro.mapserver.policy import AccessDenied, AccessPolicy, ServiceName, ServiceRule
from repro.mapserver.routing_service import RouteResponse, RoutingService
from repro.mapserver.search import SearchIndex, SearchResult, SearchService
from repro.mapserver.server import MapServer, ServerStats
from repro.mapserver.tile_service import TileService

__all__ = [
    "ANONYMOUS",
    "AccessDenied",
    "AccessPolicy",
    "Address",
    "Credential",
    "GeocodeIndex",
    "GeocodeResult",
    "GeocodeService",
    "LocalizationService",
    "MapServer",
    "ReverseGeocodeResult",
    "RouteResponse",
    "RoutingService",
    "SearchIndex",
    "SearchResult",
    "SearchService",
    "ServerStats",
    "ServiceName",
    "ServiceRule",
    "TileService",
]
