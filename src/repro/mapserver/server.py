"""The map server: one organization's map plus its location-based services.

"A map server is a system that stores the map of a region and provides
services such as search and routing on the map.  The usefulness of a map
server is determined by the services it implements.  It can also impose
fine-grained security and privacy policies on users and applications"
(Section 3).

:class:`MapServer` is the façade the federated client talks to.  Every
request carries a :class:`repro.mapserver.auth.Credential` and passes the
server's :class:`repro.mapserver.policy.AccessPolicy` before reaching the
underlying service; private-tagged data is filtered for unauthorised
principals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry.point import LatLng
from repro.geometry.polygon import Polygon
from repro.localization.cues import CueBundle, CueType, LocalizationResult
from repro.mapserver.auth import ANONYMOUS, Credential
from repro.mapserver.geocode import Address, GeocodeResult, GeocodeService, ReverseGeocodeResult
from repro.mapserver.localization_service import LocalizationService
from repro.mapserver.policy import AccessPolicy, ServiceName
from repro.mapserver.routing_service import RouteResponse, RoutingService
from repro.mapserver.search import SearchResult, SearchService
from repro.mapserver.tile_service import TileService
from repro.osm.mapdata import MapData
from repro.simulation.queueing import ServerQueue
from repro.tiles.renderer import Tile
from repro.tiles.tile_math import TileCoordinate


@dataclass
class ServerStats:
    """Request accounting for one map server."""

    requests_by_service: dict[str, int] = field(default_factory=dict)

    def record(self, service: ServiceName) -> None:
        key = service.value
        self.requests_by_service[key] = self.requests_by_service.get(key, 0) + 1

    @property
    def total_requests(self) -> int:
        return sum(self.requests_by_service.values())


@dataclass
class MapServer:
    """An independently operated map server (the unit of federation)."""

    server_id: str
    map_data: MapData
    policy: AccessPolicy = field(default_factory=AccessPolicy)
    routing_algorithm: str = "dijkstra"
    stats: ServerStats = field(default_factory=ServerStats)
    queue: ServerQueue | None = None
    """Server-side load model (service times + bounded queue).  ``None``
    keeps the server infinitely fast, as the single-request experiments
    expect; the federation attaches a queue when its config sets
    ``service_times``."""

    geocode_service: GeocodeService = field(init=False)
    search_service: SearchService = field(init=False)
    routing_service: RoutingService = field(init=False)
    localization_service: LocalizationService = field(init=False)
    tile_service: TileService = field(init=False)

    def __post_init__(self) -> None:
        self.geocode_service = GeocodeService(self.map_data)
        self.search_service = SearchService(self.map_data)
        self.routing_service = RoutingService(self.map_data, algorithm=self.routing_algorithm)
        self.localization_service = LocalizationService(self.map_data, self.server_id)
        self.tile_service = TileService(self.map_data)

    # ------------------------------------------------------------------
    # Descriptive properties
    # ------------------------------------------------------------------
    @property
    def coverage(self) -> Polygon:
        return self.map_data.coverage

    @property
    def name(self) -> str:
        return self.map_data.metadata.name

    def advertised_localization_technologies(self) -> set[CueType]:
        return self.localization_service.advertised_technologies()

    def covers_point(self, point: LatLng, slack_meters: float = 50.0) -> bool:
        """True if this server's (fuzzy) coverage plausibly contains ``point``."""
        if self.map_data.covers_point(point):
            return True
        return self.map_data.coverage.bounding_box.expanded(slack_meters).contains(point)

    # ------------------------------------------------------------------
    # Request admission
    # ------------------------------------------------------------------
    def _admit(self, service: ServiceName) -> None:
        """Pass one request through the server's load model.

        Charges queueing delay plus service time against the simulated clock
        (so the caller's observed latency reflects server load) and raises
        :class:`repro.simulation.queueing.ServerOverloadedError` when the
        bounded queue sheds the request.  ``stats`` records only requests
        actually serviced — shed requests live in ``queue.stats.dropped``,
        mirroring how policy-denied requests never reach ``stats`` either.
        """
        if self.queue is not None:
            self.queue.process(service.value)
        self.stats.record(service)

    def telemetry_frame(self) -> dict[str, object] | None:
        """Cumulative queue counters for windowed telemetry (``None`` when
        this server runs without a load model — nothing to window)."""
        if self.queue is None:
            return None
        return self.queue.telemetry_frame()

    # ------------------------------------------------------------------
    # Location-based services (policy enforced)
    # ------------------------------------------------------------------
    def geocode(self, address: Address, credential: Credential = ANONYMOUS, limit: int = 5) -> list[GeocodeResult]:
        self.policy.check(ServiceName.GEOCODE, credential)
        self._admit(ServiceName.GEOCODE)
        results = self.geocode_service.geocode(address, limit)
        if self.policy.can_see_private_data(credential):
            return results
        visible_ids = {
            node.node_id
            for node in self.policy.filter_nodes(list(self.map_data.nodes()), credential)
        }
        return [r for r in results if r.node_id in visible_ids]

    def reverse_geocode(
        self,
        location: LatLng,
        credential: Credential = ANONYMOUS,
        max_distance_meters: float = 250.0,
    ) -> ReverseGeocodeResult | None:
        self.policy.check(ServiceName.REVERSE_GEOCODE, credential)
        self._admit(ServiceName.REVERSE_GEOCODE)
        return self.geocode_service.reverse_geocode(location, max_distance_meters)

    def search(
        self,
        query: str,
        near: LatLng | None = None,
        radius_meters: float | None = None,
        credential: Credential = ANONYMOUS,
        limit: int = 10,
    ) -> list[SearchResult]:
        self.policy.check(ServiceName.SEARCH, credential)
        self._admit(ServiceName.SEARCH)
        results = self.search_service.search(query, near, radius_meters, limit=limit)
        if self.policy.can_see_private_data(credential):
            return results
        visible_ids = {
            node.node_id
            for node in self.policy.filter_nodes(list(self.map_data.nodes()), credential)
        }
        return [r for r in results if r.node_id in visible_ids]

    def route(
        self,
        origin: LatLng,
        destination: LatLng,
        credential: Credential = ANONYMOUS,
        metric: str = "distance",
    ) -> RouteResponse | None:
        self.policy.check(ServiceName.ROUTING, credential)
        self._admit(ServiceName.ROUTING)
        return self.routing_service.route(origin, destination, metric)

    def localize(self, cues: CueBundle, credential: Credential = ANONYMOUS) -> list[LocalizationResult]:
        self.policy.check(ServiceName.LOCALIZATION, credential)
        self._admit(ServiceName.LOCALIZATION)
        return self.localization_service.localize(cues)

    def get_tile(self, coordinate: TileCoordinate, credential: Credential = ANONYMOUS) -> Tile:
        self.policy.check(ServiceName.TILES, credential)
        self._admit(ServiceName.TILES)
        return self.tile_service.get_tile(coordinate)
