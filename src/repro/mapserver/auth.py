"""Principals and credentials presented to map servers.

Section 5.3 describes three levels of access control — user-level,
service-level and application-level.  A :class:`Credential` carries the
attributes those policies inspect: who the user is (and the domain of their
authenticated email), which application is making the request, and any bearer
tokens the map operator may have issued.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class Credential:
    """The identity attached to a map-server request."""

    user_id: str = "anonymous"
    email: str | None = None
    application_id: str | None = None
    tokens: frozenset[str] = field(default_factory=frozenset)

    @property
    def email_domain(self) -> str | None:
        """The domain part of the authenticated email, if any."""
        if self.email is None or "@" not in self.email:
            return None
        return self.email.rsplit("@", 1)[1].lower()

    @property
    def is_anonymous(self) -> bool:
        return self.user_id == "anonymous" and self.email is None

    def with_token(self, token: str) -> "Credential":
        return Credential(
            user_id=self.user_id,
            email=self.email,
            application_id=self.application_id,
            tokens=self.tokens | {token},
        )


ANONYMOUS = Credential()
"""The credential used when an application presents nothing."""
