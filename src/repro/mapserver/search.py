"""Location-based search within one map.

Section 4: "Searching for map nodes using their metadata or features as
keywords in or around a region is called location-based search.  This service
serves requests of the form 'restaurants around me', 'parking spot near the
theater', etc.  Map providers index map node features and metadata against
their location to provide this service."
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.geometry.point import LatLng
from repro.osm.elements import Node
from repro.osm.mapdata import MapData


@dataclass(frozen=True, slots=True)
class SearchResult:
    """One matching map node with its relevance and distance."""

    node_id: int
    location: LatLng
    label: str
    relevance: float
    distance_meters: float
    map_name: str
    tags: tuple[tuple[str, str], ...] = ()

    def tag_dict(self) -> dict[str, str]:
        return dict(self.tags)


def _tokenise(text: str) -> list[str]:
    return [token for token in re.split(r"[^a-z0-9]+", text.strip().lower()) if token]


@dataclass
class SearchIndex:
    """An inverted index from keyword tokens to node ids."""

    map_data: MapData
    _postings: dict[str, set[int]] = field(default_factory=dict, init=False)
    _document_tokens: dict[int, set[str]] = field(default_factory=dict, init=False)

    def __post_init__(self) -> None:
        self.rebuild()

    def rebuild(self) -> None:
        """Index every node's name, tag keys and tag values."""
        self._postings.clear()
        self._document_tokens.clear()
        for node in self.map_data.nodes():
            tokens: set[str] = set()
            for key, value in node.tags.items():
                tokens.update(_tokenise(key))
                tokens.update(_tokenise(value))
            if not tokens:
                continue
            self._document_tokens[node.node_id] = tokens
            for token in tokens:
                self._postings.setdefault(token, set()).add(node.node_id)

    @property
    def indexed_nodes(self) -> int:
        return len(self._document_tokens)

    def candidates(self, query: str) -> dict[int, float]:
        """Node ids matching any query token, scored by token overlap."""
        query_tokens = _tokenise(query)
        if not query_tokens:
            return {}
        scores: dict[int, float] = {}
        for token in query_tokens:
            for node_id in self._postings.get(token, ()):  # exact token match
                scores[node_id] = scores.get(node_id, 0.0) + 1.0
        return {
            node_id: count / len(query_tokens)
            for node_id, count in scores.items()
        }


@dataclass
class SearchService:
    """Keyword + proximity search over one map."""

    map_data: MapData
    index: SearchIndex = field(init=False)
    queries_served: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self.index = SearchIndex(self.map_data)

    def search(
        self,
        query: str,
        near: LatLng | None = None,
        radius_meters: float | None = None,
        limit: int = 10,
    ) -> list[SearchResult]:
        """Search for nodes matching ``query``, optionally constrained to a radius.

        Relevance combines keyword overlap with proximity (closer results rank
        higher when a reference location is given).
        """
        self.queries_served += 1
        scored = self.index.candidates(query)
        if not scored:
            return []

        results: list[SearchResult] = []
        for node_id, keyword_score in scored.items():
            node = self.map_data.node(node_id)
            distance = near.distance_to(node.location) if near is not None else 0.0
            if radius_meters is not None and near is not None and distance > radius_meters:
                continue
            proximity = 1.0 / (1.0 + distance / 100.0) if near is not None else 1.0
            relevance = 0.7 * keyword_score + 0.3 * proximity
            results.append(
                SearchResult(
                    node_id=node_id,
                    location=node.location,
                    label=self._label(node),
                    relevance=relevance,
                    distance_meters=distance,
                    map_name=self.map_data.metadata.name,
                    tags=tuple(sorted(node.tags.items())),
                )
            )
        results.sort(key=lambda r: r.relevance, reverse=True)
        return results[:limit]

    @staticmethod
    def _label(node: Node) -> str:
        return node.name or node.tags.get("product") or f"node {node.node_id}"
