"""Deterministic operator control schedules: scripted SRV mutations.

A :class:`ControlSchedule` is the operator-side twin of
:class:`repro.churn.schedule.ChurnSchedule`: a time-ordered tape of
*deliberate* federation mutations — weight changes, drains, undrains and
priority promotions — that the workload engine applies at round boundaries
through a :class:`repro.control.plane.ControlPlane`.  Where churn models
what *happens to* a federation, a control schedule models what an operator
*does to* it: drain a replica ahead of maintenance, restore it afterwards,
promote a warm standby into the serving tier.

Tapes are plain data (no RNG): operator actions are scripted incidents, so
the same schedule replays byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class ControlEventKind(str, Enum):
    """What the operator does to a server's SRV advertisement."""

    SET_WEIGHT = "set-weight"
    """Re-weight the server's SRV records to ``value`` (RFC 2782 weight)."""

    DRAIN = "drain"
    """Weight the server to 0: healthy but last-resort, so live traffic
    moves to its pool mates as client caches converge (maintenance prep)."""

    UNDRAIN = "undrain"
    """Restore a drained server's pre-drain weight (or ``value`` if given)."""

    PROMOTE = "promote"
    """Move the server to priority tier ``value`` (lower serves first) —
    e.g. promote a warm standby from tier 1 into serving tier 0."""


_VALUE_REQUIRED = (ControlEventKind.SET_WEIGHT, ControlEventKind.PROMOTE)


@dataclass(frozen=True, slots=True)
class ControlEvent:
    """One operator action at one simulated instant."""

    at_seconds: float
    kind: ControlEventKind
    server_id: str
    value: int | None = None
    """The new weight (``set-weight``/optionally ``undrain``) or the new
    priority tier (``promote``); unused by ``drain``."""

    def __post_init__(self) -> None:
        if self.at_seconds < 0.0:
            raise ValueError("control events cannot predate the run")
        if self.kind in _VALUE_REQUIRED and self.value is None:
            raise ValueError(f"{self.kind.value} events need a value")
        if self.value is not None and self.value < 0:
            raise ValueError("SRV weights and priorities cannot be negative")


@dataclass(frozen=True)
class ControlSchedule:
    """A time-ordered tape of operator actions over federation servers."""

    events: tuple[ControlEvent, ...] = ()

    def __post_init__(self) -> None:
        # Sort by time ONLY, and rely on sort stability: same-instant events
        # keep their authored order, so an operator can express "set the
        # weight, THEN drain" at one instant and get exactly that.  (Churn
        # tapes tie-break arbitrarily because their same-instant events
        # never depend on each other; control actions routinely do.)
        ordered = tuple(sorted(self.events, key=lambda e: e.at_seconds))
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def horizon_seconds(self) -> float:
        return self.events[-1].at_seconds if self.events else 0.0

    @property
    def servers(self) -> tuple[str, ...]:
        return tuple(sorted({event.server_id for event in self.events}))

    def events_for(self, server_id: str) -> tuple[ControlEvent, ...]:
        return tuple(event for event in self.events if event.server_id == server_id)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_events(
        cls, events: list[ControlEvent] | tuple[ControlEvent, ...]
    ) -> "ControlSchedule":
        """A schedule from an explicit event list (scripted incident)."""
        return cls(tuple(events))

    @classmethod
    def drain_window(
        cls,
        server_id: str,
        drain_at_seconds: float,
        undrain_at_seconds: float | None = None,
    ) -> "ControlSchedule":
        """The canonical maintenance tape: drain, and optionally restore."""
        events = [ControlEvent(drain_at_seconds, ControlEventKind.DRAIN, server_id)]
        if undrain_at_seconds is not None:
            if undrain_at_seconds <= drain_at_seconds:
                raise ValueError("undrain must come after the drain")
            events.append(
                ControlEvent(undrain_at_seconds, ControlEventKind.UNDRAIN, server_id)
            )
        return cls(tuple(events))
