"""The client's view of SRV priority/weight data, with staleness semantics.

Operators re-weight live replicas (:class:`repro.control.plane.ControlPlane`),
but clients must not see the change instantly: in a real deployment the new
SRV records only reach a device once every cache between it and the
authority — its own discovery cache and its resolver pool's DNS cache — has
expired and been refilled.  :class:`DeviceSrvView` encodes exactly that: it
prefers the (possibly stale) per-server ``(priority, weight)`` pairs the
device's :class:`~repro.discovery.discoverer.Discoverer` decoded out of the
discovery answers it actually received, and falls back to the federation's
live values only for servers the device has never resolved (bootstrap and
directly-scripted tests, where there is no cached answer to be stale).

The workload engine measures *time to converge* — how long after a control
event each device's view catches up — through this class.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Iterator


class DeviceSrvView(Mapping):
    """Per-device ``server_id -> (priority, weight)``, stale until refreshed."""

    __slots__ = ("_discovered", "_fallback")

    def __init__(
        self,
        discovered: Mapping[str, tuple[int, int]],
        fallback: Mapping[str, tuple[int, int]] | None = None,
    ) -> None:
        self._discovered = discovered
        self._fallback = fallback if fallback is not None else {}

    def __getitem__(self, server_id: str) -> tuple[int, int]:
        hit = self._discovered.get(server_id)
        if hit is not None:
            return hit
        return self._fallback[server_id]

    def get(self, server_id: str, default=None):
        hit = self._discovered.get(server_id)
        if hit is not None:
            return hit
        return self._fallback.get(server_id, default)

    def __contains__(self, server_id: object) -> bool:
        return server_id in self._discovered or server_id in self._fallback

    def __iter__(self) -> Iterator[str]:
        seen = set(self._discovered)
        yield from self._discovered
        for server_id in self._fallback:
            if server_id not in seen:
                yield server_id

    def __len__(self) -> int:
        return len(set(self._discovered) | set(self._fallback))

    def is_stale(self, server_id: str) -> bool:
        """True if the device holds a cached value that disagrees with the
        federation's live advertisement — the window convergence measures."""
        held = self._discovered.get(server_id)
        if held is None:
            return False
        return self._fallback.get(server_id, held) != held
