"""The operator control plane: mutate live federation SRV state safely.

:class:`ControlPlane` is the deployment-side actor operators use to reshape
traffic *while clients are live*:

* :meth:`ControlPlane.set_weight` — change a server's RFC 2782 SRV weight.
  The new weight propagates through the
  :class:`~repro.discovery.registry.DiscoveryRegistry` (records re-emitted
  add-before-remove, so the spatial names never stop resolving — no
  NXDOMAIN window) and survives crash/expire/revive exactly as the
  registration-time weights do.
* :meth:`ControlPlane.drain` / :meth:`ControlPlane.undrain` — the
  maintenance idiom: weight 0 makes a replica healthy-but-last-resort per
  :func:`repro.churn.failover.rfc2782_order`, so its live traffic moves to
  pool mates as client caches converge, with zero failed requests; undrain
  restores the remembered pre-drain weight.
* :meth:`ControlPlane.promote` — move a server between strict priority
  tiers (e.g. a warm standby from tier 1 into serving tier 0).

Mutations are immediate at the authority; *clients* converge only as their
discovery-cache and DNS-TTL entries expire (see
:class:`repro.control.view.DeviceSrvView`), which is precisely the
operational lag the workload engine's ``control_stats`` measure.

With a :class:`~repro.control.schedule.ControlSchedule` attached the plane
doubles as the scripted-incident player, mirroring
:class:`repro.churn.controller.ChurnController`: :meth:`apply_until` applies
every due event, recording an :class:`AppliedControlEvent` per action
(``applied=False`` for actions the federation rejected, e.g. an unknown
server or draining a group's last positive weight).

Programmatic controllers (the autoscaler) use :meth:`apply_batch` instead
of a schedule: a list of :class:`ControlOp` values applied together at one
instant, with the same record-don't-raise semantics — one decision cycle
lands as one audited batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.churn.replicas import DEFAULT_REPLICA_WEIGHT
from repro.control.schedule import ControlEventKind, ControlSchedule
from repro.core.errors import FederationConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.federation import Federation


@dataclass(frozen=True, slots=True)
class ControlOp:
    """One imperative operator action, ready for :meth:`ControlPlane.apply_batch`.

    ``value`` is the weight for ``SET_WEIGHT``/``UNDRAIN`` (``None`` lets
    undrain restore the remembered pre-drain weight) and the target tier
    for ``PROMOTE``; ``DRAIN`` ignores it.
    """

    kind: ControlEventKind
    server_id: str
    value: int | None = None


@dataclass(frozen=True, slots=True)
class AppliedControlEvent:
    """One operator action the plane performed (or had rejected)."""

    at_seconds: float
    kind: str
    server_id: str
    applied: bool = True
    priority: int = 0
    weight: int = 0
    """The server's SRV ``(priority, weight)`` *after* the action — the
    convergence target the workload engine tracks each device against."""


@dataclass
class ControlPlane:
    """Drives deliberate SRV mutations through a live federation."""

    federation: "Federation"
    schedule: ControlSchedule | None = None
    applied: list[AppliedControlEvent] = field(default_factory=list)
    _cursor: int = 0
    _predrain_weights: dict[str, int] = field(default_factory=dict)
    """Weight each drained server carried before its drain, so
    :meth:`undrain` restores the operator's intent, not a guess."""

    # ------------------------------------------------------------------
    # Imperative operator API
    # ------------------------------------------------------------------
    def set_weight(self, server_id: str, weight: int) -> tuple[int, int]:
        """Re-weight a live server's SRV records; returns its new (p, w).

        A positive weight also clears any remembered pre-drain weight: the
        operator has explicitly chosen a new one.
        """
        priority, new_weight = self.federation.set_srv(server_id, weight=weight)
        if weight > 0:
            self._predrain_weights.pop(server_id, None)
        return (priority, new_weight)

    def drain(self, server_id: str) -> tuple[int, int]:
        """Weight a server to 0 (healthy-but-last-resort), remembering the
        previous weight for :meth:`undrain`."""
        _, previous = self.federation.srv_of(server_id)
        result = self.federation.set_srv(server_id, weight=0)
        if previous > 0:
            self._predrain_weights[server_id] = previous
        return result

    def undrain(self, server_id: str, weight: int | None = None) -> tuple[int, int]:
        """Restore a drained server's pre-drain weight (or an explicit one).

        A server never drained through this plane (or drained from weight 0)
        comes back at :data:`~repro.churn.replicas.DEFAULT_REPLICA_WEIGHT`.
        The remembered weight is consumed only once the restore actually
        lands — a rejected undrain (e.g. the server is gone right now) keeps
        the memory for a later retry.
        """
        if weight is None:
            weight = self._predrain_weights.get(server_id, DEFAULT_REPLICA_WEIGHT)
        result = self.federation.set_srv(server_id, weight=weight)
        self._predrain_weights.pop(server_id, None)
        return result

    def promote(self, server_id: str, priority: int) -> tuple[int, int]:
        """Move a server to a (usually lower-numbered) priority tier."""
        return self.federation.set_srv(server_id, priority=priority)

    def is_drained(self, server_id: str) -> bool:
        return self.federation.srv_of(server_id)[1] == 0

    @property
    def pending_events(self) -> int:
        if self.schedule is None:
            return 0
        return len(self.schedule.events) - self._cursor

    # ------------------------------------------------------------------
    # Shared application core
    # ------------------------------------------------------------------
    def _perform(
        self,
        at_seconds: float,
        kind: ControlEventKind,
        server_id: str,
        value: int | None,
    ) -> AppliedControlEvent:
        """Apply one action, returning its audit record.

        An action the live federation rejects (unknown server, draining a
        group's last positive weight) is recorded with ``applied=False``,
        not raised: tapes keep playing and controller batches keep landing,
        mirroring the churn controller's inapplicable events.
        """
        try:
            if kind == ControlEventKind.SET_WEIGHT:
                priority, weight = self.set_weight(server_id, value)
            elif kind == ControlEventKind.DRAIN:
                priority, weight = self.drain(server_id)
            elif kind == ControlEventKind.UNDRAIN:
                priority, weight = self.undrain(server_id, value)
            else:
                priority, weight = self.promote(server_id, value)
        except (FederationConfigError, ValueError):
            # Record the server's *live* SRV state, not a fabricated (0, 0):
            # a later op in the same batch (or a replaying audit consumer)
            # must see the true convergence target even for rejected ops.
            # Unknown / undeployed servers have no live state — keep (0, 0).
            try:
                priority, weight = self.federation.srv_of(server_id)
            except FederationConfigError:
                priority, weight = 0, 0
            return AppliedControlEvent(
                at_seconds,
                kind.value,
                server_id,
                applied=False,
                priority=priority,
                weight=weight,
            )
        return AppliedControlEvent(
            at_seconds, kind.value, server_id, priority=priority, weight=weight
        )

    def apply_batch(self, now: float, ops: Sequence[ControlOp]) -> list[AppliedControlEvent]:
        """Apply a batch of imperative ops at one instant, in order.

        The batch is a controller's one decision cycle (e.g. two ramp
        steps plus a promotion): every op is attempted — a rejected op is
        recorded ``applied=False`` and does not stop the rest — and all
        records land in :attr:`applied` together, so the audit trail shows
        which cycle issued what.  Returns the batch's records.
        """
        performed = [self._perform(now, op.kind, op.server_id, op.value) for op in ops]
        self.applied.extend(performed)
        return performed

    # ------------------------------------------------------------------
    # Scheduled application (round boundaries, via the workload engine)
    # ------------------------------------------------------------------
    def apply_until(self, now: float) -> list[AppliedControlEvent]:
        """Apply every scheduled action due at or before ``now``."""
        if self.schedule is None:
            return []
        performed: list[AppliedControlEvent] = []
        events = self.schedule.events
        while self._cursor < len(events) and events[self._cursor].at_seconds <= now:
            event = events[self._cursor]
            self._cursor += 1
            performed.append(
                self._perform(event.at_seconds, event.kind, event.server_id, event.value)
            )
        self.applied.extend(performed)
        return performed
