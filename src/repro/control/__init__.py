"""The operator control plane: live SRV re-weighting, drains and standbys.

The churn subsystem (:mod:`repro.churn`) models what *happens to* a
federation; this package models what an operator *does to* one while
clients are live:

* :mod:`repro.control.plane` — :class:`ControlPlane`: ``set_weight`` /
  ``drain`` / ``undrain`` / ``promote`` against a running
  :class:`repro.core.federation.Federation`, with records re-emitted at the
  authority add-before-remove (no NXDOMAIN window) and weights preserved
  across crash/expire/revive.
* :mod:`repro.control.schedule` — :class:`ControlSchedule`: deterministic
  operator-action tapes the workload engine applies at round boundaries,
  mirroring :class:`repro.churn.schedule.ChurnSchedule`.
* :mod:`repro.control.view` — :class:`DeviceSrvView`: the client's
  possibly-stale ``(priority, weight)`` view, refreshed only as its
  discovery-cache/DNS-TTL entries expire — the convergence lag
  ``WorkloadReport.control_stats`` measures.
"""

from repro.control.plane import AppliedControlEvent, ControlOp, ControlPlane
from repro.control.schedule import ControlEvent, ControlEventKind, ControlSchedule
from repro.control.view import DeviceSrvView

__all__ = [
    "AppliedControlEvent",
    "ControlEvent",
    "ControlEventKind",
    "ControlOp",
    "ControlPlane",
    "ControlSchedule",
    "DeviceSrvView",
]
