"""The event heap at the core of the workload engine's simulation loop.

The engine schedules everything that happens to a running fleet — churn
tape application, operator control actions, per-device (or per-cohort)
request work, and the end-of-round expiry/rediscovery/convergence
observations — as events on one binary heap ordered by simulated time.
Same-instant events are ordered by :class:`EventKind` rank and then by a
monotone sequence number, so the pop order of a round's events is exactly
the legacy round loop's statement order: churn, control, round begin,
devices in fleet order, round end.  That total order is what makes the
event-driven engine byte-identical to the legacy loop at small fleet
sizes while letting large fleets swap per-device events for batched
cohort events.

Churn and control tapes carry their own event times; the engine applies
them at the first round boundary at or after those times (via the
controllers' ``apply_until``), which is the documented round-granularity
semantic both engines share: a server is up or down for a whole round,
never half of one.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any, Callable, Iterable

RoundObserver = Callable[[int, float], None]
"""A round-boundary hook: called with ``(round_index, now_seconds)`` after
each round's end-of-round observations, by both engine loops.  Observers
must not mutate engine state — they exist so subsystems like telemetry can
snapshot at round granularity without either loop knowing about them."""


def notify_round_end(observers: Iterable[RoundObserver], round_index: int, now_seconds: float) -> None:
    """Invoke each round observer in registration order.

    Shared by the legacy and event-driven loops so the two engines expose
    byte-identical observation points: same round indices, same clock
    instants, same ordering relative to the round's own bookkeeping.
    """
    for observer in observers:
        observer(round_index, now_seconds)


class EventKind(IntEnum):
    """Event families, ranked by their order within one simulated instant."""

    FAULT = 0
    """Apply due fault-tape events (round boundary).  Faults rank first:
    a disaster that strikes at a round boundary is in force before churn,
    operators or any device of that round react to the world."""

    CHURN = 1
    """Apply due membership-churn tape events (round boundary)."""

    CONTROL = 2
    """Apply due operator control tape events (round boundary)."""

    ROUND_BEGIN = 3
    """Start a fleet round: schedules the round's device/cohort events."""

    DEVICE = 4
    """One device advances and issues one request (exact path)."""

    COHORT = 5
    """One cohort's tracers advance and issue, phantoms charged in batch."""

    ROUND_END = 6
    """Advance the round clock, run expiry/rediscovery/convergence
    observations, and schedule the next round if any remain."""


@dataclass(frozen=True, slots=True)
class Event:
    """One scheduled occurrence: when, what, and an optional payload."""

    at_seconds: float
    kind: EventKind
    seq: int
    payload: Any = None

    @property
    def sort_key(self) -> tuple[float, int, int]:
        return (self.at_seconds, int(self.kind), self.seq)


@dataclass
class EventHeap:
    """A deterministic min-heap of :class:`Event`s.

    Orders by ``(time, kind rank, insertion sequence)``; the sequence
    number makes same-time, same-kind events FIFO, which is how per-device
    events preserve fleet order without any secondary bookkeeping.
    """

    _heap: list[tuple[tuple[float, int, int], Event]] = field(default_factory=list)
    _seq: int = 0

    def push(self, at_seconds: float, kind: EventKind, payload: Any = None) -> Event:
        event = Event(at_seconds, kind, self._seq, payload)
        self._seq += 1
        heapq.heappush(self._heap, (event.sort_key, event))
        return event

    def pop(self) -> Event:
        return heapq.heappop(self._heap)[1]

    def peek(self) -> Event | None:
        return self._heap[0][1] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
