"""The workload engine: run a fleet of clients against one federation.

The engine owns nothing but orchestration: it builds one
:class:`repro.core.client.OpenFlameClient` per simulated device (so every
device has its own discovery and tile caches), assigns each a mobility model
and a seed-derived RNG, and then interleaves the fleet step by step issuing a
mixed request workload.  All latency comes from the federation's simulated
network, and per-service latency is recorded into percentile histograms so a
run can report tail latency (p50/p95/p99) alongside cache hit-rates.

Everything is deterministic: the same scenario and :class:`WorkloadConfig`
produce byte-identical :meth:`WorkloadReport.snapshot` dictionaries.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.churn.controller import ChurnController
from repro.churn.failover import FailoverRecorder
from repro.churn.schedule import ChurnSchedule
from repro.control.plane import ControlPlane
from repro.control.schedule import ControlSchedule
from repro.core.client import OpenFlameClient
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import LatLng
from repro.localization.cues import CueBundle, GnssCue
from repro.services.routing import FederatedRoutingError
from repro.simulation.metrics import MetricsRegistry
from repro.simulation.queueing import load_cv
from repro.workload.mobility import (
    AisleWalk,
    CommuterHandoff,
    CommuterTrace,
    MobilityModel,
    RandomWaypoint,
)
from repro.workload.traffic import RequestKind, RequestMix, ZipfSampler
from repro.worldgen.scenario import FederatedScenario

_CLIENT_SEED_STRIDE = 1_000_003
"""Prime stride separating per-client RNG streams derived from one seed."""


@dataclass(frozen=True)
class PointOfInterest:
    """One named place requests can target, ranked by popularity."""

    name: str
    location: LatLng
    store_index: int | None = None


@dataclass(frozen=True)
class WorkloadConfig:
    """Tunables of one workload run."""

    clients: int = 25
    steps: int = 8
    seed: int = 0
    mix: RequestMix = field(default_factory=RequestMix)
    zipf_exponent: float = 1.0
    search_radius_meters: float = 350.0
    viewport_meters: float = 120.0
    tile_zoom: int = 17
    gnss_error_meters: float = 12.0
    step_seconds: float = 2.0
    """Wall-clock pacing between fleet rounds (thinking/walking time)."""
    resolver_pools: int = 1
    """Recursive resolvers to shard the fleet across (round-robin).  One pool
    is the historical single-shared-resolver deployment; more pools model
    regional resolver deployments, each with its own DNS cache."""
    long_traces: bool = False
    """Give the fleet's commuter cohort scripted multi-stop journeys
    (:class:`~repro.workload.mobility.CommuterTrace`) instead of the fast
    ping-pong handoff.  With dwell times, a circuit spans multiple
    registration/discovery TTLs of simulated time, so commuters re-enter
    zones with every cache layer gone stale."""
    trace_dwell_steps: int = 3
    """Steps a long-trace commuter dwells at each stop (``long_traces``
    only).  Bigger dwells stretch the journey across more TTL windows."""
    churn: ChurnSchedule | None = None
    """Membership churn applied while the fleet runs: the engine plays the
    schedule through a :class:`~repro.churn.controller.ChurnController` at
    round boundaries, so crashes/leaves/rejoins land between concurrent
    rounds exactly as TTL expiry does."""
    churn_lease_seconds: float | None = None
    """Registration-lease override for crashed servers (``None`` uses the
    federation's ``registration_ttl_seconds``)."""
    control: ControlSchedule | None = None
    """Operator actions applied while the fleet runs: the engine plays the
    tape through a :class:`~repro.control.plane.ControlPlane` at round
    boundaries (same granularity as churn), then tracks each device's
    stale SRV view until it converges on the new advertisement —
    ``WorkloadReport.control_stats`` reports the convergence tail."""

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ValueError("a workload needs at least one client")
        if self.steps < 1:
            raise ValueError("a workload needs at least one step")
        if self.step_seconds < 0.0:
            raise ValueError("step pacing cannot be negative")
        if self.resolver_pools < 1:
            raise ValueError("a workload needs at least one resolver pool")
        if self.trace_dwell_steps < 0:
            raise ValueError("trace dwell steps cannot be negative")


@dataclass
class FleetClient:
    """One simulated device: client stack + mobility + its own RNG stream."""

    index: int
    client: OpenFlameClient
    mobility: MobilityModel
    rng: random.Random
    net_rng: random.Random | None = None
    """Jitter/loss RNG stream for this device's network exchanges (only set
    when the federation's latency model is stochastic)."""
    position: LatLng = field(init=False)

    def __post_init__(self) -> None:
        self.position = self.mobility.reset(self.rng)

    def advance(self) -> LatLng:
        self.position = self.mobility.step(self.rng)
        return self.position


@dataclass
class WorkloadReport:
    """The outcome of one workload run."""

    metrics: MetricsRegistry
    requests: int
    errors: int
    discovery_cache_hits: int
    discovery_cache_misses: int
    tile_cache_hits: int
    tile_cache_misses: int
    dns_cache_hit_rate: float
    simulated_seconds: float
    server_stats: dict[str, dict[str, float]] = field(default_factory=dict)
    """Per-map-server load-model snapshot (utilization, queue depth, drops,
    workers); empty when the federation runs without a server-side queue
    model."""
    dns_pool_hit_rates: tuple[float, ...] = ()
    """Hit rate of each shared regional resolver pool, in pool order."""
    failover: FailoverRecorder = field(default_factory=FailoverRecorder)
    """Fleet-aggregated failover accounting (attempts, failed chains, stale
    attempts, failover latencies)."""
    failed_requests: int = 0
    """Client requests that got no service at all: every map-server chain
    they tried exhausted its replicas (or routing found nothing to stitch)."""
    churn_events_applied: int = 0
    rediscoveries: int = 0
    rejoins_unseen: int = 0
    """Rejoined servers that saw no traffic again before the run ended."""
    replica_groups: dict[str, tuple[str, ...]] = field(default_factory=dict)
    """Replica-group membership at the end of the run (group id → server
    ids), used to fold ``server_stats`` into per-group balance metrics."""
    control_stats: dict[str, float] = field(default_factory=dict)
    """Operator-control-plane outcome: events applied/rejected, devices whose
    stale SRV view was tracked, and the time-to-converge tail (p50/p95 of
    seconds from a control event landing at the authority to each tracked
    device's view catching up).  Empty when the run had no control tape."""

    @property
    def discovery_cache_hit_rate(self) -> float:
        total = self.discovery_cache_hits + self.discovery_cache_misses
        return self.discovery_cache_hits / total if total else 0.0

    @property
    def tile_cache_hit_rate(self) -> float:
        total = self.tile_cache_hits + self.tile_cache_misses
        return self.tile_cache_hits / total if total else 0.0

    def latency_percentiles(self, service: str = "all") -> dict[str, float]:
        # Read without the creating accessor: querying a service that saw no
        # traffic must not grow the registry (snapshots stay deterministic).
        histogram = self.metrics.histograms.get(f"latency_ms.{service}")
        if histogram is None:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {"p50": histogram.p50, "p95": histogram.p95, "p99": histogram.p99}

    @property
    def dropped_requests(self) -> int:
        """Requests shed by overloaded map servers across the whole run."""
        return int(sum(stats.get("dropped", 0.0) for stats in self.server_stats.values()))

    def group_load_cvs(self) -> dict[str, float]:
        """Per-replica-group coefficient of variation of replica utilization.

        0.0 is a perfectly balanced group; the first-healthy funnel over an
        all-healthy 4-replica group reads ≈1.73 (one replica serves, three
        idle).  Groups without queue-model stats are skipped.
        """
        cvs: dict[str, float] = {}
        for group_id, server_ids in sorted(self.replica_groups.items()):
            loads = [
                self.server_stats[server_id].get("utilization", 0.0)
                for server_id in server_ids
                if server_id in self.server_stats
            ]
            if len(loads) >= 2:
                cvs[group_id] = load_cv(loads)
        return cvs

    @property
    def replica_load_cv(self) -> float:
        """The run's balance headline: mean utilization CV over replica groups."""
        cvs = self.group_load_cvs()
        return sum(cvs.values()) / len(cvs) if cvs else 0.0

    @property
    def failed_request_rate(self) -> float:
        """Fraction of client requests that got no service at all."""
        total = self.requests + self.errors
        return self.failed_requests / total if total else 0.0

    def availability(self) -> dict[str, float]:
        """The run's availability metrics in one flat dict."""
        recorder = self.failover
        failover_tail = self.latency_percentiles("failover")
        rediscovery = self.metrics.summaries.get("availability.rediscovery_seconds")
        return {
            "failed_requests": float(self.failed_requests),
            "failed_request_rate": self.failed_request_rate,
            "request_chains": float(recorder.chains),
            "failed_chains": float(recorder.chains_failed),
            "failed_chain_rate": recorder.failed_chain_rate,
            "stale_attempts": float(recorder.stale_attempts),
            "stale_attempt_rate": recorder.stale_attempt_rate,
            "failovers": float(recorder.failovers),
            "backoff_ms_total": recorder.backoff_ms_total,
            "dead_detections_own": float(recorder.dead_detections_own),
            "dead_detections_shared": float(recorder.dead_detections_shared),
            "detect_mean_ms": recorder.detect_mean_ms,
            "failover_p50_ms": failover_tail["p50"],
            "failover_p95_ms": failover_tail["p95"],
            "failover_p99_ms": failover_tail["p99"],
            "churn_events_applied": float(self.churn_events_applied),
            "rediscoveries": float(self.rediscoveries),
            "rejoins_unseen": float(self.rejoins_unseen),
            "rediscovery_seconds_mean": rediscovery.mean if rediscovery is not None else 0.0,
            "rediscovery_seconds_max": (
                rediscovery.maximum if rediscovery is not None and rediscovery.count else 0.0
            ),
        }

    def snapshot(self) -> dict[str, float]:
        """One flat, deterministic dict describing the whole run."""
        data = dict(sorted(self.metrics.snapshot().items()))
        data["requests"] = float(self.requests)
        data["errors"] = float(self.errors)
        data["discovery_cache.hit_rate"] = self.discovery_cache_hit_rate
        data["tile_cache.hit_rate"] = self.tile_cache_hit_rate
        data["dns_cache.hit_rate"] = self.dns_cache_hit_rate
        data["simulated_seconds"] = self.simulated_seconds
        for server_id in sorted(self.server_stats):
            for stat, value in sorted(self.server_stats[server_id].items()):
                data[f"server.{server_id}.{stat}"] = value
        for pool_index, hit_rate in enumerate(self.dns_pool_hit_rates):
            data[f"dns_pool.{pool_index}.hit_rate"] = hit_rate
        for key, value in sorted(self.availability().items()):
            data[f"availability.{key}"] = value
        for group_id, cv in self.group_load_cvs().items():
            data[f"balance.{group_id}.util_cv"] = cv
        data["balance.replica_load_cv"] = self.replica_load_cv
        for key, value in sorted(self.control_stats.items()):
            data[f"control.{key}"] = value
        return data


class WorkloadEngine:
    """Drives a fleet of simulated clients through a federated scenario."""

    def __init__(
        self,
        scenario: FederatedScenario,
        config: WorkloadConfig | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.scenario = scenario
        self.config = config or WorkloadConfig()
        self.metrics = metrics or MetricsRegistry()
        self.pois = self._build_poi_pool()
        self._poi_sampler: ZipfSampler[PointOfInterest] = ZipfSampler(
            self.pois, self.config.zipf_exponent
        )
        self.fleet = self._build_fleet()
        self.churn_controller: ChurnController | None = None
        if self.config.churn is not None:
            self.churn_controller = ChurnController(
                federation=scenario.federation,
                schedule=self.config.churn,
                lease_seconds=self.config.churn_lease_seconds,
            )
        # Rejoined servers whose return traffic has not been seen yet:
        # server_id -> (rejoin instant, served-requests baseline).
        self._pending_rediscovery: dict[str, tuple[float, int]] = {}
        self.control_plane: ControlPlane | None = None
        if self.config.control is not None:
            self.control_plane = ControlPlane(
                federation=scenario.federation, schedule=self.config.control
            )
        # Devices holding a stale SRV view of a re-weighted server:
        # (device index, server_id) -> (event instant, target (prio, weight)).
        self._pending_convergence: dict[tuple[int, str], tuple[float, tuple[int, int]]] = {}
        self._devices_tracked = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_poi_pool(self) -> list[PointOfInterest]:
        """All POIs requests can target, in a deterministic popularity order.

        Products from every store are interleaved with the city POIs so the
        popular head of the Zipf distribution spans several map servers.
        """
        pois: list[PointOfInterest] = []
        for store_index, store in enumerate(self.scenario.stores):
            for name in sorted(store.product_locations):
                pois.append(
                    PointOfInterest(name, store.product_locations[name], store_index)
                )
        for name in sorted(self.scenario.city.poi_locations):
            pois.append(PointOfInterest(name, self.scenario.city.poi_locations[name]))
        if not pois:
            raise ValueError("scenario has no POIs to build a workload from")
        # Deterministic popularity shuffle so rank is not correlated with
        # store order.
        random.Random(self.config.seed).shuffle(pois)
        return pois

    def _build_fleet(self) -> list[FleetClient]:
        stores = self.scenario.stores
        city_bounds = self.scenario.city.bounds
        commute_stops = [store.entrance for store in stores[:2]]
        if len(commute_stops) < 2:
            commute_stops = [
                city_bounds.south_west,
                stores[0].entrance if stores else city_bounds.north_east,
            ]
        # Long traces tour the whole city: every store plus the far corners,
        # so a circuit crosses each coverage boundary and — with dwell —
        # outlives the registration TTLs.
        trace_stops = [store.entrance for store in stores] + [
            city_bounds.south_west,
            city_bounds.north_east,
        ]

        federation = self.scenario.federation
        pools = federation.resolver_pool(self.config.resolver_pools)
        stochastic = federation.network.latency.is_stochastic

        fleet: list[FleetClient] = []
        for index in range(self.config.clients):
            mobility: MobilityModel
            if stores and index % 3 == 1:
                mobility = AisleWalk(stores[(index // 3) % len(stores)])
            elif index % 3 == 2:
                if self.config.long_traces:
                    mobility = CommuterTrace(
                        list(trace_stops), dwell_steps=self.config.trace_dwell_steps
                    )
                else:
                    mobility = CommuterHandoff(list(commute_stops))
            else:
                mobility = RandomWaypoint(city_bounds)
            client_seed = self.config.seed + _CLIENT_SEED_STRIDE * (index + 1)
            fleet.append(
                FleetClient(
                    index=index,
                    client=federation.client(
                        stub_resolver=pools[index % len(pools)],
                        # A distinct weighted-selection stream per device:
                        # replica draws must not depend on fleet interleaving.
                        selection_seed=client_seed ^ 0xD15C,
                    ),
                    mobility=mobility,
                    rng=random.Random(client_seed),
                    # A distinct stream per device: network draws must not
                    # depend on how the fleet's requests interleave.
                    net_rng=random.Random(client_seed ^ 0x5EED) if stochastic else None,
                )
            )
        return fleet

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> WorkloadReport:
        """Run the configured number of steps across the whole fleet.

        Clients within one round act *concurrently*: each runs serially from
        the same simulated instant and the clock is rewound between them, so
        a round advances time by its slowest request (plus the configured
        inter-round pacing) rather than by the sum over the whole fleet.
        Without this, large fleets would spuriously age every TTL between one
        client's consecutive requests.
        """
        network = self.scenario.federation.network
        clock = network.clock
        started_at = clock.now()
        try:
            for _ in range(self.config.steps):
                self._apply_churn(clock.now())
                self._apply_control(clock.now())
                round_start = clock.now()
                slowest = 0.0
                for device in self.fleet:
                    device.advance()
                    kind = self.config.mix.sample(device.rng)
                    self._issue(device, kind)
                    slowest = max(slowest, clock.now() - round_start)
                    clock.rewind_to(round_start)
                clock.advance(slowest + self.config.step_seconds)
                self._observe_rediscoveries(clock.now())
                self._observe_convergence(clock.now())
        finally:
            # Leave the shared network on its default jitter stream: direct
            # (non-fleet) use after a run must not inherit the last device's.
            network.set_jitter_stream(None)
        return self._report(clock.now() - started_at)

    # ------------------------------------------------------------------
    # Churn
    # ------------------------------------------------------------------
    def _apply_churn(self, now: float) -> None:
        """Apply due membership events at a round boundary.

        Events land *between* concurrent rounds — the same granularity at
        which the round clock advances — so a server is either up or down
        for a whole round, never half of one.
        """
        if self.churn_controller is None:
            return
        federation = self.scenario.federation
        for event in self.churn_controller.apply_until(now):
            if not event.applied:
                continue
            self.metrics.counter(f"churn.{event.kind}").increment()
            if event.kind == "join":
                server = federation.servers.get(event.server_id)
                baseline = server.stats.total_requests if server is not None else 0
                self._pending_rediscovery[event.server_id] = (event.at_seconds, baseline)

    def _observe_rediscoveries(self, now: float) -> None:
        """Check whether rejoined servers have been found by clients again.

        Time-to-rediscovery is measured at round granularity: the first
        round after which a rejoined server's served-request counter moved.
        """
        if not self._pending_rediscovery:
            return
        federation = self.scenario.federation
        found: list[str] = []
        for server_id, (rejoined_at, baseline) in self._pending_rediscovery.items():
            server = federation.servers.get(server_id)
            if server is None:  # crashed again before being rediscovered
                continue
            if server.stats.total_requests > baseline:
                self.metrics.summary("availability.rediscovery_seconds").observe(
                    now - rejoined_at
                )
                found.append(server_id)
        for server_id in found:
            del self._pending_rediscovery[server_id]

    # ------------------------------------------------------------------
    # Operator control plane
    # ------------------------------------------------------------------
    def _apply_control(self, now: float) -> None:
        """Apply due operator actions at a round boundary, then start the
        convergence stopwatch for every device holding a stale view.

        A device is *tracked* only if it actually holds cached SRV data for
        the re-weighted server that disagrees with the new advertisement —
        devices that never resolved the server bootstrap straight onto the
        live values and have nothing to converge."""
        if self.control_plane is None:
            return
        for event in self.control_plane.apply_until(now):
            if not event.applied:
                self.metrics.counter("control.rejected").increment()
                continue
            self.metrics.counter(f"control.{event.kind}").increment()
            target = (event.priority, event.weight)
            for device in self.fleet:
                held = device.client.context.discoverer.srv_view.get(event.server_id)
                if held is None:
                    continue
                key = (device.index, event.server_id)
                if held == target:
                    # The newest advertisement matches what the device
                    # already holds (e.g. an undrain restored the weight
                    # before this device ever saw the drain): the change is
                    # invisible to it, so any stopwatch still running toward
                    # the now-obsolete value is voided, not left to report
                    # phantom non-convergence.
                    if self._pending_convergence.pop(key, None) is not None:
                        self._devices_tracked -= 1
                    continue
                if key not in self._pending_convergence:
                    self._devices_tracked += 1
                # A second event against the same server restarts the
                # stopwatch toward the *newest* advertisement.
                self._pending_convergence[key] = (now, target)

    def _observe_convergence(self, now: float) -> None:
        """Check tracked devices' SRV views against their targets.

        Time-to-converge is measured at round granularity, like rediscovery:
        the first round end at which the device's view — refreshed only by a
        fresh discovery once its cache entries lapsed — matches the new
        advertisement."""
        if not self._pending_convergence:
            return
        converged: list[tuple[int, str]] = []
        for (index, server_id), (since, target) in self._pending_convergence.items():
            view = self.fleet[index].client.context.discoverer.srv_view
            if view.get(server_id) == target:
                self.metrics.histogram("control.converge_seconds").observe(now - since)
                converged.append((index, server_id))
        for key in converged:
            del self._pending_convergence[key]

    def _issue(self, device: FleetClient, kind: RequestKind) -> None:
        network = self.scenario.federation.network
        if device.net_rng is not None:
            network.set_jitter_stream(device.net_rng)
        latency_before = network.stats.total_latency_ms
        recorder = device.client.context.failover
        chains_ok_before = recorder.chains_ok
        chains_failed_before = recorder.chains_failed
        issued = True
        try:
            if kind == RequestKind.SEARCH:
                self._do_search(device)
            elif kind == RequestKind.ROUTE:
                issued = self._do_route(device)
            elif kind == RequestKind.TILES:
                self._do_tiles(device)
            else:
                self._do_localize(device)
        except FederatedRoutingError:
            # Failed requests are counted separately; their (often short)
            # abort latency must not dilute the success-path percentiles.
            self.metrics.counter(f"errors.{kind.value}").increment()
            self.metrics.counter("availability.failed_requests").increment()
            return
        if recorder.chains_failed > chains_failed_before and recorder.chains_ok == chains_ok_before:
            # Every map server this request tried was unreachable or
            # overloaded past its whole replica chain: the user got nothing.
            self.metrics.counter("availability.failed_requests").increment()
        if not issued:
            # No traffic was generated; recording a request with 0 ms latency
            # would dilute the tail percentiles the benchmarks compare.  The
            # counter lives outside the "requests." namespace so _report's
            # prefix sum counts only real traffic.
            self.metrics.counter(f"skipped.{kind.value}").increment()
            return
        self.metrics.counter(f"requests.{kind.value}").increment()
        latency_ms = network.stats.total_latency_ms - latency_before
        self.metrics.histogram("latency_ms.all").observe(latency_ms)
        self.metrics.histogram(f"latency_ms.{kind.value}").observe(latency_ms)

    def _do_search(self, device: FleetClient) -> None:
        poi = self._poi_sampler.sample(device.rng)
        result = device.client.search(
            poi.name, near=poi.location, radius_meters=self.config.search_radius_meters
        )
        self.metrics.counter("search.results").increment(len(result))
        self.metrics.counter("dns.lookups").increment(result.dns_lookups)

    def _do_route(self, device: FleetClient) -> bool:
        """Route to a popular POI; returns False if no route was worth issuing.

        A shopper standing on the very shelf it would route to resamples a
        few times before giving up, so zero-length "routes" never happen.
        """
        for _ in range(4):
            poi = self._poi_sampler.sample(device.rng)
            if device.position.distance_to(poi.location) < 1.0:
                continue
            result = device.client.route(device.position, poi.location)
            self.metrics.histogram("route.length_meters").observe(result.length_meters)
            self.metrics.counter("dns.lookups").increment(result.dns_lookups)
            return True
        return False

    def _do_tiles(self, device: FleetClient) -> None:
        viewport = BoundingBox.around(device.position, self.config.viewport_meters)
        result = device.client.render_viewport(viewport, zoom=self.config.tile_zoom)
        self.metrics.counter("tiles.downloaded").increment(result.tiles_downloaded)
        self.metrics.counter("tiles.from_cache").increment(result.tiles_from_cache)
        self.metrics.counter("dns.lookups").increment(result.dns_lookups)

    def _do_localize(self, device: FleetClient) -> None:
        cues = self._sense(device)
        result = device.client.localize(device.position, cues)
        if result.best is not None:
            self.metrics.counter("localize.fixes").increment()
        self.metrics.counter("dns.lookups").increment(result.dns_lookups)

    def _sense(self, device: FleetClient) -> CueBundle:
        """What the device senses where it stands.

        Devices walking a store sense that store's beacons and imagery (the
        rich indoor bundle); everyone else has only a noisy satellite fix.
        """
        if isinstance(device.mobility, AisleWalk):
            store = device.mobility.store
            local = store.geographic_to_local(device.position)
            if store.contains_local(local):
                return store.sense_cues(local, device.rng)
        bearing = device.rng.uniform(0.0, 360.0)
        offset = abs(device.rng.gauss(0.0, self.config.gnss_error_meters))
        return CueBundle(
            gnss=GnssCue(
                device.position.destination(bearing, offset),
                accuracy_meters=self.config.gnss_error_meters,
            )
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _report(self, simulated_seconds: float) -> WorkloadReport:
        requests = sum(
            counter.value
            for name, counter in self.metrics.counters.items()
            if name.startswith("requests.")
        )
        errors = sum(
            counter.value
            for name, counter in self.metrics.counters.items()
            if name.startswith("errors.")
        )
        discovery_hits = discovery_misses = 0
        tile_hits = tile_misses = 0
        fleet_failover = FailoverRecorder()
        for device in self.fleet:
            stats = device.client.cache_stats()
            discovery_hits += int(stats["discovery.hits"])
            discovery_misses += int(stats["discovery.misses"])
            tile_hits += int(stats["tiles.hits"])
            tile_misses += int(stats["tiles.misses"])
            fleet_failover.merge_from(device.client.context.failover)
        if fleet_failover.failover_ms:
            # Failover latencies land in the shared registry so the snapshot
            # and latency_percentiles("failover") see them.
            self.metrics.histogram("latency_ms.failover").observe_many(
                fleet_failover.failover_ms
            )

        federation = self.scenario.federation
        server_stats: dict[str, dict[str, float]] = {}
        # Include servers currently offline: a server that crashed mid-run
        # keeps its accumulated load statistics in the books.
        for server_id, server in federation.all_servers.items():
            if server.queue is not None:
                server_stats[server_id] = server.queue.snapshot(
                    window_seconds=simulated_seconds
                )

        # Aggregate the DNS hit rate over every pool the fleet was sharded
        # across (pool 0 alone is the historical single-resolver number).
        pools = federation.resolver_pool(self.config.resolver_pools)
        pool_hit_rates = tuple(pool.recursive.cache.stats.hit_rate for pool in pools)
        answered = total = 0
        for pool in pools:
            stats = pool.recursive.cache.stats
            answered += stats.hits + stats.negative_hits
            total += stats.hits + stats.negative_hits + stats.misses
        failed_counter = self.metrics.counters.get("availability.failed_requests")
        churn_applied = 0
        if self.churn_controller is not None:
            churn_applied = sum(1 for event in self.churn_controller.applied if event.applied)
        rediscovery = self.metrics.summaries.get("availability.rediscovery_seconds")
        control_stats: dict[str, float] = {}
        if self.control_plane is not None:
            converge = self.metrics.histograms.get("control.converge_seconds")
            applied = sum(1 for event in self.control_plane.applied if event.applied)
            rejected = sum(1 for event in self.control_plane.applied if not event.applied)
            control_stats = {
                "events_applied": float(applied),
                "events_rejected": float(rejected),
                "devices_tracked": float(self._devices_tracked),
                "devices_converged": float(converge.count if converge is not None else 0),
                "devices_unconverged": float(len(self._pending_convergence)),
                "converge_p50_s": converge.p50 if converge is not None else 0.0,
                "converge_p95_s": converge.p95 if converge is not None else 0.0,
                "converge_mean_s": converge.mean if converge is not None else 0.0,
            }
        return WorkloadReport(
            metrics=self.metrics,
            requests=requests,
            errors=errors,
            discovery_cache_hits=discovery_hits,
            discovery_cache_misses=discovery_misses,
            tile_cache_hits=tile_hits,
            tile_cache_misses=tile_misses,
            dns_cache_hit_rate=answered / total if total else 0.0,
            simulated_seconds=simulated_seconds,
            server_stats=server_stats,
            dns_pool_hit_rates=pool_hit_rates,
            failover=fleet_failover,
            failed_requests=failed_counter.value if failed_counter is not None else 0,
            churn_events_applied=churn_applied,
            rediscoveries=rediscovery.count if rediscovery is not None else 0,
            rejoins_unseen=len(self._pending_rediscovery),
            replica_groups={
                group_id: group.server_ids
                for group_id, group in sorted(federation.replica_groups.items())
            },
            control_stats=control_stats,
        )
