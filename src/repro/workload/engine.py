"""The workload engine: run a fleet of clients against one federation.

The engine owns nothing but orchestration: it builds one
:class:`repro.core.client.OpenFlameClient` per simulated device (so every
device has its own discovery and tile caches), assigns each a mobility model
and a seed-derived RNG, and then drives the fleet through an event-driven
simulation: a single heap (:mod:`repro.workload.events`) of churn, control,
request and end-of-round observation events scheduled over the shared
:class:`~repro.simulation.clock.SimulatedClock`.  All latency comes from the
federation's simulated network, and per-service latency is recorded into
percentile histograms so a run can report tail latency (p50/p95/p99)
alongside cache hit-rates.

Small fleets run every device through the full client stack (the *exact*
path, byte-identical to the retained legacy round loop).  At
:attr:`WorkloadConfig.cohort_min_clients` and above the engine switches to
the cohort fast path (:mod:`repro.workload.cohort`): devices that are
statistically identical — same mobility family, same resolver pool, no
individual state — are represented by a few fully simulated *tracer*
devices plus integer phantom counts whose server-side load is charged in
batch, which is what lets one process reach 100k clients inside a smoke
budget and a million in a full sweep.

Everything is deterministic: the same scenario and :class:`WorkloadConfig`
produce byte-identical :meth:`WorkloadReport.snapshot` dictionaries.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.autoscale.policy import AutoscalerConfig
from repro.autoscale.scaler import Autoscaler
from repro.churn.controller import ChurnController
from repro.churn.failover import FailoverRecorder
from repro.churn.schedule import ChurnSchedule
from repro.control.plane import ControlPlane
from repro.control.schedule import ControlSchedule
from repro.core.client import OpenFlameClient
from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultPlan
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import LatLng
from repro.localization.cues import CueBundle, GnssCue
from repro.operator.api import OperatorApi
from repro.operator.client import (
    NetworkedControlPlayer,
    OperatorClient,
    OperatorControlAdapter,
)
from repro.operator.config import OperatorConfig
from repro.operator.permissions import ALL_PERMISSIONS, PrincipalRegistry
from repro.services.routing import FederatedRoutingError
from repro.simulation.metrics import MetricsRegistry
from repro.simulation.queueing import load_cv
from repro.spatialindex.cellid import CellId
from repro.telemetry import TelemetryConfig, TelemetryPipeline
from repro.workload.cohort import Cohort, plan_cohorts
from repro.workload.events import EventHeap, EventKind, RoundObserver, notify_round_end
from repro.workload.mobility import (
    AisleWalk,
    CommuterHandoff,
    CommuterTrace,
    MobilityModel,
    RandomWaypoint,
)
from repro.workload.traffic import RequestKind, RequestMix, ZipfSampler
from repro.worldgen.scenario import FederatedScenario

_CLIENT_SEED_STRIDE = 1_000_003
"""Prime stride separating per-client RNG streams derived from one seed."""

_SELECTION_SEED_SALT = 0xD15C
"""XOR salt deriving a device's RFC 2782 weighted-selection stream."""

_JITTER_SEED_SALT = 0x5EED
"""XOR salt deriving a device's network jitter/loss stream."""

_BACKOFF_SEED_SALT = 0xB0FF
"""XOR salt deriving a device's retry-backoff jitter stream."""

_OPERATOR_SEED_SALT = 0xC7A1
"""XOR salt deriving the operator console's control-hop jitter/loss stream
(bare run seed, not a device base, so it collides with no device stream
under the same argument as the POI shuffle)."""


def operator_seed(seed: int) -> int:
    """The operator client's network-draw stream seed for a run seed."""
    return seed ^ _OPERATOR_SEED_SALT


def client_base_seed(seed: int, index: int) -> int:
    """Device ``index``'s base (mobility/traffic) RNG seed for a run seed."""
    return seed + _CLIENT_SEED_STRIDE * (index + 1)


def derived_seed_streams(seed: int, index: int) -> dict[str, int]:
    """Every RNG stream seed derived for one device, by family.

    Collision-freedom argument (audited for 100k–1M-device fleets): base
    seeds are ``seed + stride·(i+1)`` with a stride of 1,000,003, so two
    distinct devices' base seeds differ by at least the stride.  The
    selection, jitter and backoff families are the base XOR a salt below
    2^16; two integers whose XOR is below 2^16 agree on every bit from 16
    up and so differ by less than 65,536 < stride.  Hence a salted seed
    can never collide with any *other* device's seed in the same or
    another family, and within one device the three salts (and their
    pairwise XORs) are non-zero, so all four streams are distinct.  The
    engine-level POI shuffle uses the bare run ``seed`` — device index −1
    under the same argument — and can collide with nothing either.
    ``tests/test_rng_streams.py`` asserts both the pairwise-distinctness
    and the salts-below-stride invariant this argument rests on.
    """
    base = client_base_seed(seed, index)
    return {
        "base": base,
        "selection": base ^ _SELECTION_SEED_SALT,
        "jitter": base ^ _JITTER_SEED_SALT,
        "backoff": base ^ _BACKOFF_SEED_SALT,
    }


@dataclass(frozen=True)
class PointOfInterest:
    """One named place requests can target, ranked by popularity."""

    name: str
    location: LatLng
    store_index: int | None = None


@dataclass(frozen=True)
class WorkloadConfig:
    """Tunables of one workload run."""

    clients: int = 25
    steps: int = 8
    seed: int = 0
    mix: RequestMix = field(default_factory=RequestMix)
    zipf_exponent: float = 1.0
    search_radius_meters: float = 350.0
    viewport_meters: float = 120.0
    tile_zoom: int = 17
    gnss_error_meters: float = 12.0
    step_seconds: float = 2.0
    """Wall-clock pacing between fleet rounds (thinking/walking time)."""
    resolver_pools: int = 1
    """Recursive resolvers to shard the fleet across (round-robin).  One pool
    is the historical single-shared-resolver deployment; more pools model
    regional resolver deployments, each with its own DNS cache."""
    long_traces: bool = False
    """Give the fleet's commuter cohort scripted multi-stop journeys
    (:class:`~repro.workload.mobility.CommuterTrace`) instead of the fast
    ping-pong handoff.  With dwell times, a circuit spans multiple
    registration/discovery TTLs of simulated time, so commuters re-enter
    zones with every cache layer gone stale."""
    trace_dwell_steps: int = 3
    """Steps a long-trace commuter dwells at each stop (``long_traces``
    only).  Bigger dwells stretch the journey across more TTL windows."""
    churn: ChurnSchedule | None = None
    """Membership churn applied while the fleet runs: the engine plays the
    schedule through a :class:`~repro.churn.controller.ChurnController` at
    round boundaries, so crashes/leaves/rejoins land between concurrent
    rounds exactly as TTL expiry does."""
    churn_lease_seconds: float | None = None
    """Registration-lease override for crashed servers (``None`` uses the
    federation's ``registration_ttl_seconds``)."""
    control: ControlSchedule | None = None
    """Operator actions applied while the fleet runs: the engine plays the
    tape through a :class:`~repro.control.plane.ControlPlane` at round
    boundaries (same granularity as churn), then tracks each device's
    stale SRV view until it converges on the new advertisement —
    ``WorkloadReport.control_stats`` reports the convergence tail."""
    faults: FaultPlan | None = None
    """Correlated-disaster tape applied while the fleet runs: the engine
    plays the plan through a :class:`~repro.faults.injector.FaultInjector`
    at round boundaries (the FAULT event rank fires before churn and
    control), mutating the network's fault state — partitions, gray
    failures, authority outages — and charging active flash crowds' load.
    ``None`` attaches no fault state at all, keeping fault-free runs
    byte-identical to the pre-fault engine."""
    telemetry: TelemetryConfig | None = None
    """Windowed-telemetry pipeline config.  ``None`` (default) collects no
    telemetry and adds no snapshot keys, so telemetry-free runs stay
    byte-identical to builds without the telemetry subsystem; set one and
    the run's windows become queryable via ``WorkloadReport.telemetry``."""
    autoscale: AutoscalerConfig | None = None
    """Closed-loop autoscaler config.  Requires ``telemetry`` (the scaler
    reads only telemetry roll-ups); it evaluates once per sealed window at
    round boundaries and drives the federation's warm pools
    (``Federation.attach_warm_pool``) through its own control plane.
    ``None`` (default) builds no scaler, registers no observer and adds no
    snapshot keys, so autoscaler-off runs stay byte-identical to builds
    without the autoscale subsystem."""
    operator: OperatorConfig | None = None
    """Route the run's control traffic through the operator API layer
    (:mod:`repro.operator`): the control tape is replayed as authenticated
    ``ControlRequest`` messages by a
    :class:`~repro.operator.client.NetworkedControlPlayer`, and (by
    default) the autoscaler's batches travel the same door.  With
    ``transport="network"`` every request pays simulated control-hop
    latency/loss/partitions; ``"direct"`` keeps the exchange in-process.
    ``None`` (default) builds no API, charges nothing, and adds no
    snapshot keys, so operator-free runs stay byte-identical to builds
    without the operator subsystem."""
    engine: str = "event"
    """Which execution loop drives the fleet: ``"event"`` (the heap-driven
    engine, default) or ``"legacy"`` (the retained round loop, kept as the
    golden reference the equivalence suite compares against)."""
    cohort_min_clients: int = 5000
    """Fleet size at or above which the event engine stops materializing
    every device and switches to the cohort fast path (tracers + phantom
    batch load).  Fleets below the threshold — including every committed
    byte-gated benchmark — run the exact per-device path."""
    tracers_per_cohort: int = 16
    """Fully simulated devices per cohort on the fast path.  Tracers keep
    their true index-derived RNG streams and all individual state (caches,
    replica-health memories, SRV views) — they are the slow-path escape
    hatch — so more tracers buys fidelity at the cost of scale."""

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ValueError("a workload needs at least one client")
        if self.steps < 1:
            raise ValueError("a workload needs at least one step")
        if self.step_seconds < 0.0:
            raise ValueError("step pacing cannot be negative")
        if self.resolver_pools < 1:
            raise ValueError("a workload needs at least one resolver pool")
        if self.trace_dwell_steps < 0:
            raise ValueError("trace dwell steps cannot be negative")
        if self.engine not in ("event", "legacy"):
            raise ValueError("engine must be 'event' or 'legacy'")
        if self.cohort_min_clients < 1:
            raise ValueError("cohort threshold must be positive")
        if self.tracers_per_cohort < 1:
            raise ValueError("a cohort needs at least one tracer")
        if self.autoscale is not None and self.telemetry is None:
            raise ValueError(
                "the autoscaler reads only telemetry roll-ups; "
                "set WorkloadConfig.telemetry alongside autoscale"
            )


@dataclass
class FleetClient:
    """One simulated device: client stack + mobility + its own RNG stream."""

    index: int
    client: OpenFlameClient
    mobility: MobilityModel
    rng: random.Random
    net_rng: random.Random | None = None
    """Jitter/loss RNG stream for this device's network exchanges (only set
    when the federation's latency model is stochastic)."""
    weight: int = 1
    """Devices this client stands for: 1 on the exact path; a tracer on the
    cohort fast path answers for itself plus ``weight - 1`` phantoms."""
    position: LatLng = field(init=False)

    def __post_init__(self) -> None:
        self.position = self.mobility.reset(self.rng)

    def advance(self) -> LatLng:
        self.position = self.mobility.step(self.rng)
        return self.position


@dataclass
class WorkloadReport:
    """The outcome of one workload run."""

    metrics: MetricsRegistry
    requests: int
    errors: int
    discovery_cache_hits: int
    discovery_cache_misses: int
    tile_cache_hits: int
    tile_cache_misses: int
    dns_cache_hit_rate: float
    simulated_seconds: float
    server_stats: dict[str, dict[str, float]] = field(default_factory=dict)
    """Per-map-server load-model snapshot (utilization, queue depth, drops,
    workers); empty when the federation runs without a server-side queue
    model."""
    dns_pool_hit_rates: tuple[float, ...] = ()
    """Hit rate of each shared regional resolver pool, in pool order."""
    failover: FailoverRecorder = field(default_factory=FailoverRecorder)
    """Fleet-aggregated failover accounting (attempts, failed chains, stale
    attempts, failover latencies)."""
    failed_requests: int = 0
    """Client requests that got no service at all: every map-server chain
    they tried exhausted its replicas (or routing found nothing to stitch)."""
    churn_events_applied: int = 0
    rediscoveries: int = 0
    rejoins_unseen: int = 0
    """Rejoined servers that saw no traffic again before the run ended."""
    replica_groups: dict[str, tuple[str, ...]] = field(default_factory=dict)
    """Replica-group membership at the end of the run (group id → server
    ids), used to fold ``server_stats`` into per-group balance metrics."""
    control_stats: dict[str, float] = field(default_factory=dict)
    """Operator-control-plane outcome: events applied/rejected, devices whose
    stale SRV view was tracked, and the time-to-converge tail (p50/p95 of
    seconds from a control event landing at the authority to each tracked
    device's view catching up).  Empty when the run had no control tape."""
    sampling: dict[str, float] = field(default_factory=dict)
    """Cohort-fast-path accounting (cohorts, tracers, max weight); empty on
    the exact path, so small-fleet snapshots carry no extra keys and the
    committed benchmark artifacts stay byte-identical."""
    degraded_requests: int = 0
    """Requests served from a stale-while-unreachable cached SRV view after
    live discovery failed (graceful degradation, not full service)."""
    fault_stats: dict[str, float] = field(default_factory=dict)
    """Fault-injection outcome: tape events applied/skipped, degraded
    (stale-served) requests and stale cache serves.  Empty when the run had
    no fault plan, so fault-free snapshots carry no extra keys."""
    telemetry: TelemetryPipeline | None = None
    """The run's sealed telemetry windows and their roll-up queries (demand
    heatmaps, per-cell percentiles, zonal queue maps, per-region SLO burn).
    ``None`` when the run collected no telemetry, so telemetry-free
    snapshots carry no extra keys."""
    autoscale_stats: dict[str, float] = field(default_factory=dict)
    """Autoscaler outcome: evaluations, applied/rejected ops, promotions,
    ramp steps, parks, flaps, and the replica-seconds cost integral.  Empty
    when the run had no autoscaler, so scaler-free snapshots carry no
    extra keys."""
    operator_stats: dict[str, float] = field(default_factory=dict)
    """Operator-API outcome: requests issued/delivered, replays, per-family
    rejections, timeouts, audit-log length, and — when a control tape rode
    the API — tape retries and the delivery-lag tail (seconds from an
    event's scripted instant to its op landing at the authority).  Empty
    when the run had no operator config, so operator-free snapshots carry
    no extra keys."""

    @property
    def discovery_cache_hit_rate(self) -> float:
        total = self.discovery_cache_hits + self.discovery_cache_misses
        return self.discovery_cache_hits / total if total else 0.0

    @property
    def tile_cache_hit_rate(self) -> float:
        total = self.tile_cache_hits + self.tile_cache_misses
        return self.tile_cache_hits / total if total else 0.0

    def latency_percentiles(self, service: str = "all") -> dict[str, float]:
        # Read without the creating accessor: querying a service that saw no
        # traffic must not grow the registry (snapshots stay deterministic).
        histogram = self.metrics.histograms.get(f"latency_ms.{service}")
        if histogram is None:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {"p50": histogram.p50, "p95": histogram.p95, "p99": histogram.p99}

    @property
    def dropped_requests(self) -> int:
        """Requests shed by overloaded map servers across the whole run."""
        return int(sum(stats.get("dropped", 0.0) for stats in self.server_stats.values()))

    def group_load_cvs(self) -> dict[str, float]:
        """Per-replica-group coefficient of variation of replica utilization.

        0.0 is a perfectly balanced group; the first-healthy funnel over an
        all-healthy 4-replica group reads ≈1.73 (one replica serves, three
        idle).  Groups without queue-model stats are skipped.
        """
        cvs: dict[str, float] = {}
        for group_id, server_ids in sorted(self.replica_groups.items()):
            loads = [
                self.server_stats[server_id].get("utilization", 0.0)
                for server_id in server_ids
                if server_id in self.server_stats
            ]
            if len(loads) >= 2:
                cvs[group_id] = load_cv(loads)
        return cvs

    @property
    def replica_load_cv(self) -> float:
        """The run's balance headline: mean utilization CV over replica groups."""
        cvs = self.group_load_cvs()
        return sum(cvs.values()) / len(cvs) if cvs else 0.0

    @property
    def failed_request_rate(self) -> float:
        """Fraction of client requests that got no service at all."""
        total = self.requests + self.errors
        return self.failed_requests / total if total else 0.0

    def availability(self) -> dict[str, float]:
        """The run's availability metrics in one flat dict."""
        recorder = self.failover
        failover_tail = self.latency_percentiles("failover")
        rediscovery = self.metrics.summaries.get("availability.rediscovery_seconds")
        return {
            "failed_requests": float(self.failed_requests),
            "failed_request_rate": self.failed_request_rate,
            "request_chains": float(recorder.chains),
            "failed_chains": float(recorder.chains_failed),
            "failed_chain_rate": recorder.failed_chain_rate,
            "stale_attempts": float(recorder.stale_attempts),
            "stale_attempt_rate": recorder.stale_attempt_rate,
            "failovers": float(recorder.failovers),
            "backoff_ms_total": recorder.backoff_ms_total,
            "dead_detections_own": float(recorder.dead_detections_own),
            "dead_detections_shared": float(recorder.dead_detections_shared),
            "detect_mean_ms": recorder.detect_mean_ms,
            "failover_p50_ms": failover_tail["p50"],
            "failover_p95_ms": failover_tail["p95"],
            "failover_p99_ms": failover_tail["p99"],
            "churn_events_applied": float(self.churn_events_applied),
            "rediscoveries": float(self.rediscoveries),
            "rejoins_unseen": float(self.rejoins_unseen),
            "rediscovery_seconds_mean": rediscovery.mean if rediscovery is not None else 0.0,
            "rediscovery_seconds_max": (
                rediscovery.maximum if rediscovery is not None and rediscovery.count else 0.0
            ),
        }

    def snapshot(self) -> dict[str, float]:
        """One flat, deterministic dict describing the whole run."""
        data = dict(sorted(self.metrics.snapshot().items()))
        data["requests"] = float(self.requests)
        data["errors"] = float(self.errors)
        data["discovery_cache.hit_rate"] = self.discovery_cache_hit_rate
        data["tile_cache.hit_rate"] = self.tile_cache_hit_rate
        data["dns_cache.hit_rate"] = self.dns_cache_hit_rate
        data["simulated_seconds"] = self.simulated_seconds
        for server_id in sorted(self.server_stats):
            for stat, value in sorted(self.server_stats[server_id].items()):
                data[f"server.{server_id}.{stat}"] = value
        for pool_index, hit_rate in enumerate(self.dns_pool_hit_rates):
            data[f"dns_pool.{pool_index}.hit_rate"] = hit_rate
        for key, value in sorted(self.availability().items()):
            data[f"availability.{key}"] = value
        for group_id, cv in self.group_load_cvs().items():
            data[f"balance.{group_id}.util_cv"] = cv
        data["balance.replica_load_cv"] = self.replica_load_cv
        for key, value in sorted(self.control_stats.items()):
            data[f"control.{key}"] = value
        for key, value in sorted(self.sampling.items()):
            data[f"sampling.{key}"] = value
        for key, value in sorted(self.fault_stats.items()):
            data[f"faults.{key}"] = value
        if self.telemetry is not None:
            for key, value in sorted(self.telemetry.summary().items()):
                data[f"telemetry.{key}"] = value
        for key, value in sorted(self.autoscale_stats.items()):
            data[f"autoscale.{key}"] = value
        for key, value in sorted(self.operator_stats.items()):
            data[f"operator.{key}"] = value
        return data


class WorkloadEngine:
    """Drives a fleet of simulated clients through a federated scenario."""

    def __init__(
        self,
        scenario: FederatedScenario,
        config: WorkloadConfig | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.scenario = scenario
        self.config = config or WorkloadConfig()
        self._cohort_mode = (
            self.config.engine == "event"
            and self.config.clients >= self.config.cohort_min_clients
        )
        # Large fleets get bounded streaming histograms by default so a
        # million-client sweep does not retain one float per observation; an
        # explicitly supplied registry always wins.
        self.metrics = metrics or MetricsRegistry(streaming_histograms=self._cohort_mode)
        self.pois = self._build_poi_pool()
        self._poi_sampler: ZipfSampler[PointOfInterest] = ZipfSampler(
            self.pois, self.config.zipf_exponent
        )
        self.cohorts: list[Cohort] = []
        self.fleet = self._build_fleet()
        self._device_by_index = {device.index: device for device in self.fleet}
        # Multiplier applied to every metric a request records; 1 except
        # while a cohort tracer answers for its phantoms.
        self._active_weight = 1
        self.fault_injector: FaultInjector | None = None
        if self.config.faults is not None:
            self.fault_injector = FaultInjector(
                federation=scenario.federation, plan=self.config.faults
            )
        self.churn_controller: ChurnController | None = None
        if self.config.churn is not None:
            self.churn_controller = ChurnController(
                federation=scenario.federation,
                schedule=self.config.churn,
                lease_seconds=self.config.churn_lease_seconds,
            )
        # Rejoined servers whose return traffic has not been seen yet:
        # server_id -> (rejoin instant, served-requests baseline).
        self._pending_rediscovery: dict[str, tuple[float, int]] = {}
        self.operator_api: OperatorApi | None = None
        self.operator_client: OperatorClient | None = None
        self._operator_adapter: OperatorControlAdapter | None = None
        if self.config.operator is not None:
            op_config = self.config.operator
            principals = PrincipalRegistry()
            principals.register(op_config.principal, ALL_PERMISSIONS)
            self.operator_api = OperatorApi(
                federation=scenario.federation,
                principals=principals,
                contend_for_queue=op_config.contend_for_queue,
            )
            endpoint_id = op_config.endpoint_id
            if endpoint_id is None:
                endpoint_id = scenario.federation.discovery_authority_id
            self.operator_client = OperatorClient(
                api=self.operator_api,
                principal=op_config.principal,
                transport=op_config.transport,
                endpoint_id=endpoint_id,
                region=op_config.region,
                timeout_ms=op_config.timeout_ms,
                # The console's own network-draw stream: save/restored
                # around each exchange, so device streams never shift.
                jitter_rng=(
                    random.Random(operator_seed(self.config.seed))
                    if op_config.transport == "network"
                    else None
                ),
            )
        self.control_plane: ControlPlane | NetworkedControlPlayer | None = None
        if self.config.control is not None:
            if self.operator_client is not None:
                self.control_plane = NetworkedControlPlayer(
                    schedule=self.config.control, client=self.operator_client
                )
            else:
                self.control_plane = ControlPlane(
                    federation=scenario.federation, schedule=self.config.control
                )
        # Devices holding a stale SRV view of a re-weighted server:
        # (device index, server_id) -> (event instant, target (prio, weight)).
        self._pending_convergence: dict[tuple[int, str], tuple[float, tuple[int, int]]] = {}
        self._devices_tracked = 0
        # Round-boundary observers, shared by both loops.  An empty list is
        # a strict no-op, so observer-free runs stay byte-identical.
        self._round_observers: list[RoundObserver] = []
        self.telemetry: TelemetryPipeline | None = None
        if self.config.telemetry is not None:
            registry = scenario.federation.registry
            self.telemetry = TelemetryPipeline(
                config=self.config.telemetry,
                server_cells={
                    server_id: tuple(cell.token for cell in registration.cells)
                    for server_id, registration in sorted(registry.registrations.items())
                },
            )
            self.add_round_observer(self._telemetry_flush)
        self.autoscaler: Autoscaler | None = None
        if self.config.autoscale is not None:
            # Registered after the telemetry flush observer, so each
            # evaluation sees the window that round just sealed.
            from repro.telemetry.reader import TelemetryReader

            assert self.telemetry is not None  # enforced by WorkloadConfig
            scaler_control = None
            if (
                self.operator_client is not None
                and self.config.operator is not None
                and self.config.operator.route_autoscaler
            ):
                # The autoscaler's batches travel the operator API like any
                # console's: authenticated, audited, and (over the network
                # transport) paying the same control-hop latency and loss.
                self._operator_adapter = OperatorControlAdapter(
                    client=self.operator_client
                )
                scaler_control = self._operator_adapter
            self.autoscaler = Autoscaler(
                federation=scenario.federation,
                reader=TelemetryReader(pipeline=self.telemetry),
                config=self.config.autoscale,
                control=scaler_control,
            )
            self.add_round_observer(self.autoscaler.observe)

    def add_round_observer(self, observer: RoundObserver) -> None:
        """Register a hook called as ``observer(round_index, now_seconds)``
        after each round's end-of-round observations, by either loop."""
        self._round_observers.append(observer)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_poi_pool(self) -> list[PointOfInterest]:
        """All POIs requests can target, in a deterministic popularity order.

        Products from every store are interleaved with the city POIs so the
        popular head of the Zipf distribution spans several map servers.
        """
        pois: list[PointOfInterest] = []
        for store_index, store in enumerate(self.scenario.stores):
            for name in sorted(store.product_locations):
                pois.append(
                    PointOfInterest(name, store.product_locations[name], store_index)
                )
        for name in sorted(self.scenario.city.poi_locations):
            pois.append(PointOfInterest(name, self.scenario.city.poi_locations[name]))
        if not pois:
            raise ValueError("scenario has no POIs to build a workload from")
        # Deterministic popularity shuffle so rank is not correlated with
        # store order.
        random.Random(self.config.seed).shuffle(pois)
        return pois

    def _mobility_spec(self, index: int) -> tuple[str, int]:
        """Which mobility family (and store, for aisle walks) a device gets.

        Shared by both fleet builders so the cohort planner's equivalence
        classes are exactly the families the exact path would construct.
        """
        if self.scenario.stores and index % 3 == 1:
            return ("aisle", (index // 3) % len(self.scenario.stores))
        if index % 3 == 2:
            return ("trace" if self.config.long_traces else "commute", 0)
        return ("waypoint", 0)

    def _commute_routes(self) -> tuple[list[LatLng], list[LatLng]]:
        stores = self.scenario.stores
        city_bounds = self.scenario.city.bounds
        commute_stops = [store.entrance for store in stores[:2]]
        if len(commute_stops) < 2:
            commute_stops = [
                city_bounds.south_west,
                stores[0].entrance if stores else city_bounds.north_east,
            ]
        # Long traces tour the whole city: every store plus the far corners,
        # so a circuit crosses each coverage boundary and — with dwell —
        # outlives the registration TTLs.
        trace_stops = [store.entrance for store in stores] + [
            city_bounds.south_west,
            city_bounds.north_east,
        ]
        return commute_stops, trace_stops

    def _make_mobility(
        self,
        spec: tuple[str, int],
        commute_stops: list[LatLng],
        trace_stops: list[LatLng],
    ) -> MobilityModel:
        family, store_index = spec
        if family == "aisle":
            return AisleWalk(self.scenario.stores[store_index])
        if family == "trace":
            return CommuterTrace(
                list(trace_stops), dwell_steps=self.config.trace_dwell_steps
            )
        if family == "commute":
            return CommuterHandoff(list(commute_stops))
        return RandomWaypoint(self.scenario.city.bounds)

    def _make_device(
        self,
        index: int,
        pools,
        stochastic: bool,
        mobility: MobilityModel,
        weight: int = 1,
    ) -> FleetClient:
        seeds = derived_seed_streams(self.config.seed, index)
        return FleetClient(
            index=index,
            client=self.scenario.federation.client(
                stub_resolver=pools[index % len(pools)],
                # A distinct weighted-selection stream per device: replica
                # draws must not depend on fleet interleaving.
                selection_seed=seeds["selection"],
                backoff_seed=seeds["backoff"],
            ),
            mobility=mobility,
            rng=random.Random(seeds["base"]),
            # A distinct stream per device: network draws must not depend
            # on how the fleet's requests interleave.
            net_rng=random.Random(seeds["jitter"]) if stochastic else None,
            weight=weight,
        )

    def _build_fleet(self) -> list[FleetClient]:
        federation = self.scenario.federation
        pools = federation.resolver_pool(self.config.resolver_pools)
        # Fault runs always get per-device jitter streams: a gray failure can
        # make a deterministic latency model draw loss mid-run, and those
        # draws must not depend on how the fleet's requests interleave.
        stochastic = (
            federation.network.latency.is_stochastic or self.config.faults is not None
        )
        commute_stops, trace_stops = self._commute_routes()
        if self._cohort_mode:
            return self._build_cohort_fleet(pools, stochastic, commute_stops, trace_stops)
        fleet: list[FleetClient] = []
        for index in range(self.config.clients):
            mobility = self._make_mobility(
                self._mobility_spec(index), commute_stops, trace_stops
            )
            fleet.append(self._make_device(index, pools, stochastic, mobility))
        return fleet

    def _build_cohort_fleet(
        self,
        pools,
        stochastic: bool,
        commute_stops: list[LatLng],
        trace_stops: list[LatLng],
    ) -> list[FleetClient]:
        """Plan cohorts over the whole fleet, materialize only the tracers.

        A cohort is (mobility spec, resolver pool index): every device in it
        would be built from the same store/route/bounds and talk to the same
        shared resolver, so they differ only by RNG stream — exactly the
        statistical identity tracer sampling needs.  Planning is one
        arithmetic pass over the index range; device objects exist only for
        tracers, which is what makes million-client fleets affordable.
        """

        def assignments():
            for index in range(self.config.clients):
                spec = self._mobility_spec(index)
                pool_index = index % len(pools)
                label = f"{spec[0]}{spec[1]}-pool{pool_index}"
                yield index, (spec, pool_index), label

        self.cohorts = plan_cohorts(assignments(), self.config.tracers_per_cohort)
        fleet: list[FleetClient] = []
        for cohort in self.cohorts:
            spec, _pool_index = cohort.key
            weights = cohort.tracer_weights()
            for tracer_index, weight in zip(cohort.tracer_indices, weights):
                device = self._make_device(
                    tracer_index,
                    pools,
                    stochastic,
                    self._make_mobility(spec, commute_stops, trace_stops),
                    weight=weight,
                )
                cohort.tracers.append(device)
                fleet.append(device)
        # Fleet order (and thus every per-round interleaving) stays index
        # order regardless of how cohorts were discovered.
        fleet.sort(key=lambda device: device.index)
        return fleet

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> WorkloadReport:
        """Run the configured number of steps across the whole fleet.

        Clients within one round act *concurrently*: each runs serially from
        the same simulated instant and the clock is rewound between them, so
        a round advances time by its slowest request (plus the configured
        inter-round pacing) rather than by the sum over the whole fleet.
        Without this, large fleets would spuriously age every TTL between one
        client's consecutive requests.

        ``config.engine`` picks the loop: the event-driven engine (default)
        or the retained legacy round loop.  Below the cohort threshold the
        two produce byte-identical snapshots (the equivalence suite gates
        this); at or above it the event engine switches to cohort sampling.
        """
        if self.config.engine == "legacy":
            return self.run_legacy()
        return self._run_events()

    def run_legacy(self) -> WorkloadReport:
        """The original round loop, retained verbatim as the golden
        reference ``tests/test_engine_equivalence.py`` compares the event
        engine against."""
        network = self.scenario.federation.network
        clock = network.clock
        started_at = clock.now()
        self._telemetry_begin(clock.now())
        try:
            for round_index in range(self.config.steps):
                self._apply_faults(clock.now())
                self._apply_churn(clock.now())
                self._apply_control(clock.now())
                round_start = clock.now()
                slowest = 0.0
                for device in self.fleet:
                    device.advance()
                    kind = self.config.mix.sample(device.rng)
                    self._issue(device, kind)
                    slowest = max(slowest, clock.now() - round_start)
                    clock.rewind_to(round_start)
                clock.advance(slowest + self.config.step_seconds)
                self._observe_rediscoveries(clock.now())
                self._observe_convergence(clock.now())
                notify_round_end(self._round_observers, round_index, clock.now())
        finally:
            # Leave the shared network on its default jitter stream: direct
            # (non-fleet) use after a run must not inherit the last device's.
            network.set_jitter_stream(None)
        return self._report(clock.now() - started_at)

    def _schedule_round(self, heap: EventHeap, at: float) -> None:
        """Queue one fleet round's fixed events at instant ``at``.

        EventKind ranks make the pop order faults → churn → control → round
        begin (which fans out the device/cohort events) → devices → round
        end, replicating the legacy loop's statement order exactly.
        """
        if self.fault_injector is not None:
            heap.push(at, EventKind.FAULT)
        if self.churn_controller is not None:
            heap.push(at, EventKind.CHURN)
        if self.control_plane is not None:
            heap.push(at, EventKind.CONTROL)
        heap.push(at, EventKind.ROUND_BEGIN)
        heap.push(at, EventKind.ROUND_END)

    def _run_events(self) -> WorkloadReport:
        """The event-driven loop: pop the heap dry, advancing the clock to
        each event's instant.

        Per-device work stays byte-identical to the legacy loop below the
        cohort threshold because the heap's total order replays its
        statement order; above the threshold ROUND_BEGIN fans out cohort
        events instead of device events and the fast path takes over.
        """
        network = self.scenario.federation.network
        clock = network.clock
        started_at = clock.now()
        heap = EventHeap()
        rounds_remaining = self.config.steps
        self._round_start = clock.now()
        self._round_slowest = 0.0
        self._telemetry_begin(clock.now())
        self._schedule_round(heap, clock.now())
        try:
            while heap:
                event = heap.pop()
                # Networked control exchanges advance the clock *during* a
                # CONTROL event, so a same-instant sibling (ROUND_BEGIN)
                # can pop with its scheduled time already in the past;
                # time only moves forward.
                clock.advance_to(max(event.at_seconds, clock.now()))
                if event.kind is EventKind.FAULT:
                    self._apply_faults(clock.now())
                elif event.kind is EventKind.CHURN:
                    self._apply_churn(clock.now())
                elif event.kind is EventKind.CONTROL:
                    self._apply_control(clock.now())
                elif event.kind is EventKind.ROUND_BEGIN:
                    self._round_start = clock.now()
                    self._round_slowest = 0.0
                    if self._cohort_mode:
                        for cohort in self.cohorts:
                            heap.push(self._round_start, EventKind.COHORT, cohort)
                    else:
                        for device in self.fleet:
                            heap.push(self._round_start, EventKind.DEVICE, device)
                elif event.kind is EventKind.DEVICE:
                    self._run_device(event.payload, self._round_start)
                elif event.kind is EventKind.COHORT:
                    self._run_cohort(event.payload, self._round_start)
                else:  # ROUND_END
                    clock.advance(self._round_slowest + self.config.step_seconds)
                    self._observe_rediscoveries(clock.now())
                    self._observe_convergence(clock.now())
                    notify_round_end(
                        self._round_observers,
                        self.config.steps - rounds_remaining,
                        clock.now(),
                    )
                    rounds_remaining -= 1
                    if rounds_remaining > 0:
                        self._schedule_round(heap, clock.now())
        finally:
            # Leave the shared network on its default jitter stream: direct
            # (non-fleet) use after a run must not inherit the last device's.
            network.set_jitter_stream(None)
        return self._report(clock.now() - started_at)

    def _run_device(self, device: FleetClient, round_start: float) -> None:
        """One device's round: advance, issue, track the slowest, rewind."""
        clock = self.scenario.federation.network.clock
        device.advance()
        kind = self.config.mix.sample(device.rng)
        self._issue(device, kind)
        self._round_slowest = max(self._round_slowest, clock.now() - round_start)
        clock.rewind_to(round_start)

    def _run_cohort(self, cohort: Cohort, round_start: float) -> None:
        """One cohort's round: tracers run for real, phantoms ride along.

        Each tracer runs the full client stack with ``_active_weight`` set,
        so every metric it records counts for its whole share of the cohort.
        Server-side, the tracer's per-kind queue arrivals are diffed around
        its turn and replayed ``weight − 1`` times as batch phantom load at
        the same instant — phantoms occupy real worker capacity (later
        requests queue behind them, overflow is dropped) without the engine
        simulating their client stacks.
        """
        federation = self.scenario.federation
        queues = {
            server_id: server.queue
            for server_id, server in federation.all_servers.items()
            if server.queue is not None
        }
        for device in cohort.tracers:
            weight = device.weight
            before = (
                {server_id: dict(queue.kind_arrivals) for server_id, queue in queues.items()}
                if weight > 1 and queues
                else None
            )
            self._active_weight = weight
            try:
                self._run_device(device, round_start)
            finally:
                self._active_weight = 1
            if before is None:
                continue
            for server_id, queue in queues.items():
                prior = before[server_id]
                for kind, arrivals in queue.kind_arrivals.items():
                    delta = arrivals - prior.get(kind, 0)
                    if delta > 0:
                        # The clock is back at round_start, so phantom jobs
                        # land at the same instant their tracer's did.
                        queue.phantom_arrivals(kind, delta * (weight - 1))

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def _telemetry_begin(self, now: float) -> None:
        """Open the pipeline's first window, priming server baselines so
        queue activity predating the run is never attributed to it."""
        if self.telemetry is not None:
            self.telemetry.begin(now, self._telemetry_frames())
        if self.autoscaler is not None:
            self.autoscaler.begin(now)

    def _telemetry_frames(self) -> dict[str, dict[str, object]]:
        """Cumulative queue frames for every server (offline ones included:
        a server that crashed mid-window still emitted into it)."""
        frames: dict[str, dict[str, object]] = {}
        for server_id, server in sorted(self.scenario.federation.all_servers.items()):
            frame = server.telemetry_frame()
            if frame is not None:
                frames[server_id] = frame
        return frames

    def _telemetry_flush(self, round_index: int, now: float) -> None:
        """The pipeline's round observer: fold this round's server deltas
        in, annotate active fault families, and seal the window if due."""
        del round_index  # windows key on simulated time, not round count
        assert self.telemetry is not None
        self.telemetry.observe_servers(self._telemetry_frames())
        faults_active: tuple[str, ...] = ()
        if self.fault_injector is not None:
            faults_active = self.fault_injector.active_fault_kinds()
        self.telemetry.flush(now, faults_active)

    def _device_cell(self, device: FleetClient) -> str:
        """The covering-cell token request records key on: the device's
        current position at the pipeline's configured (finest) level."""
        assert self.telemetry is not None
        return CellId.from_point(device.position, self.telemetry.config.cell_level).token

    # ------------------------------------------------------------------
    # Faults
    # ------------------------------------------------------------------
    def _apply_faults(self, now: float) -> None:
        """Apply due fault-tape events at a round boundary, then charge any
        active flash crowd's load for the round about to run.

        Like churn, disasters land *between* concurrent rounds: a partition
        is open or healed for a whole round, never half of one.
        """
        if self.fault_injector is None:
            return
        for event in self.fault_injector.apply_until(now):
            if event.applied:
                self.metrics.counter(f"faults.{event.kind}").increment()
            else:
                self.metrics.counter("faults.skipped").increment()
        self.fault_injector.inject_round_load()

    # ------------------------------------------------------------------
    # Churn
    # ------------------------------------------------------------------
    def _apply_churn(self, now: float) -> None:
        """Apply due membership events at a round boundary.

        Events land *between* concurrent rounds — the same granularity at
        which the round clock advances — so a server is either up or down
        for a whole round, never half of one.
        """
        if self.churn_controller is None:
            return
        federation = self.scenario.federation
        for event in self.churn_controller.apply_until(now):
            if not event.applied:
                continue
            self.metrics.counter(f"churn.{event.kind}").increment()
            if event.kind == "join":
                server = federation.servers.get(event.server_id)
                baseline = server.stats.total_requests if server is not None else 0
                self._pending_rediscovery[event.server_id] = (event.at_seconds, baseline)

    def _observe_rediscoveries(self, now: float) -> None:
        """Check whether rejoined servers have been found by clients again.

        Time-to-rediscovery is measured at round granularity: the first
        round after which a rejoined server's served-request counter moved.
        """
        if not self._pending_rediscovery:
            return
        federation = self.scenario.federation
        found: list[str] = []
        for server_id, (rejoined_at, baseline) in self._pending_rediscovery.items():
            server = federation.servers.get(server_id)
            if server is None:  # crashed again before being rediscovered
                continue
            if server.stats.total_requests > baseline:
                self.metrics.summary("availability.rediscovery_seconds").observe(
                    now - rejoined_at
                )
                found.append(server_id)
        for server_id in found:
            del self._pending_rediscovery[server_id]

    # ------------------------------------------------------------------
    # Operator control plane
    # ------------------------------------------------------------------
    def _apply_control(self, now: float) -> None:
        """Apply due operator actions at a round boundary, then start the
        convergence stopwatch for every device holding a stale view.

        A device is *tracked* only if it actually holds cached SRV data for
        the re-weighted server that disagrees with the new advertisement —
        devices that never resolved the server bootstrap straight onto the
        live values and have nothing to converge."""
        if self.control_plane is None:
            return
        for event in self.control_plane.apply_until(now):
            if not event.applied:
                self.metrics.counter("control.rejected").increment()
                continue
            self.metrics.counter(f"control.{event.kind}").increment()
            target = (event.priority, event.weight)
            for device in self.fleet:
                held = device.client.context.discoverer.srv_view.get(event.server_id)
                if held is None:
                    continue
                key = (device.index, event.server_id)
                if held == target:
                    # The newest advertisement matches what the device
                    # already holds (e.g. an undrain restored the weight
                    # before this device ever saw the drain): the change is
                    # invisible to it, so any stopwatch still running toward
                    # the now-obsolete value is voided, not left to report
                    # phantom non-convergence.
                    if self._pending_convergence.pop(key, None) is not None:
                        self._devices_tracked -= 1
                    continue
                if key not in self._pending_convergence:
                    self._devices_tracked += 1
                # A second event against the same server restarts the
                # stopwatch toward the *newest* advertisement.
                self._pending_convergence[key] = (now, target)

    def _observe_convergence(self, now: float) -> None:
        """Check tracked devices' SRV views against their targets.

        Time-to-converge is measured at round granularity, like rediscovery:
        the first round end at which the device's view — refreshed only by a
        fresh discovery once its cache entries lapsed — matches the new
        advertisement."""
        if not self._pending_convergence:
            return
        converged: list[tuple[int, str]] = []
        for (index, server_id), (since, target) in self._pending_convergence.items():
            view = self._device_by_index[index].client.context.discoverer.srv_view
            if view.get(server_id) == target:
                self.metrics.histogram("control.converge_seconds").observe(now - since)
                converged.append((index, server_id))
        for key in converged:
            del self._pending_convergence[key]

    def _issue(self, device: FleetClient, kind: RequestKind) -> None:
        network = self.scenario.federation.network
        if device.net_rng is not None:
            network.set_jitter_stream(device.net_rng)
        # 1 everywhere except a cohort tracer's turn, where one request
        # records on behalf of the tracer's whole phantom share.
        weight = self._active_weight
        latency_before = network.stats.total_latency_ms
        recorder = device.client.context.failover
        chains_ok_before = recorder.chains_ok
        chains_failed_before = recorder.chains_failed
        discoverer = device.client.context.discoverer
        stale_before = discoverer.stale_serves
        faults = network.faults if self.fault_injector is not None else None
        if faults is not None:
            # Which side of a region-scoped partition this device's
            # exchanges see: its resolver-pool index is its client region.
            faults.active_region = device.index % self.config.resolver_pools
        issued = True
        try:
            if kind == RequestKind.SEARCH:
                self._do_search(device)
            elif kind == RequestKind.ROUTE:
                issued = self._do_route(device)
            elif kind == RequestKind.TILES:
                self._do_tiles(device)
            else:
                self._do_localize(device)
        except FederatedRoutingError:
            # Failed requests are counted separately; their (often short)
            # abort latency must not dilute the success-path percentiles.
            self.metrics.counter(f"errors.{kind.value}").increment(weight)
            self.metrics.counter("availability.failed_requests").increment(weight)
            if self.telemetry is not None:
                self.telemetry.record_request(
                    self._device_cell(device),
                    device.index % self.config.resolver_pools,
                    kind.value,
                    network.stats.total_latency_ms - latency_before,
                    float(weight),
                    ok=False,
                    degraded=discoverer.stale_serves > stale_before,
                )
            return
        finally:
            if faults is not None:
                faults.active_region = None
            if discoverer.stale_serves > stale_before:
                # The request got *degraded* service: at least one cell was
                # answered from a stale-while-unreachable cached SRV view.
                self.metrics.counter("degraded.requests").increment(weight)
        chains_all_failed = (
            recorder.chains_failed > chains_failed_before
            and recorder.chains_ok == chains_ok_before
        )
        if chains_all_failed:
            # Every map server this request tried was unreachable or
            # overloaded past its whole replica chain: the user got nothing.
            self.metrics.counter("availability.failed_requests").increment(weight)
        if not issued:
            # No traffic was generated; recording a request with 0 ms latency
            # would dilute the tail percentiles the benchmarks compare.  The
            # counter lives outside the "requests." namespace so _report's
            # prefix sum counts only real traffic.
            self.metrics.counter(f"skipped.{kind.value}").increment(weight)
            return
        self.metrics.counter(f"requests.{kind.value}").increment(weight)
        latency_ms = network.stats.total_latency_ms - latency_before
        self.metrics.histogram("latency_ms.all").observe(latency_ms, weight)
        self.metrics.histogram(f"latency_ms.{kind.value}").observe(latency_ms, weight)
        if self.telemetry is not None:
            # A request whose every chain failed was *issued* (its latency
            # counts) but got no service — for SLO purposes it is bad.
            self.telemetry.record_request(
                self._device_cell(device),
                device.index % self.config.resolver_pools,
                kind.value,
                latency_ms,
                float(weight),
                ok=not chains_all_failed,
                degraded=discoverer.stale_serves > stale_before,
            )

    def _do_search(self, device: FleetClient) -> None:
        weight = self._active_weight
        poi = self._poi_sampler.sample(device.rng)
        result = device.client.search(
            poi.name, near=poi.location, radius_meters=self.config.search_radius_meters
        )
        self.metrics.counter("search.results").increment(len(result) * weight)
        self.metrics.counter("dns.lookups").increment(result.dns_lookups * weight)

    def _do_route(self, device: FleetClient) -> bool:
        """Route to a popular POI; returns False if no route was worth issuing.

        A shopper standing on the very shelf it would route to resamples a
        few times before giving up, so zero-length "routes" never happen.
        """
        weight = self._active_weight
        for _ in range(4):
            poi = self._poi_sampler.sample(device.rng)
            if device.position.distance_to(poi.location) < 1.0:
                continue
            result = device.client.route(device.position, poi.location)
            self.metrics.histogram("route.length_meters").observe(
                result.length_meters, weight
            )
            self.metrics.counter("dns.lookups").increment(result.dns_lookups * weight)
            return True
        return False

    def _do_tiles(self, device: FleetClient) -> None:
        weight = self._active_weight
        viewport = BoundingBox.around(device.position, self.config.viewport_meters)
        result = device.client.render_viewport(viewport, zoom=self.config.tile_zoom)
        self.metrics.counter("tiles.downloaded").increment(result.tiles_downloaded * weight)
        self.metrics.counter("tiles.from_cache").increment(result.tiles_from_cache * weight)
        self.metrics.counter("dns.lookups").increment(result.dns_lookups * weight)

    def _do_localize(self, device: FleetClient) -> None:
        weight = self._active_weight
        cues = self._sense(device)
        result = device.client.localize(device.position, cues)
        if result.best is not None:
            self.metrics.counter("localize.fixes").increment(weight)
        self.metrics.counter("dns.lookups").increment(result.dns_lookups * weight)

    def _sense(self, device: FleetClient) -> CueBundle:
        """What the device senses where it stands.

        Devices walking a store sense that store's beacons and imagery (the
        rich indoor bundle); everyone else has only a noisy satellite fix.
        """
        if isinstance(device.mobility, AisleWalk):
            store = device.mobility.store
            local = store.geographic_to_local(device.position)
            if store.contains_local(local):
                return store.sense_cues(local, device.rng)
        bearing = device.rng.uniform(0.0, 360.0)
        offset = abs(device.rng.gauss(0.0, self.config.gnss_error_meters))
        return CueBundle(
            gnss=GnssCue(
                device.position.destination(bearing, offset),
                accuracy_meters=self.config.gnss_error_meters,
            )
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _report(self, simulated_seconds: float) -> WorkloadReport:
        if self.telemetry is not None:
            # Seal a trailing partial window so short runs still report.
            self.telemetry.finalize(self.scenario.federation.network.clock.now())
        requests = sum(
            counter.value
            for name, counter in self.metrics.counters.items()
            if name.startswith("requests.")
        )
        errors = sum(
            counter.value
            for name, counter in self.metrics.counters.items()
            if name.startswith("errors.")
        )
        discovery_hits = discovery_misses = 0
        tile_hits = tile_misses = 0
        fleet_failover = FailoverRecorder()
        for device in self.fleet:
            stats = device.client.cache_stats()
            # Weight is 1 on the exact path; on the cohort fast path a
            # tracer's cache behaviour stands in for its phantom share.
            discovery_hits += int(stats["discovery.hits"]) * device.weight
            discovery_misses += int(stats["discovery.misses"]) * device.weight
            tile_hits += int(stats["tiles.hits"]) * device.weight
            tile_misses += int(stats["tiles.misses"]) * device.weight
            # Failover accounting stays tracer-only (unweighted): the
            # recorder holds raw latency lists that cannot be scaled.
            fleet_failover.merge_from(device.client.context.failover)
        if fleet_failover.failover_ms:
            # Failover latencies land in the shared registry so the snapshot
            # and latency_percentiles("failover") see them.
            self.metrics.histogram("latency_ms.failover").observe_many(
                fleet_failover.failover_ms
            )

        federation = self.scenario.federation
        server_stats: dict[str, dict[str, float]] = {}
        # Include servers currently offline: a server that crashed mid-run
        # keeps its accumulated load statistics in the books.
        for server_id, server in federation.all_servers.items():
            if server.queue is not None:
                server_stats[server_id] = server.queue.snapshot(
                    window_seconds=simulated_seconds
                )

        # Aggregate the DNS hit rate over every pool the fleet was sharded
        # across (pool 0 alone is the historical single-resolver number).
        pools = federation.resolver_pool(self.config.resolver_pools)
        pool_hit_rates = tuple(pool.recursive.cache.stats.hit_rate for pool in pools)
        answered = total = 0
        for pool in pools:
            stats = pool.recursive.cache.stats
            answered += stats.hits + stats.negative_hits
            total += stats.hits + stats.negative_hits + stats.misses
        failed_counter = self.metrics.counters.get("availability.failed_requests")
        churn_applied = 0
        if self.churn_controller is not None:
            churn_applied = sum(1 for event in self.churn_controller.applied if event.applied)
        rediscovery = self.metrics.summaries.get("availability.rediscovery_seconds")
        control_stats: dict[str, float] = {}
        if self.control_plane is not None:
            converge = self.metrics.histograms.get("control.converge_seconds")
            applied = sum(1 for event in self.control_plane.applied if event.applied)
            rejected = sum(1 for event in self.control_plane.applied if not event.applied)
            control_stats = {
                "events_applied": float(applied),
                "events_rejected": float(rejected),
                "devices_tracked": float(self._devices_tracked),
                "devices_converged": float(converge.count if converge is not None else 0),
                "devices_unconverged": float(len(self._pending_convergence)),
                "converge_p50_s": converge.p50 if converge is not None else 0.0,
                "converge_p95_s": converge.p95 if converge is not None else 0.0,
                "converge_mean_s": converge.mean if converge is not None else 0.0,
            }
        degraded_counter = self.metrics.counters.get("degraded.requests")
        degraded = degraded_counter.value if degraded_counter is not None else 0
        fault_stats: dict[str, float] = {}
        if self.fault_injector is not None:
            applied = sum(1 for event in self.fault_injector.applied if event.applied)
            skipped = sum(1 for event in self.fault_injector.applied if not event.applied)
            stale_serves = sum(
                device.client.context.discoverer.stale_serves * device.weight
                for device in self.fleet
            )
            fault_stats = {
                "events_applied": float(applied),
                "events_skipped": float(skipped),
                "degraded_requests": float(degraded),
                "stale_serves": float(stale_serves),
            }
        operator_stats: dict[str, float] = {}
        if self.operator_client is not None and self.operator_api is not None:
            operator_stats = {
                key: float(value)
                for key, value in self.operator_client.counters.items()
            }
            operator_stats["audit_records"] = float(len(self.operator_api.audit))
            if isinstance(self.control_plane, NetworkedControlPlayer):
                player = self.control_plane
                operator_stats["tape_retries"] = float(player.retries)
                operator_stats["tape_pending"] = float(player.pending_events)
                for key, value in player.lag_stats().items():
                    operator_stats[f"delivery_lag_{key}"] = value
        sampling: dict[str, float] = {}
        if self._cohort_mode:
            sampling = {
                "cohorts": float(len(self.cohorts)),
                "tracers": float(len(self.fleet)),
                "fleet_clients": float(self.config.clients),
                "phantom_clients": float(self.config.clients - len(self.fleet)),
                "max_weight": float(max((d.weight for d in self.fleet), default=1)),
            }
        return WorkloadReport(
            metrics=self.metrics,
            requests=requests,
            errors=errors,
            discovery_cache_hits=discovery_hits,
            discovery_cache_misses=discovery_misses,
            tile_cache_hits=tile_hits,
            tile_cache_misses=tile_misses,
            dns_cache_hit_rate=answered / total if total else 0.0,
            simulated_seconds=simulated_seconds,
            server_stats=server_stats,
            dns_pool_hit_rates=pool_hit_rates,
            failover=fleet_failover,
            failed_requests=failed_counter.value if failed_counter is not None else 0,
            churn_events_applied=churn_applied,
            rediscoveries=rediscovery.count if rediscovery is not None else 0,
            rejoins_unseen=len(self._pending_rediscovery),
            replica_groups={
                group_id: group.server_ids
                for group_id, group in sorted(federation.replica_groups.items())
            },
            control_stats=control_stats,
            sampling=sampling,
            degraded_requests=degraded,
            fault_stats=fault_stats,
            telemetry=self.telemetry,
            autoscale_stats=(
                self.autoscaler.stats() if self.autoscaler is not None else {}
            ),
            operator_stats=operator_stats,
        )
