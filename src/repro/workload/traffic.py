"""Request mixes and Zipf-distributed point-of-interest popularity.

Real location traffic is heavily skewed: a few popular places absorb most of
the queries.  The workload engine models that with a Zipf distribution over
the scenario's POIs — the skew is what makes discovery caching effective, and
sweeping the exponent lets experiments explore how much of the paper's
"ubiquitous caching" argument depends on it.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from dataclasses import dataclass
from enum import Enum
from itertools import accumulate
from typing import Generic, Sequence, TypeVar

T = TypeVar("T")


class RequestKind(str, Enum):
    """The client-side services a simulated device exercises."""

    SEARCH = "search"
    ROUTE = "route"
    TILES = "tiles"
    LOCALIZE = "localize"


def zipf_weights(count: int, exponent: float = 1.0) -> list[float]:
    """Normalized Zipf weights: weight(rank) ∝ 1 / (rank + 1) ** exponent."""
    if count < 1:
        raise ValueError("count must be >= 1")
    if exponent < 0.0:
        raise ValueError("exponent must be >= 0")
    raw = [1.0 / float(rank + 1) ** exponent for rank in range(count)]
    total = sum(raw)
    return [weight / total for weight in raw]


@dataclass(frozen=True)
class ZipfSampler(Generic[T]):
    """Samples items with Zipf popularity by their position in ``items``."""

    items: Sequence[T]
    exponent: float = 1.0

    def __post_init__(self) -> None:
        if not self.items:
            raise ValueError("cannot sample from an empty item list")
        weights = zipf_weights(len(self.items), self.exponent)
        object.__setattr__(self, "_cumulative", list(accumulate(weights)))

    def sample(self, rng: random.Random) -> T:
        draw = rng.random() * self._cumulative[-1]
        index = min(bisect_left(self._cumulative, draw), len(self.items) - 1)
        return self.items[index]


@dataclass(frozen=True)
class RequestMix:
    """Relative weights of the four request kinds a client issues."""

    search: float = 0.4
    route: float = 0.2
    tiles: float = 0.25
    localize: float = 0.15

    def __post_init__(self) -> None:
        if min(self.search, self.route, self.tiles, self.localize) < 0.0:
            raise ValueError("request weights must be non-negative")
        if self.total <= 0.0:
            raise ValueError("at least one request kind must have positive weight")

    @property
    def total(self) -> float:
        return self.search + self.route + self.tiles + self.localize

    def sample(self, rng: random.Random) -> RequestKind:
        draw = rng.random() * self.total
        for kind, weight in (
            (RequestKind.SEARCH, self.search),
            (RequestKind.ROUTE, self.route),
            (RequestKind.TILES, self.tiles),
            (RequestKind.LOCALIZE, self.localize),
        ):
            if draw < weight:
                return kind
            draw -= weight
        return RequestKind.LOCALIZE
