"""Mobility models for simulated client fleets.

Each model is a small deterministic state machine: given the same seed-derived
``random.Random`` it produces the same trajectory, which is what makes whole
workload runs reproducible.  Positions are geographic (:class:`LatLng`) so the
models compose directly with the client API regardless of whether the walk is
outdoors (random waypoint), inside one store (aisle walk) or between adjacent
map servers (commuter handoff).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Protocol

from repro.geometry.bbox import BoundingBox
from repro.geometry.point import LatLng
from repro.worldgen.indoor import IndoorWorld


class MobilityModel(Protocol):
    """A deterministic trajectory generator."""

    def reset(self, rng: random.Random) -> LatLng:
        """Start (or restart) the trajectory; returns the initial position."""
        ...

    def step(self, rng: random.Random) -> LatLng:
        """Advance one step and return the new position."""
        ...

    def cohort_key(self) -> tuple:
        """Hashable statistical-identity key of this trajectory family.

        Two models with equal keys produce trajectories drawn from the
        same distribution (they differ only in their RNG streams), which
        is the property the workload engine's cohort fast path relies on
        to batch devices: same key + same resolver pool + no individual
        state ⇒ one tracer can stand in for many phantoms.
        """
        ...


def _toward(current: LatLng, target: LatLng, step_meters: float) -> LatLng:
    """Move up to ``step_meters`` from ``current`` toward ``target``."""
    distance = current.distance_to(target)
    if distance <= step_meters:
        return target
    return current.destination(current.initial_bearing_to(target), step_meters)


@dataclass
class RandomWaypoint:
    """Classic random-waypoint mobility across an outdoor region.

    The device picks a uniform random waypoint inside ``bounds``, walks toward
    it in ``step_meters`` increments, then picks the next waypoint.
    """

    bounds: BoundingBox
    step_meters: float = 40.0
    position: LatLng = field(init=False)
    _target: LatLng = field(init=False)

    def reset(self, rng: random.Random) -> LatLng:
        self.position = self._random_point(rng)
        self._target = self._random_point(rng)
        return self.position

    def step(self, rng: random.Random) -> LatLng:
        if self.position.distance_to(self._target) < 1.0:
            self._target = self._random_point(rng)
        self.position = _toward(self.position, self._target, self.step_meters)
        return self.position

    def _random_point(self, rng: random.Random) -> LatLng:
        return LatLng(
            rng.uniform(self.bounds.south, self.bounds.north),
            rng.uniform(self.bounds.west, self.bounds.east),
        )

    def cohort_key(self) -> tuple:
        bounds = self.bounds
        return (
            "waypoint",
            bounds.south,
            bounds.west,
            bounds.north,
            bounds.east,
            self.step_meters,
        )


@dataclass
class AisleWalk:
    """Indoor shopping mobility: entrance → shelf → shelf … inside one store.

    Targets are the store's stocked shelf locations, so the walk visits the
    same places localization fingerprints and product search results live.
    """

    store: IndoorWorld
    step_meters: float = 3.0
    position: LatLng = field(init=False)
    _target: LatLng = field(init=False)
    _shelves: list[LatLng] = field(init=False)

    def __post_init__(self) -> None:
        self._shelves = [
            self.store.product_locations[name]
            for name in sorted(self.store.product_locations)
        ]

    def reset(self, rng: random.Random) -> LatLng:
        self.position = self.store.entrance
        self._target = self._random_shelf(rng)
        return self.position

    def step(self, rng: random.Random) -> LatLng:
        if self.position.distance_to(self._target) < 0.5:
            self._target = self._random_shelf(rng)
        self.position = _toward(self.position, self._target, self.step_meters)
        return self.position

    def _random_shelf(self, rng: random.Random) -> LatLng:
        if not self._shelves:
            return self.store.entrance
        return self._shelves[rng.randrange(len(self._shelves))]

    def cohort_key(self) -> tuple:
        entrance = self.store.entrance
        return ("aisle", entrance.latitude, entrance.longitude, self.step_meters)


@dataclass
class CommuterTrace:
    """A scripted multi-stop commute with dwell time: journeys that outlive TTLs.

    :class:`CommuterHandoff` ping-pongs fast enough that a device usually
    crosses a coverage boundary with its caches still warm.  Real commutes
    are slower: walk to the station, dwell, ride across town, dwell again —
    by the time the commuter re-enters a zone its discovery records, device
    cache entries and even the servers' registrations may have expired.
    ``dwell_steps`` holds the device at each stop for that many steps, so
    with the workload engine's ``step_seconds`` pacing a full circuit spans
    ``(travel + dwell) * stops`` simulated seconds — configure it longer
    than the registration TTL and every lap exercises the gone-stale path:
    re-resolution, renewed discovery traffic, and (under churn) stale
    records for servers that died while the commuter was across town.
    """

    stops: list[LatLng]
    dwell_steps: int = 4
    step_meters: float = 60.0
    position: LatLng = field(init=False)
    _next_stop: int = field(init=False, default=1)
    _dwell_remaining: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if len(self.stops) < 2:
            raise ValueError("a commute trace needs at least two stops")
        if self.dwell_steps < 0:
            raise ValueError("dwell steps cannot be negative")

    def reset(self, rng: random.Random) -> LatLng:
        self.position = self.stops[0]
        self._next_stop = 1
        self._dwell_remaining = self.dwell_steps
        return self.position

    def step(self, rng: random.Random) -> LatLng:
        if self._dwell_remaining > 0:
            self._dwell_remaining -= 1
            return self.position
        target = self.stops[self._next_stop]
        self.position = _toward(self.position, target, self.step_meters)
        if self.position.distance_to(target) < 1.0:
            self._next_stop = (self._next_stop + 1) % len(self.stops)
            self._dwell_remaining = self.dwell_steps
        return self.position

    def cohort_key(self) -> tuple:
        stops = tuple((stop.latitude, stop.longitude) for stop in self.stops)
        return ("trace", stops, self.dwell_steps, self.step_meters)


@dataclass
class CommuterHandoff:
    """Back-and-forth commute between fixed stops (e.g. two store entrances).

    Walking the leg between stops crosses the coverage boundary between
    adjacent map servers, which is exactly the discovery-handoff case the
    federated client must keep consistent.
    """

    stops: list[LatLng]
    step_meters: float = 30.0
    position: LatLng = field(init=False)
    _next_stop: int = field(init=False, default=1)

    def __post_init__(self) -> None:
        if len(self.stops) < 2:
            raise ValueError("a commute needs at least two stops")

    def reset(self, rng: random.Random) -> LatLng:
        self.position = self.stops[0]
        self._next_stop = 1
        return self.position

    def step(self, rng: random.Random) -> LatLng:
        target = self.stops[self._next_stop]
        self.position = _toward(self.position, target, self.step_meters)
        if self.position.distance_to(target) < 1.0:
            self._next_stop = (self._next_stop + 1) % len(self.stops)
        return self.position

    def cohort_key(self) -> tuple:
        stops = tuple((stop.latitude, stop.longitude) for stop in self.stops)
        return ("commute", stops, self.step_meters)
