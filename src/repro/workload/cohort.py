"""Cohort planning: the large-fleet fast path's sampling structure.

Above :class:`~repro.workload.engine.WorkloadConfig.cohort_min_clients`
the engine stops materializing one Python client stack per device and
instead partitions the fleet into *cohorts* of statistically identical
devices: same mobility family (and parameters), same resolver pool, same
request mix, and no individual state at fleet build time.  Each cohort is
represented by a handful of **tracer** devices — real, fully simulated
:class:`~repro.workload.engine.FleetClient`s that keep their true
index-derived RNG streams, caches, replica-health memories and SRV views
— while the rest of the cohort exists only as integer *phantom* counts
whose server-side load each tracer charges in batch after its own request
(:meth:`repro.simulation.queueing.ServerQueue.phantom_arrivals`).

Tracers ARE the slow-path escape hatch: any state that makes a device
individual (a mid-decay cache entry, a `ReplicaHealth` memory, a stale
``srv_view`` after an operator re-weight) lives on tracers and is
simulated per-device through the full client stack; phantoms never carry
state, which is exactly what makes them batchable.

Weights are integral and exact: a cohort of ``N`` devices with ``T``
tracers gives the first ``N mod T`` tracers weight ``N // T + 1`` and the
rest ``N // T``, so the weights sum to ``N`` and every fleet-level
counter extrapolates without rounding drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workload.engine import FleetClient


@dataclass
class Cohort:
    """One equivalence class of statistically identical devices."""

    key: Hashable
    """Statistical-identity key: ``(mobility spec, resolver pool index)``."""

    label: str
    """Human-readable id used in the report's ``sampling.*`` keys."""

    population: int = 0
    """Total devices in the cohort (tracers + phantoms)."""

    tracer_indices: list[int] = field(default_factory=list)
    """Device indices simulated for real — the lowest indices of the
    cohort, so their seed-derived RNG streams are exactly the streams
    those devices would own in an exact run."""

    tracers: list["FleetClient"] = field(default_factory=list)
    """Materialized tracer devices (filled in by the engine)."""

    def tracer_weights(self) -> list[int]:
        """Integral per-tracer weights that sum exactly to ``population``."""
        count = len(self.tracer_indices)
        if count == 0:
            return []
        base, remainder = divmod(self.population, count)
        return [base + 1 if i < remainder else base for i in range(count)]

    @property
    def phantom_count(self) -> int:
        return self.population - len(self.tracer_indices)


def plan_cohorts(
    assignments: Iterable[tuple[int, Hashable, str]],
    tracers_per_cohort: int,
) -> list[Cohort]:
    """Partition device indices into cohorts, picking tracer indices.

    ``assignments`` yields ``(device index, cohort key, cohort label)`` in
    index order; the first ``tracers_per_cohort`` indices of each cohort
    become its tracers.  One arithmetic pass — no device objects are
    created here, so planning a million-device fleet costs a dict lookup
    per index and nothing else.
    """
    if tracers_per_cohort < 1:
        raise ValueError("a cohort needs at least one tracer")
    cohorts: dict[Hashable, Cohort] = {}
    for index, key, label in assignments:
        cohort = cohorts.get(key)
        if cohort is None:
            cohort = Cohort(key=key, label=label)
            cohorts[key] = cohort
        cohort.population += 1
        if len(cohort.tracer_indices) < tracers_per_cohort:
            cohort.tracer_indices.append(index)
    return list(cohorts.values())
