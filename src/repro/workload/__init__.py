"""Workload generation: fleets of simulated clients issuing mixed traffic.

The paper argues DNS-based spatial discovery scales because map-server
addresses rarely change and are therefore highly cacheable (Section 5.1).
This package provides the traffic side of that argument: deterministic,
seedable fleets of :class:`repro.core.client.OpenFlameClient` devices that
move through the world under simple mobility models and issue a mixed
search/route/tile/localize workload with Zipf-distributed POI popularity,
so caches can be measured under realistic request streams.
"""

from repro.workload.cohort import Cohort, plan_cohorts
from repro.workload.engine import (
    FleetClient,
    WorkloadConfig,
    WorkloadEngine,
    WorkloadReport,
    client_base_seed,
    derived_seed_streams,
)
from repro.workload.events import Event, EventHeap, EventKind
from repro.workload.mobility import (
    AisleWalk,
    CommuterHandoff,
    CommuterTrace,
    MobilityModel,
    RandomWaypoint,
)
from repro.workload.traffic import RequestKind, RequestMix, ZipfSampler, zipf_weights

__all__ = [
    "AisleWalk",
    "Cohort",
    "CommuterHandoff",
    "CommuterTrace",
    "Event",
    "EventHeap",
    "EventKind",
    "FleetClient",
    "MobilityModel",
    "RandomWaypoint",
    "RequestKind",
    "RequestMix",
    "WorkloadConfig",
    "WorkloadEngine",
    "WorkloadReport",
    "ZipfSampler",
    "client_base_seed",
    "derived_seed_streams",
    "plan_cohorts",
    "zipf_weights",
]
