"""Geographic and local-frame point primitives.

The paper's map servers are heterogeneous in their coordinate frames: a global
outdoor map is laid out in geographic (latitude/longitude) coordinates, while
an indoor map is typically aligned only against its own local Cartesian frame
(Section 3, "Heterogeneity of maps").  This module provides both kinds of
points plus the small amount of arithmetic the rest of the library needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

EARTH_RADIUS_METERS = 6_371_008.8
"""Mean earth radius used for all spherical computations."""

MIN_LATITUDE = -90.0
MAX_LATITUDE = 90.0
MIN_LONGITUDE = -180.0
MAX_LONGITUDE = 180.0


def _wrap_longitude(longitude: float) -> float:
    """Wrap a longitude into the canonical [-180, 180) range."""
    wrapped = math.fmod(longitude + 180.0, 360.0)
    if wrapped < 0:
        wrapped += 360.0
    return wrapped - 180.0


def _clamp_latitude(latitude: float) -> float:
    """Clamp a latitude into the valid [-90, 90] range."""
    return max(MIN_LATITUDE, min(MAX_LATITUDE, latitude))


@dataclass(frozen=True, slots=True)
class LatLng:
    """A point on the earth's surface in degrees.

    Instances are immutable and hashable so they can be used as dictionary
    keys (e.g. geocode indexes) and set members.
    """

    latitude: float
    longitude: float

    def __post_init__(self) -> None:
        if not (MIN_LATITUDE <= self.latitude <= MAX_LATITUDE):
            raise ValueError(f"latitude {self.latitude} outside [-90, 90]")
        if not (MIN_LONGITUDE <= self.longitude <= 180.0):
            raise ValueError(f"longitude {self.longitude} outside [-180, 180]")

    @classmethod
    def normalized(cls, latitude: float, longitude: float) -> "LatLng":
        """Build a LatLng, clamping latitude and wrapping longitude."""
        return cls(_clamp_latitude(latitude), _wrap_longitude(longitude))

    @property
    def latitude_radians(self) -> float:
        return math.radians(self.latitude)

    @property
    def longitude_radians(self) -> float:
        return math.radians(self.longitude)

    def distance_to(self, other: "LatLng") -> float:
        """Great-circle distance to ``other`` in meters (haversine)."""
        return haversine_distance(self, other)

    def initial_bearing_to(self, other: "LatLng") -> float:
        """Initial bearing (degrees clockwise from north) toward ``other``."""
        lat1 = self.latitude_radians
        lat2 = other.latitude_radians
        dlon = other.longitude_radians - self.longitude_radians
        x = math.sin(dlon) * math.cos(lat2)
        y = math.cos(lat1) * math.sin(lat2) - math.sin(lat1) * math.cos(lat2) * math.cos(dlon)
        bearing = math.degrees(math.atan2(x, y))
        return bearing % 360.0

    def destination(self, bearing_degrees: float, distance_meters: float) -> "LatLng":
        """Point reached by travelling ``distance_meters`` along ``bearing_degrees``."""
        angular = distance_meters / EARTH_RADIUS_METERS
        bearing = math.radians(bearing_degrees)
        lat1 = self.latitude_radians
        lon1 = self.longitude_radians
        lat2 = math.asin(
            math.sin(lat1) * math.cos(angular)
            + math.cos(lat1) * math.sin(angular) * math.cos(bearing)
        )
        lon2 = lon1 + math.atan2(
            math.sin(bearing) * math.sin(angular) * math.cos(lat1),
            math.cos(angular) - math.sin(lat1) * math.sin(lat2),
        )
        return LatLng.normalized(math.degrees(lat2), math.degrees(lon2))

    def midpoint(self, other: "LatLng") -> "LatLng":
        """Geographic midpoint between this point and ``other``."""
        lat1, lon1 = self.latitude_radians, self.longitude_radians
        lat2, lon2 = other.latitude_radians, other.longitude_radians
        dlon = lon2 - lon1
        bx = math.cos(lat2) * math.cos(dlon)
        by = math.cos(lat2) * math.sin(dlon)
        lat3 = math.atan2(
            math.sin(lat1) + math.sin(lat2),
            math.sqrt((math.cos(lat1) + bx) ** 2 + by**2),
        )
        lon3 = lon1 + math.atan2(by, math.cos(lat1) + bx)
        return LatLng.normalized(math.degrees(lat3), math.degrees(lon3))

    def as_tuple(self) -> tuple[float, float]:
        return (self.latitude, self.longitude)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.latitude:.6f}, {self.longitude:.6f})"


@dataclass(frozen=True, slots=True)
class LocalPoint:
    """A point in a map server's private Cartesian frame, in meters.

    Indoor maps are usually surveyed in a local frame whose origin and
    orientation are not precisely aligned to latitude/longitude (Section 3).
    A :class:`LocalPoint` carries the ``frame`` identifier so that mixing
    coordinates from different frames is an explicit, checkable error.
    """

    x: float
    y: float
    frame: str = "local"

    def distance_to(self, other: "LocalPoint") -> float:
        """Euclidean distance in meters; both points must share a frame."""
        if self.frame != other.frame:
            raise ValueError(
                f"cannot measure distance across frames {self.frame!r} and {other.frame!r}"
            )
        return math.hypot(self.x - other.x, self.y - other.y)

    def translated(self, dx: float, dy: float) -> "LocalPoint":
        return LocalPoint(self.x + dx, self.y + dy, self.frame)

    def as_tuple(self) -> tuple[float, float]:
        return (self.x, self.y)


def haversine_distance(a: LatLng, b: LatLng) -> float:
    """Great-circle distance between two points in meters."""
    # Hot path (nearest-vertex snapping, stitch scoring): locals instead of
    # repeated property/attribute lookups roughly halve the call cost.
    radians, sin, cos = math.radians, math.sin, math.cos
    lat1 = radians(a.latitude)
    lat2 = radians(b.latitude)
    sin_dlat = sin((lat2 - lat1) / 2.0)
    sin_dlon = sin(radians(b.longitude - a.longitude) / 2.0)
    h = sin_dlat * sin_dlat + cos(lat1) * cos(lat2) * sin_dlon * sin_dlon
    return 2.0 * EARTH_RADIUS_METERS * math.asin(min(1.0, math.sqrt(h)))


def euclidean_distance(a: LocalPoint, b: LocalPoint) -> float:
    """Planar distance between two local-frame points in meters."""
    return a.distance_to(b)


def meters_per_degree_latitude() -> float:
    """Approximate meters spanned by one degree of latitude."""
    return math.pi * EARTH_RADIUS_METERS / 180.0


def meters_per_degree_longitude(latitude: float) -> float:
    """Approximate meters spanned by one degree of longitude at ``latitude``."""
    return meters_per_degree_latitude() * math.cos(math.radians(latitude))
