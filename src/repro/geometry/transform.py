"""Planar similarity / affine transforms between coordinate frames.

This is the computational core of MapCruncher-style alignment (Section 5.2,
tile rendering): given a handful of manual point correspondences between two
heterogeneous maps, estimate the transform that best aligns one frame with the
other, then use it to re-project tiles, routes, or localization results.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.geometry.point import LocalPoint


@dataclass(frozen=True, slots=True)
class SimilarityTransform:
    """A 2-D similarity transform: uniform scale, rotation, translation.

    ``apply`` maps source-frame coordinates to destination-frame coordinates:
    ``dst = scale * R(theta) @ src + t``.
    """

    scale: float
    rotation_radians: float
    translation_x: float
    translation_y: float
    source_frame: str = "source"
    destination_frame: str = "destination"

    def apply(self, point: LocalPoint) -> LocalPoint:
        if point.frame != self.source_frame:
            raise ValueError(
                f"point frame {point.frame!r} does not match transform source {self.source_frame!r}"
            )
        cos_t = math.cos(self.rotation_radians)
        sin_t = math.sin(self.rotation_radians)
        x = self.scale * (cos_t * point.x - sin_t * point.y) + self.translation_x
        y = self.scale * (sin_t * point.x + cos_t * point.y) + self.translation_y
        return LocalPoint(x, y, self.destination_frame)

    def apply_xy(self, x: float, y: float) -> tuple[float, float]:
        cos_t = math.cos(self.rotation_radians)
        sin_t = math.sin(self.rotation_radians)
        return (
            self.scale * (cos_t * x - sin_t * y) + self.translation_x,
            self.scale * (sin_t * x + cos_t * y) + self.translation_y,
        )

    def inverse(self) -> "SimilarityTransform":
        """Transform mapping destination-frame points back to the source frame."""
        if self.scale == 0:
            raise ValueError("cannot invert a transform with zero scale")
        inv_scale = 1.0 / self.scale
        cos_t = math.cos(-self.rotation_radians)
        sin_t = math.sin(-self.rotation_radians)
        tx = -inv_scale * (cos_t * self.translation_x - sin_t * self.translation_y)
        ty = -inv_scale * (sin_t * self.translation_x + cos_t * self.translation_y)
        return SimilarityTransform(
            inv_scale, -self.rotation_radians, tx, ty,
            source_frame=self.destination_frame,
            destination_frame=self.source_frame,
        )

    def compose(self, inner: "SimilarityTransform") -> "SimilarityTransform":
        """The transform equivalent to applying ``inner`` first, then ``self``."""
        if inner.destination_frame != self.source_frame:
            raise ValueError(
                "inner transform destination frame must match outer source frame"
            )
        scale = self.scale * inner.scale
        rotation = self.rotation_radians + inner.rotation_radians
        tx, ty = self.apply_xy(inner.translation_x, inner.translation_y)
        return SimilarityTransform(
            scale, rotation, tx, ty,
            source_frame=inner.source_frame,
            destination_frame=self.destination_frame,
        )

    @classmethod
    def identity(cls, frame: str = "local") -> "SimilarityTransform":
        return cls(1.0, 0.0, 0.0, 0.0, source_frame=frame, destination_frame=frame)


def estimate_similarity(
    source_points: Sequence[tuple[float, float]],
    destination_points: Sequence[tuple[float, float]],
    source_frame: str = "source",
    destination_frame: str = "destination",
) -> SimilarityTransform:
    """Least-squares similarity transform from point correspondences.

    Implements the Umeyama closed-form solution.  At least two distinct
    correspondences are required; with exactly two the fit is exact, with more
    it is least-squares (this is what lets noisy manual correspondences still
    give a usable alignment, the MapCruncher scenario).
    """
    if len(source_points) != len(destination_points):
        raise ValueError("source and destination correspondence counts differ")
    if len(source_points) < 2:
        raise ValueError("at least two correspondences are required")

    src = np.asarray(source_points, dtype=float)
    dst = np.asarray(destination_points, dtype=float)

    src_mean = src.mean(axis=0)
    dst_mean = dst.mean(axis=0)
    src_centered = src - src_mean
    dst_centered = dst - dst_mean

    src_var = float((src_centered**2).sum()) / len(src)
    if src_var < 1e-18:
        raise ValueError("source correspondences are degenerate (all identical)")

    covariance = dst_centered.T @ src_centered / len(src)
    u, singular_values, vt = np.linalg.svd(covariance)
    sign = np.eye(2)
    if np.linalg.det(u) * np.linalg.det(vt) < 0:
        sign[1, 1] = -1.0
    rotation_matrix = u @ sign @ vt
    scale = float(np.trace(np.diag(singular_values) @ sign)) / src_var
    rotation = math.atan2(rotation_matrix[1, 0], rotation_matrix[0, 0])
    translation = dst_mean - scale * rotation_matrix @ src_mean

    return SimilarityTransform(
        scale=scale,
        rotation_radians=rotation,
        translation_x=float(translation[0]),
        translation_y=float(translation[1]),
        source_frame=source_frame,
        destination_frame=destination_frame,
    )


def alignment_residual_meters(
    transform: SimilarityTransform,
    source_points: Sequence[tuple[float, float]],
    destination_points: Sequence[tuple[float, float]],
) -> float:
    """Root-mean-square residual of a fitted transform over correspondences."""
    if len(source_points) != len(destination_points) or not source_points:
        raise ValueError("correspondence lists must be non-empty and equal length")
    total = 0.0
    for (sx, sy), (dx, dy) in zip(source_points, destination_points):
        tx, ty = transform.apply_xy(sx, sy)
        total += (tx - dx) ** 2 + (ty - dy) ** 2
    return math.sqrt(total / len(source_points))
