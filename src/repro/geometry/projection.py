"""Projections between geographic and local Cartesian coordinates.

Indoor map servers keep their data in a local frame (Section 3); when a map is
*roughly* georeferenced (an anchor point and a rotation are known), a local
tangent-plane projection converts between the two representations.  The
projection is deliberately simple — an equirectangular approximation around an
anchor — because all maps in this system span at most a few kilometres.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.geometry.point import (
    LatLng,
    LocalPoint,
    meters_per_degree_latitude,
    meters_per_degree_longitude,
)


@dataclass(frozen=True, slots=True)
class LocalProjection:
    """Maps between :class:`LatLng` and a local east/north meter frame.

    ``anchor`` is the geographic point corresponding to the local origin and
    ``rotation_degrees`` is the counter-clockwise rotation of the local +x axis
    relative to geographic east.  ``frame`` names the local frame so projected
    points carry their provenance.
    """

    anchor: LatLng
    rotation_degrees: float = 0.0
    frame: str = "local"

    def to_local(self, point: LatLng) -> LocalPoint:
        """Project a geographic point into the local frame."""
        east = (point.longitude - self.anchor.longitude) * meters_per_degree_longitude(
            self.anchor.latitude
        )
        north = (point.latitude - self.anchor.latitude) * meters_per_degree_latitude()
        angle = math.radians(-self.rotation_degrees)
        x = east * math.cos(angle) - north * math.sin(angle)
        y = east * math.sin(angle) + north * math.cos(angle)
        return LocalPoint(x, y, self.frame)

    def to_geographic(self, point: LocalPoint) -> LatLng:
        """Unproject a local point back to geographic coordinates."""
        if point.frame != self.frame:
            raise ValueError(
                f"point frame {point.frame!r} does not match projection frame {self.frame!r}"
            )
        angle = math.radians(self.rotation_degrees)
        east = point.x * math.cos(angle) - point.y * math.sin(angle)
        north = point.x * math.sin(angle) + point.y * math.cos(angle)
        lat = self.anchor.latitude + north / meters_per_degree_latitude()
        lng = self.anchor.longitude + east / meters_per_degree_longitude(self.anchor.latitude)
        return LatLng(lat, lng)

    def with_rotation(self, rotation_degrees: float) -> "LocalProjection":
        return LocalProjection(self.anchor, rotation_degrees, self.frame)
