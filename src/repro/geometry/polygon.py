"""Simple geographic polygons.

A map's coverage region (its "zone" in the spatial namespace) is modelled as a
simple polygon.  The discovery layer approximates polygons with cell
coverings; the polygon itself is retained so that map servers can make exact
containment decisions when answering queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.geometry.bbox import BoundingBox
from repro.geometry.point import (
    LatLng,
    meters_per_degree_latitude,
    meters_per_degree_longitude,
)


@dataclass(frozen=True)
class Polygon:
    """A simple (non self-intersecting) polygon of geographic vertices.

    Vertices are stored in order; the polygon is implicitly closed.  The
    polygon must have at least three vertices.
    """

    vertices: tuple[LatLng, ...]
    _bbox: BoundingBox = field(init=False, repr=False, compare=False)

    def __init__(self, vertices: Sequence[LatLng]):
        points = tuple(vertices)
        if len(points) < 3:
            raise ValueError("a polygon needs at least three vertices")
        object.__setattr__(self, "vertices", points)
        object.__setattr__(self, "_bbox", BoundingBox.from_points(points))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_bbox(cls, box: BoundingBox) -> "Polygon":
        return cls(box.corners())

    @classmethod
    def regular(cls, center: LatLng, radius_meters: float, sides: int = 8) -> "Polygon":
        """A regular polygon approximating a disc around ``center``."""
        if sides < 3:
            raise ValueError("a regular polygon needs at least three sides")
        vertices = [
            center.destination(360.0 * i / sides, radius_meters) for i in range(sides)
        ]
        return cls(vertices)

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def bounding_box(self) -> BoundingBox:
        return self._bbox

    @property
    def centroid(self) -> LatLng:
        """Planar centroid of the vertices (adequate for small regions)."""
        lat = sum(v.latitude for v in self.vertices) / len(self.vertices)
        lng = sum(v.longitude for v in self.vertices) / len(self.vertices)
        return LatLng(lat, lng)

    def area_square_meters(self) -> float:
        """Approximate area via the shoelace formula on a local projection."""
        origin = self.centroid
        lat_scale = meters_per_degree_latitude()
        lng_scale = meters_per_degree_longitude(origin.latitude)
        xy = [
            ((v.longitude - origin.longitude) * lng_scale, (v.latitude - origin.latitude) * lat_scale)
            for v in self.vertices
        ]
        total = 0.0
        n = len(xy)
        for i in range(n):
            x1, y1 = xy[i]
            x2, y2 = xy[(i + 1) % n]
            total += x1 * y2 - x2 * y1
        return abs(total) / 2.0

    def perimeter_meters(self) -> float:
        total = 0.0
        n = len(self.vertices)
        for i in range(n):
            total += self.vertices[i].distance_to(self.vertices[(i + 1) % n])
        return total

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains(self, point: LatLng) -> bool:
        """Ray-casting point-in-polygon test (boundary points count as inside)."""
        if not self._bbox.contains(point):
            return False
        x, y = point.longitude, point.latitude
        inside = False
        n = len(self.vertices)
        for i in range(n):
            x1, y1 = self.vertices[i].longitude, self.vertices[i].latitude
            x2, y2 = self.vertices[(i + 1) % n].longitude, self.vertices[(i + 1) % n].latitude
            if _on_segment(x, y, x1, y1, x2, y2):
                return True
            if (y1 > y) != (y2 > y):
                x_cross = (x2 - x1) * (y - y1) / (y2 - y1) + x1
                if x < x_cross:
                    inside = not inside
        return inside

    def intersects_box(self, box: BoundingBox) -> bool:
        """Conservative polygon/box intersection test.

        True if any polygon vertex is inside the box, any box corner is inside
        the polygon, or any polygon edge crosses a box edge.
        """
        if not self._bbox.intersects(box):
            return False
        if any(box.contains(v) for v in self.vertices):
            return True
        if any(self.contains(c) for c in box.corners()):
            return True
        box_corners = box.corners()
        n = len(self.vertices)
        for i in range(n):
            a, b = self.vertices[i], self.vertices[(i + 1) % n]
            for j in range(4):
                c, d = box_corners[j], box_corners[(j + 1) % 4]
                if _segments_intersect(
                    a.longitude, a.latitude, b.longitude, b.latitude,
                    c.longitude, c.latitude, d.longitude, d.latitude,
                ):
                    return True
        return False


def _on_segment(px: float, py: float, x1: float, y1: float, x2: float, y2: float) -> bool:
    """True if point (px, py) lies on the segment (x1, y1)-(x2, y2)."""
    cross = (x2 - x1) * (py - y1) - (y2 - y1) * (px - x1)
    if abs(cross) > 1e-12:
        return False
    return min(x1, x2) - 1e-12 <= px <= max(x1, x2) + 1e-12 and min(y1, y2) - 1e-12 <= py <= max(y1, y2) + 1e-12


def _orientation(ax: float, ay: float, bx: float, by: float, cx: float, cy: float) -> int:
    value = (by - ay) * (cx - bx) - (bx - ax) * (cy - by)
    if abs(value) < 1e-15:
        return 0
    return 1 if value > 0 else -1


def _segments_intersect(
    ax: float, ay: float, bx: float, by: float,
    cx: float, cy: float, dx: float, dy: float,
) -> bool:
    """True if segments AB and CD intersect (including touching)."""
    o1 = _orientation(ax, ay, bx, by, cx, cy)
    o2 = _orientation(ax, ay, bx, by, dx, dy)
    o3 = _orientation(cx, cy, dx, dy, ax, ay)
    o4 = _orientation(cx, cy, dx, dy, bx, by)
    if o1 != o2 and o3 != o4:
        return True
    if o1 == 0 and _on_segment(cx, cy, ax, ay, bx, by):
        return True
    if o2 == 0 and _on_segment(dx, dy, ax, ay, bx, by):
        return True
    if o3 == 0 and _on_segment(ax, ay, cx, cy, dx, dy):
        return True
    if o4 == 0 and _on_segment(bx, by, cx, cy, dx, dy):
        return True
    return False
