"""Geometric primitives shared by every subsystem.

Exports points, distances, bounding boxes, polygons, local projections, and
frame-to-frame similarity transforms.
"""

from repro.geometry.bbox import BoundingBox
from repro.geometry.point import (
    EARTH_RADIUS_METERS,
    LatLng,
    LocalPoint,
    euclidean_distance,
    haversine_distance,
    meters_per_degree_latitude,
    meters_per_degree_longitude,
)
from repro.geometry.polygon import Polygon
from repro.geometry.projection import LocalProjection
from repro.geometry.transform import (
    SimilarityTransform,
    alignment_residual_meters,
    estimate_similarity,
)

__all__ = [
    "EARTH_RADIUS_METERS",
    "BoundingBox",
    "LatLng",
    "LocalPoint",
    "LocalProjection",
    "Polygon",
    "SimilarityTransform",
    "alignment_residual_meters",
    "estimate_similarity",
    "euclidean_distance",
    "haversine_distance",
    "meters_per_degree_latitude",
    "meters_per_degree_longitude",
]
