"""Axis-aligned geographic bounding boxes.

Bounding boxes are the workhorse region primitive: map servers advertise the
region they cover as a bounding box (optionally refined by a polygon), the
spatial index computes coverings of bounding boxes, and search services use
them to bound candidate sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.geometry.point import (
    LatLng,
    meters_per_degree_latitude,
    meters_per_degree_longitude,
)


@dataclass(frozen=True, slots=True)
class BoundingBox:
    """A latitude/longitude aligned rectangle.

    The box is closed on all sides.  Boxes never wrap the antimeridian; the
    world generators only produce longitudes well inside (-180, 180), and the
    constructor rejects inverted boxes to catch bugs early.
    """

    south: float
    west: float
    north: float
    east: float

    def __post_init__(self) -> None:
        if self.south > self.north:
            raise ValueError(f"south {self.south} > north {self.north}")
        if self.west > self.east:
            raise ValueError(f"west {self.west} > east {self.east}")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_points(cls, points: Iterable[LatLng]) -> "BoundingBox":
        """Smallest box containing every point in ``points``."""
        pts = list(points)
        if not pts:
            raise ValueError("cannot build a bounding box from zero points")
        lats = [p.latitude for p in pts]
        lngs = [p.longitude for p in pts]
        return cls(min(lats), min(lngs), max(lats), max(lngs))

    @classmethod
    def around(cls, center: LatLng, radius_meters: float) -> "BoundingBox":
        """Box that conservatively contains a disc of ``radius_meters``."""
        if radius_meters < 0:
            raise ValueError("radius must be non-negative")
        dlat = radius_meters / meters_per_degree_latitude()
        lon_scale = meters_per_degree_longitude(center.latitude)
        dlng = radius_meters / lon_scale if lon_scale > 1e-9 else 180.0
        return cls(
            max(-90.0, center.latitude - dlat),
            max(-180.0, center.longitude - dlng),
            min(90.0, center.latitude + dlat),
            min(180.0, center.longitude + dlng),
        )

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def center(self) -> LatLng:
        return LatLng((self.south + self.north) / 2.0, (self.west + self.east) / 2.0)

    @property
    def south_west(self) -> LatLng:
        return LatLng(self.south, self.west)

    @property
    def north_east(self) -> LatLng:
        return LatLng(self.north, self.east)

    @property
    def width_degrees(self) -> float:
        return self.east - self.west

    @property
    def height_degrees(self) -> float:
        return self.north - self.south

    def diagonal_meters(self) -> float:
        """Length of the box diagonal in meters."""
        return self.south_west.distance_to(self.north_east)

    def area_square_meters(self) -> float:
        """Approximate planar area of the box in square meters."""
        height = self.height_degrees * meters_per_degree_latitude()
        width = self.width_degrees * meters_per_degree_longitude(self.center.latitude)
        return abs(height * width)

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains(self, point: LatLng) -> bool:
        return (
            self.south <= point.latitude <= self.north
            and self.west <= point.longitude <= self.east
        )

    def contains_box(self, other: "BoundingBox") -> bool:
        return (
            self.south <= other.south
            and self.north >= other.north
            and self.west <= other.west
            and self.east >= other.east
        )

    def intersects(self, other: "BoundingBox") -> bool:
        return not (
            other.west > self.east
            or other.east < self.west
            or other.south > self.north
            or other.north < self.south
        )

    # ------------------------------------------------------------------
    # Combinators
    # ------------------------------------------------------------------
    def union(self, other: "BoundingBox") -> "BoundingBox":
        return BoundingBox(
            min(self.south, other.south),
            min(self.west, other.west),
            max(self.north, other.north),
            max(self.east, other.east),
        )

    def intersection(self, other: "BoundingBox") -> "BoundingBox | None":
        if not self.intersects(other):
            return None
        return BoundingBox(
            max(self.south, other.south),
            max(self.west, other.west),
            min(self.north, other.north),
            min(self.east, other.east),
        )

    def expanded(self, margin_meters: float) -> "BoundingBox":
        """Box grown by ``margin_meters`` on every side.

        Used to model the "fuzzy boundary" of a map (Section 3): a map server's
        advertised region is expanded so that points slightly outside the
        surveyed polygon still discover the server.
        """
        dlat = margin_meters / meters_per_degree_latitude()
        lon_scale = meters_per_degree_longitude(self.center.latitude)
        dlng = margin_meters / lon_scale if lon_scale > 1e-9 else 0.0
        return BoundingBox(
            max(-90.0, self.south - dlat),
            max(-180.0, self.west - dlng),
            min(90.0, self.north + dlat),
            min(180.0, self.east + dlng),
        )

    def corners(self) -> list[LatLng]:
        """The four corners, counter-clockwise starting at the south-west."""
        return [
            LatLng(self.south, self.west),
            LatLng(self.south, self.east),
            LatLng(self.north, self.east),
            LatLng(self.north, self.west),
        ]

    def grid_points(self, rows: int, cols: int) -> list[LatLng]:
        """A ``rows``x``cols`` lattice of points covering the box."""
        if rows < 1 or cols < 1:
            raise ValueError("rows and cols must be >= 1")
        points = []
        for i in range(rows):
            for j in range(cols):
                lat = self.south + (self.north - self.south) * (i / max(1, rows - 1) if rows > 1 else 0.5)
                lng = self.west + (self.east - self.west) * (j / max(1, cols - 1) if cols > 1 else 0.5)
                points.append(LatLng(lat, lng))
        return points
