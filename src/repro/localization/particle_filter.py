"""A particle filter for fusing motion updates with position fixes.

This is the "local SLAM algorithm" stand-in of Section 5.2: a client that
keeps a particle filter alive can fuse dead-reckoned motion with the
(possibly conflicting) localization results returned by multiple map servers
and obtain both a fused estimate and a dispersion-based uncertainty.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.point import LatLng, meters_per_degree_latitude, meters_per_degree_longitude
from repro.localization.imu import MotionUpdate


@dataclass
class ParticleFilter:
    """A planar particle filter over latitude/longitude.

    Internally particles live in a local east/north meter frame around the
    initial position, which keeps the arithmetic simple and exact enough for
    building-scale tracking.
    """

    particle_count: int = 300
    motion_noise_meters: float = 0.3
    seed: int = 7

    def __post_init__(self) -> None:
        if self.particle_count < 10:
            raise ValueError("particle_count must be at least 10")
        self._rng = np.random.default_rng(self.seed)
        self._origin: LatLng | None = None
        self._particles = np.zeros((self.particle_count, 2))
        self._weights = np.full(self.particle_count, 1.0 / self.particle_count)

    # ------------------------------------------------------------------
    # Frame helpers
    # ------------------------------------------------------------------
    def _to_xy(self, location: LatLng) -> np.ndarray:
        assert self._origin is not None
        east = (location.longitude - self._origin.longitude) * meters_per_degree_longitude(
            self._origin.latitude
        )
        north = (location.latitude - self._origin.latitude) * meters_per_degree_latitude()
        return np.array([east, north])

    def _to_latlng(self, xy: np.ndarray) -> LatLng:
        assert self._origin is not None
        lng = self._origin.longitude + xy[0] / meters_per_degree_longitude(self._origin.latitude)
        lat = self._origin.latitude + xy[1] / meters_per_degree_latitude()
        return LatLng(lat, lng)

    # ------------------------------------------------------------------
    # Filter steps
    # ------------------------------------------------------------------
    def initialize(self, location: LatLng, spread_meters: float = 5.0) -> None:
        """Seed particles around an initial fix."""
        self._origin = location
        self._particles = self._rng.normal(0.0, spread_meters, size=(self.particle_count, 2))
        self._weights = np.full(self.particle_count, 1.0 / self.particle_count)

    @property
    def initialized(self) -> bool:
        return self._origin is not None

    def predict(self, update: MotionUpdate) -> None:
        """Propagate particles by a motion update plus noise."""
        self._require_initialized()
        heading = np.radians(update.heading_degrees)
        step = np.array([np.sin(heading), np.cos(heading)]) * update.distance_meters
        noise = self._rng.normal(0.0, self.motion_noise_meters, size=self._particles.shape)
        self._particles = self._particles + step + noise

    def update(self, fix: LatLng, accuracy_meters: float) -> None:
        """Reweight particles against an external position fix and resample."""
        self._require_initialized()
        sigma = max(accuracy_meters, 0.5)
        fix_xy = self._to_xy(fix)
        squared = ((self._particles - fix_xy) ** 2).sum(axis=1)
        likelihood = np.exp(-0.5 * squared / sigma**2) + 1e-12
        self._weights = self._weights * likelihood
        self._weights /= self._weights.sum()
        if self.effective_sample_size() < self.particle_count / 2:
            self._resample()

    def estimate(self) -> tuple[LatLng, float]:
        """Weighted mean position and RMS dispersion (meters)."""
        self._require_initialized()
        mean_xy = (self._particles * self._weights[:, None]).sum(axis=0)
        deviations = self._particles - mean_xy
        variance = (self._weights * (deviations**2).sum(axis=1)).sum()
        return self._to_latlng(mean_xy), float(np.sqrt(max(variance, 0.0)))

    def effective_sample_size(self) -> float:
        return float(1.0 / (self._weights**2).sum())

    def _resample(self) -> None:
        indices = self._rng.choice(
            self.particle_count, size=self.particle_count, replace=True, p=self._weights
        )
        self._particles = self._particles[indices]
        self._weights = np.full(self.particle_count, 1.0 / self.particle_count)

    def _require_initialized(self) -> None:
        if self._origin is None:
            raise RuntimeError("particle filter must be initialized with a first fix")
