"""IMU dead reckoning and motion-consistency checks.

Section 5.2 (Localization): after collecting localization results from
several discovered servers, "the client then selects the best one by
comparing these results with its own IMU sensors or local SLAM algorithm."

:class:`DeadReckoningTracker` integrates step-like motion updates from an
anchor pose; :func:`consistency_score` quantifies how well a candidate
localization result agrees with where dead reckoning says the device should
be.  The fusion layer uses that score to reject outlier results from
overlapping or unrelated maps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.geometry.point import LatLng


@dataclass(frozen=True, slots=True)
class MotionUpdate:
    """One dead-reckoning increment: a heading and a travelled distance."""

    heading_degrees: float
    distance_meters: float

    def __post_init__(self) -> None:
        if self.distance_meters < 0:
            raise ValueError("distance must be non-negative")


@dataclass
class DeadReckoningTracker:
    """Integrates motion updates from the last anchored position.

    ``drift_rate`` models accumulating IMU error: the tracker's position
    uncertainty grows by ``drift_rate`` meters for every meter travelled since
    the last anchor.
    """

    anchor: LatLng
    drift_rate: float = 0.05
    anchor_accuracy_meters: float = 1.0
    _position: LatLng = field(init=False)
    _travelled: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        self._position = self.anchor

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def apply(self, update: MotionUpdate) -> LatLng:
        """Advance the estimate by one motion update and return the new position."""
        self._position = self._position.destination(update.heading_degrees, update.distance_meters)
        self._travelled += update.distance_meters
        return self._position

    def re_anchor(self, location: LatLng, accuracy_meters: float = 1.0) -> None:
        """Reset the tracker at an externally provided (trusted) fix."""
        self.anchor = location
        self._position = location
        self._travelled = 0.0
        self.anchor_accuracy_meters = accuracy_meters

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def position(self) -> LatLng:
        return self._position

    @property
    def travelled_meters(self) -> float:
        return self._travelled

    @property
    def uncertainty_meters(self) -> float:
        """Current position uncertainty: anchor accuracy plus accumulated drift."""
        return self.anchor_accuracy_meters + self.drift_rate * self._travelled


def consistency_score(tracker: DeadReckoningTracker, candidate: LatLng) -> float:
    """How consistent a candidate fix is with dead reckoning, in (0, 1].

    1.0 means the candidate coincides with the dead-reckoned position; the
    score decays with the candidate's distance measured in units of the
    tracker's current uncertainty.
    """
    distance = tracker.position.distance_to(candidate)
    scale = max(tracker.uncertainty_meters, 1.0)
    return math.exp(-0.5 * (distance / scale) ** 2)
