"""Localization substrate: cues, fingerprint matching, dead reckoning, fusion."""

from repro.localization.cues import (
    BeaconCue,
    BeaconReading,
    CueBundle,
    CueType,
    FiducialCue,
    GnssCue,
    ImageCue,
    LocalizationResult,
    LocationCue,
)
from repro.localization.fingerprint import (
    BEACON_MIN_RSSI_DBM,
    BEACON_PATH_LOSS_EXPONENT,
    BEACON_TX_POWER_DBM,
    BeaconFingerprint,
    BeaconFingerprintDatabase,
    FiducialRegistry,
    ImageFingerprint,
    ImageFingerprintDatabase,
    rssi_at_distance,
)
from repro.localization.fusion import LocalizationSelector, ScoredResult
from repro.localization.imu import DeadReckoningTracker, MotionUpdate, consistency_score
from repro.localization.particle_filter import ParticleFilter

__all__ = [
    "BEACON_MIN_RSSI_DBM",
    "BEACON_PATH_LOSS_EXPONENT",
    "BEACON_TX_POWER_DBM",
    "BeaconCue",
    "BeaconFingerprint",
    "BeaconFingerprintDatabase",
    "BeaconReading",
    "CueBundle",
    "CueType",
    "DeadReckoningTracker",
    "FiducialCue",
    "FiducialRegistry",
    "GnssCue",
    "ImageCue",
    "ImageFingerprint",
    "ImageFingerprintDatabase",
    "LocalizationResult",
    "LocalizationSelector",
    "LocationCue",
    "MotionUpdate",
    "ParticleFilter",
    "ScoredResult",
    "consistency_score",
    "rssi_at_distance",
]
