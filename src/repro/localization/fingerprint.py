"""Fingerprint databases: matching location cues to positions.

A map server that advertises beacon or image localization holds a fingerprint
database — a set of surveyed reference points, each with the cue signature
observed there.  Localization is nearest-neighbour matching in signature
space followed by weighted averaging of the best matches' positions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.geometry.point import LatLng
from repro.localization.cues import BeaconCue, CueType, ImageCue, LocalizationResult

# Log-distance path-loss model parameters shared by the signal simulator in
# worldgen and the matcher here (they only need to be mutually consistent).
BEACON_TX_POWER_DBM = -40.0
BEACON_PATH_LOSS_EXPONENT = 2.2
BEACON_MIN_RSSI_DBM = -100.0


def rssi_at_distance(distance_meters: float) -> float:
    """Expected RSSI of a beacon at ``distance_meters`` (log-distance model)."""
    d = max(distance_meters, 0.5)
    return BEACON_TX_POWER_DBM - 10.0 * BEACON_PATH_LOSS_EXPONENT * math.log10(d)


@dataclass(frozen=True, slots=True)
class BeaconFingerprint:
    """The beacon signature observed at one surveyed reference point."""

    location: LatLng
    rssi_by_beacon: dict[str, float]


@dataclass
class BeaconFingerprintDatabase:
    """Matches beacon cues against surveyed beacon signatures."""

    fingerprints: list[BeaconFingerprint] = field(default_factory=list)
    k_neighbors: int = 3

    def add(self, fingerprint: BeaconFingerprint) -> None:
        self.fingerprints.append(fingerprint)

    def __len__(self) -> int:
        return len(self.fingerprints)

    def localize(self, cue: BeaconCue, server_id: str) -> LocalizationResult | None:
        """Weighted k-nearest-neighbour localization in RSSI space."""
        if not self.fingerprints or not cue.readings:
            return None
        observed = cue.reading_map()
        scored: list[tuple[float, BeaconFingerprint]] = []
        for fingerprint in self.fingerprints:
            distance = self._signature_distance(observed, fingerprint.rssi_by_beacon)
            if distance is None:
                continue
            scored.append((distance, fingerprint))
        if not scored:
            return None
        scored.sort(key=lambda item: item[0])
        best = scored[: self.k_neighbors]

        weights = [1.0 / (distance + 1e-3) for distance, _ in best]
        total_weight = sum(weights)
        lat = sum(w * fp.location.latitude for w, (_, fp) in zip(weights, best)) / total_weight
        lng = sum(w * fp.location.longitude for w, (_, fp) in zip(weights, best)) / total_weight
        estimate = LatLng(lat, lng)

        # Accuracy: spread of the matched fingerprints around the estimate.
        spread = max(estimate.distance_to(fp.location) for _, fp in best)
        accuracy = max(1.0, spread)
        mean_signature_distance = sum(d for d, _ in best) / len(best)
        confidence = 1.0 / (1.0 + mean_signature_distance / 10.0)
        return LocalizationResult(
            server_id=server_id,
            location=estimate,
            accuracy_meters=accuracy,
            confidence=min(1.0, confidence),
            cue_type=CueType.BEACON,
        )

    @staticmethod
    def _signature_distance(observed: dict[str, float], reference: dict[str, float]) -> float | None:
        """RMS difference over beacons present in both signatures."""
        common = set(observed) & set(reference)
        if not common:
            return None
        total = sum((observed[b] - reference[b]) ** 2 for b in common)
        # Penalise sparse overlap so signatures sharing more beacons win.
        overlap_penalty = 10.0 * (len(observed) - len(common))
        return math.sqrt(total / len(common)) + overlap_penalty


@dataclass(frozen=True)
class ImageFingerprint:
    """The image descriptor captured at one surveyed reference point."""

    location: LatLng
    descriptor: tuple[float, ...]
    heading_degrees: float | None = None


@dataclass
class ImageFingerprintDatabase:
    """Matches image cues against surveyed visual descriptors (cosine similarity)."""

    fingerprints: list[ImageFingerprint] = field(default_factory=list)
    k_neighbors: int = 3
    min_similarity: float = 0.2

    def add(self, fingerprint: ImageFingerprint) -> None:
        self.fingerprints.append(fingerprint)

    def __len__(self) -> int:
        return len(self.fingerprints)

    def localize(self, cue: ImageCue, server_id: str) -> LocalizationResult | None:
        if not self.fingerprints:
            return None
        query = cue.as_array()
        query_norm = np.linalg.norm(query)
        if query_norm < 1e-12:
            return None

        scored: list[tuple[float, ImageFingerprint]] = []
        for fingerprint in self.fingerprints:
            reference = np.asarray(fingerprint.descriptor, dtype=float)
            if reference.shape != query.shape:
                continue
            denom = query_norm * np.linalg.norm(reference)
            if denom < 1e-12:
                continue
            similarity = float(query @ reference / denom)
            scored.append((similarity, fingerprint))
        if not scored:
            return None
        scored.sort(key=lambda item: item[0], reverse=True)
        best = [item for item in scored[: self.k_neighbors] if item[0] >= self.min_similarity]
        if not best:
            return None

        weights = [max(similarity, 1e-3) for similarity, _ in best]
        total_weight = sum(weights)
        lat = sum(w * fp.location.latitude for w, (_, fp) in zip(weights, best)) / total_weight
        lng = sum(w * fp.location.longitude for w, (_, fp) in zip(weights, best)) / total_weight
        estimate = LatLng(lat, lng)
        spread = max(estimate.distance_to(fp.location) for _, fp in best)
        top_similarity = best[0][0]
        headings = [fp.heading_degrees for _, fp in best if fp.heading_degrees is not None]
        return LocalizationResult(
            server_id=server_id,
            location=estimate,
            accuracy_meters=max(0.5, spread),
            confidence=min(1.0, max(0.0, top_similarity)),
            cue_type=CueType.IMAGE,
            heading_degrees=headings[0] if headings else None,
        )


@dataclass
class FiducialRegistry:
    """Known fiducial tags and their surveyed positions."""

    tags: dict[str, LatLng] = field(default_factory=dict)

    def add(self, tag_id: str, location: LatLng) -> None:
        self.tags[tag_id] = location

    def __len__(self) -> int:
        return len(self.tags)

    def localize(self, tag_id: str, offset_east: float, offset_north: float, server_id: str) -> LocalizationResult | None:
        anchor = self.tags.get(tag_id)
        if anchor is None:
            return None
        # Apply the camera offset from the tag.
        moved = anchor.destination(90.0, offset_east).destination(0.0, offset_north)
        return LocalizationResult(
            server_id=server_id,
            location=moved,
            accuracy_meters=0.3,
            confidence=0.98,
            cue_type=CueType.FIDUCIAL,
        )
