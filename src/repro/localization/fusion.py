"""Client-side selection and fusion of localization results.

Section 5.2: the client "might discover multiple overlapping servers or even
unrelated maps because of the coarseness of the discovery process... The
client then selects the best one by comparing these results with its own IMU
sensors or local SLAM algorithm.  The most plausible result is returned to
the application."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.localization.cues import CueType, LocalizationResult
from repro.localization.imu import DeadReckoningTracker, consistency_score

# Relative trust in each localization technology, used to break ties between
# results that are equally consistent with dead reckoning.
_TECHNOLOGY_PRIOR = {
    CueType.FIDUCIAL: 1.0,
    CueType.IMAGE: 0.9,
    CueType.BEACON: 0.75,
    CueType.GNSS: 0.5,
}


@dataclass(frozen=True, slots=True)
class ScoredResult:
    """A localization result with the client-side plausibility score attached."""

    result: LocalizationResult
    plausibility: float


@dataclass
class LocalizationSelector:
    """Scores candidate results and picks the most plausible one.

    The plausibility of a candidate combines (a) the server-reported
    confidence, (b) a prior on the localization technology, and (c) — when a
    dead-reckoning tracker is available — the candidate's consistency with
    the client's own motion estimate.  ``min_plausibility`` rejects results
    from unrelated maps outright.
    """

    min_plausibility: float = 0.05
    consistency_floor: float = 0.05

    def score(
        self,
        result: LocalizationResult,
        tracker: DeadReckoningTracker | None = None,
    ) -> float:
        """Plausibility of one candidate.

        Without a tracker the score is the server confidence weighted by a
        technology prior.  With a tracker the score is additionally *gated*
        by consistency with dead reckoning: a result far from where the
        device's own motion estimate says it is can only retain
        ``consistency_floor`` of its base score, no matter how confident the
        server was — this is what rejects answers from unrelated maps that
        the coarse discovery step swept in.
        """
        prior = _TECHNOLOGY_PRIOR.get(result.cue_type, 0.5)
        base = result.confidence * prior
        if tracker is None:
            return base
        consistency = consistency_score(tracker, result.location)
        gate = self.consistency_floor + (1.0 - self.consistency_floor) * consistency
        return base * gate

    def rank(
        self,
        results: list[LocalizationResult],
        tracker: DeadReckoningTracker | None = None,
    ) -> list[ScoredResult]:
        """All candidates scored and sorted, best first."""
        scored = [ScoredResult(r, self.score(r, tracker)) for r in results]
        scored.sort(key=lambda item: item.plausibility, reverse=True)
        return scored

    def select(
        self,
        results: list[LocalizationResult],
        tracker: DeadReckoningTracker | None = None,
    ) -> ScoredResult | None:
        """The most plausible result, or None if nothing clears the threshold."""
        ranked = self.rank(results, tracker)
        if not ranked:
            return None
        best = ranked[0]
        if best.plausibility < self.min_plausibility:
            return None
        return best
