"""Location cues: the sensor observations a client sends for localization.

Section 5.2 (Localization): "the client sends them 'location cues' collected
by the device sensors — images, beacon signals, fiduciary tag scans, etc.
The location cue sent to the map server depends on the localization
technology advertised by the server."

We model three cue families that cover the paper's examples:

* **Beacon cues** — RSSI readings from BLE/WiFi beacons with known ids.
* **Image cues** — a compact feature vector standing in for an image
  descriptor (visual positioning), matched against a fingerprint database.
* **Fiducial cues** — the observed id and relative offset of a printed tag
  with a precisely known position.

A GNSS (GPS-like) cue is included as the coarse outdoor fallback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.geometry.point import LatLng


class CueType(str, Enum):
    """The localization technologies a map server may advertise (Section 5.2)."""

    GNSS = "gnss"
    BEACON = "beacon"
    IMAGE = "image"
    FIDUCIAL = "fiducial"


@dataclass(frozen=True, slots=True)
class GnssCue:
    """A coarse satellite fix with an accuracy estimate."""

    location: LatLng
    accuracy_meters: float = 10.0

    @property
    def cue_type(self) -> CueType:
        return CueType.GNSS


@dataclass(frozen=True, slots=True)
class BeaconReading:
    """One received beacon: its identifier and signal strength in dBm."""

    beacon_id: str
    rssi_dbm: float


@dataclass(frozen=True, slots=True)
class BeaconCue:
    """A set of simultaneous beacon readings."""

    readings: tuple[BeaconReading, ...]

    @property
    def cue_type(self) -> CueType:
        return CueType.BEACON

    def reading_map(self) -> dict[str, float]:
        return {reading.beacon_id: reading.rssi_dbm for reading in self.readings}


@dataclass(frozen=True)
class ImageCue:
    """A visual descriptor of what the camera currently sees.

    The descriptor is an arbitrary-length float vector; real systems would use
    a learned global image embedding, here world generators synthesise
    location-dependent vectors with controllable noise.
    """

    descriptor: tuple[float, ...]

    @property
    def cue_type(self) -> CueType:
        return CueType.IMAGE

    def as_array(self) -> np.ndarray:
        return np.asarray(self.descriptor, dtype=float)


@dataclass(frozen=True, slots=True)
class FiducialCue:
    """An observed fiducial tag and the camera's offset from it in meters."""

    tag_id: str
    offset_east_meters: float = 0.0
    offset_north_meters: float = 0.0

    @property
    def cue_type(self) -> CueType:
        return CueType.FIDUCIAL


LocationCue = GnssCue | BeaconCue | ImageCue | FiducialCue


@dataclass(frozen=True, slots=True)
class LocalizationResult:
    """A map server's answer to a localization request."""

    server_id: str
    location: LatLng
    accuracy_meters: float
    confidence: float
    cue_type: CueType
    heading_degrees: float | None = None

    def __post_init__(self) -> None:
        if not (0.0 <= self.confidence <= 1.0):
            raise ValueError("confidence must be in [0, 1]")
        if self.accuracy_meters < 0:
            raise ValueError("accuracy must be non-negative")


@dataclass
class CueBundle:
    """Everything a client has sensed at one instant, grouped by cue type."""

    gnss: GnssCue | None = None
    beacons: BeaconCue | None = None
    image: ImageCue | None = None
    fiducials: list[FiducialCue] = field(default_factory=list)

    def available_types(self) -> set[CueType]:
        types: set[CueType] = set()
        if self.gnss is not None:
            types.add(CueType.GNSS)
        if self.beacons is not None and self.beacons.readings:
            types.add(CueType.BEACON)
        if self.image is not None:
            types.add(CueType.IMAGE)
        if self.fiducials:
            types.add(CueType.FIDUCIAL)
        return types

    def cue_for(self, cue_type: CueType) -> LocationCue | None:
        """The cue of the requested type, if the bundle contains one."""
        if cue_type == CueType.GNSS:
            return self.gnss
        if cue_type == CueType.BEACON:
            return self.beacons
        if cue_type == CueType.IMAGE:
            return self.image
        if cue_type == CueType.FIDUCIAL:
            return self.fiducials[0] if self.fiducials else None
        raise ValueError(f"unknown cue type {cue_type}")
