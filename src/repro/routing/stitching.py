"""Client-side stitching of per-server partial routes.

Section 5.2 (Routing): "Each map server would calculate the route that is
relevant for the region that they cover.  The client would collect paths from
all relevant map servers, and stitch them together such that the final path
optimizes a metric of interest."

A :class:`RouteStitcher` takes partial routes expressed as geographic
polylines (so that routes computed in different maps/frames can be combined)
and joins them at their nearest endpoints, inserting connector segments where
two servers' coverage meets (e.g. the storefront where the city map hands
over to the grocery store map).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.point import LatLng


@dataclass(frozen=True, slots=True)
class RouteLeg:
    """A partial route computed by one map server."""

    server_id: str
    points: tuple[LatLng, ...]
    cost: float
    metric: str = "distance"

    def __post_init__(self) -> None:
        if len(self.points) < 1:
            raise ValueError("a route leg needs at least one point")

    @property
    def start(self) -> LatLng:
        return self.points[0]

    @property
    def end(self) -> LatLng:
        return self.points[-1]

    def length_meters(self) -> float:
        return sum(a.distance_to(b) for a, b in zip(self.points, self.points[1:]))


@dataclass(frozen=True, slots=True)
class StitchedRoute:
    """The final end-to-end route presented to the application."""

    points: tuple[LatLng, ...]
    legs: tuple[RouteLeg, ...]
    connector_meters: float
    total_cost: float

    def length_meters(self) -> float:
        return sum(a.distance_to(b) for a, b in zip(self.points, self.points[1:]))

    @property
    def servers(self) -> tuple[str, ...]:
        return tuple(leg.server_id for leg in self.legs)


class StitchError(Exception):
    """Raised when legs cannot be combined into a continuous route."""


@dataclass
class RouteStitcher:
    """Greedy nearest-endpoint stitcher.

    ``max_gap_meters`` bounds how far apart two legs' endpoints may be and
    still be considered joinable (the handover region); larger gaps mean the
    servers' coverages do not actually meet and stitching fails loudly.
    """

    max_gap_meters: float = 150.0

    def stitch(
        self,
        origin: LatLng,
        destination: LatLng,
        legs: list[RouteLeg],
    ) -> StitchedRoute:
        """Order and join ``legs`` into a continuous origin→destination route."""
        if not legs:
            raise StitchError("no route legs to stitch")

        remaining = list(legs)
        ordered: list[RouteLeg] = []
        current_point = origin
        connector = 0.0

        while remaining:
            leg, reversed_leg, gap = self._closest_leg(current_point, remaining)
            if gap > self.max_gap_meters:
                raise StitchError(
                    f"gap of {gap:.1f} m to the nearest remaining leg exceeds "
                    f"max_gap_meters={self.max_gap_meters}"
                )
            remaining.remove(leg)
            chosen = self._maybe_reverse(leg, reversed_leg)
            ordered.append(chosen)
            connector += gap
            current_point = chosen.end

        final_gap = current_point.distance_to(destination)
        if final_gap > self.max_gap_meters:
            raise StitchError(
                f"stitched route ends {final_gap:.1f} m from the destination "
                f"(max allowed {self.max_gap_meters})"
            )
        connector += final_gap

        points: list[LatLng] = [origin]
        for leg in ordered:
            if points[-1] != leg.start:
                points.append(leg.start)
            points.extend(leg.points[1:] if leg.points[0] == points[-1] else leg.points)
        if points[-1] != destination:
            points.append(destination)

        total_cost = sum(leg.cost for leg in ordered) + connector
        return StitchedRoute(tuple(points), tuple(ordered), connector, total_cost)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _closest_leg(
        point: LatLng, legs: list[RouteLeg]
    ) -> tuple[RouteLeg, bool, float]:
        """The leg whose start (or end, if reversed) is nearest to ``point``."""
        best_leg = legs[0]
        best_reversed = False
        best_gap = float("inf")
        for leg in legs:
            gap_forward = point.distance_to(leg.start)
            gap_backward = point.distance_to(leg.end)
            if gap_forward < best_gap:
                best_leg, best_reversed, best_gap = leg, False, gap_forward
            if gap_backward < best_gap:
                best_leg, best_reversed, best_gap = leg, True, gap_backward
        return best_leg, best_reversed, best_gap

    @staticmethod
    def _maybe_reverse(leg: RouteLeg, reverse: bool) -> RouteLeg:
        if not reverse:
            return leg
        return RouteLeg(leg.server_id, tuple(reversed(leg.points)), leg.cost, leg.metric)


def route_stretch(stitched: StitchedRoute, optimal_meters: float) -> float:
    """Stretch factor of a stitched route relative to the optimal route length.

    A stretch of 1.0 means the federated route matched the centralized
    optimum; experiment E5 reports this distribution.
    """
    if optimal_meters <= 0:
        raise ValueError("optimal route length must be positive")
    return stitched.length_meters() / optimal_meters
