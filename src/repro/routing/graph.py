"""Road/path graphs extracted from map data.

Routing services (Section 4, "Routing") operate on a graph derived from a
map's navigable ways.  The same extraction is used by both the centralized
baseline (one graph over the merged world map) and by each federated map
server (one graph per map), so route-quality comparisons are apples to
apples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator
from weakref import WeakKeyDictionary

from repro.geometry.point import LatLng
from repro.osm.elements import TAG_HIGHWAY, Node, Way
from repro.osm.mapdata import MapData
from repro.spatialindex.quadtree import QuadTree

ROUTABLE_TAGS = (TAG_HIGHWAY, "indoor_path", "corridor", "aisle_path")
"""A way is routable if it carries any of these tags."""


class GraphError(Exception):
    """Raised for malformed graph operations (unknown vertices, no path)."""


@dataclass(frozen=True, slots=True)
class Edge:
    """A directed edge of the routing graph."""

    source: int
    target: int
    length_meters: float
    way_id: int | None = None
    travel_seconds: float | None = None

    def cost(self, metric: str = "distance") -> float:
        """Edge cost under a named metric ("distance" or "time")."""
        if metric == "distance":
            return self.length_meters
        if metric == "time":
            if self.travel_seconds is not None:
                return self.travel_seconds
            walking_speed_mps = 1.4
            return self.length_meters / walking_speed_mps
        raise GraphError(f"unknown routing metric {metric!r}")


@dataclass(eq=False)
class RoutingGraph:
    """A directed graph whose vertices are map node ids.

    ``eq=False`` keeps identity semantics (and hashability), which the
    preprocessing memos key on; structural comparison of whole graphs was
    never meaningful.
    """

    _locations: dict[int, LatLng] = field(default_factory=dict)
    _adjacency: dict[int, list[Edge]] = field(default_factory=dict)
    _reverse: dict[int, list[Edge]] = field(default_factory=dict)
    _index: QuadTree[int] | None = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_vertex(self, node_id: int, location: LatLng) -> None:
        if node_id not in self._locations:
            self._locations[node_id] = location
            self._adjacency[node_id] = []
            self._reverse[node_id] = []
            self._index = None

    def add_edge(self, edge: Edge, bidirectional: bool = True) -> None:
        if edge.source not in self._locations or edge.target not in self._locations:
            raise GraphError("both endpoints must be added before the edge")
        self._adjacency[edge.source].append(edge)
        self._reverse[edge.target].append(edge)
        if bidirectional:
            mirrored = Edge(edge.target, edge.source, edge.length_meters, edge.way_id, edge.travel_seconds)
            self._adjacency[edge.target].append(mirrored)
            self._reverse[edge.source].append(mirrored)

    def connect(self, source: int, target: int, bidirectional: bool = True, way_id: int | None = None) -> Edge:
        """Add an edge whose length is the great-circle distance between endpoints."""
        length = self.location(source).distance_to(self.location(target))
        edge = Edge(source, target, length, way_id)
        self.add_edge(edge, bidirectional)
        return edge

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def vertex_count(self) -> int:
        return len(self._locations)

    @property
    def edge_count(self) -> int:
        return sum(len(edges) for edges in self._adjacency.values())

    def vertices(self) -> Iterator[int]:
        return iter(self._locations)

    def has_vertex(self, node_id: int) -> bool:
        return node_id in self._locations

    def location(self, node_id: int) -> LatLng:
        try:
            return self._locations[node_id]
        except KeyError:
            raise GraphError(f"unknown vertex {node_id}") from None

    def out_edges(self, node_id: int) -> list[Edge]:
        if node_id not in self._adjacency:
            raise GraphError(f"unknown vertex {node_id}")
        return self._adjacency[node_id]

    def in_edges(self, node_id: int) -> list[Edge]:
        if node_id not in self._reverse:
            raise GraphError(f"unknown vertex {node_id}")
        return self._reverse[node_id]

    def neighbors(self, node_id: int) -> list[int]:
        return [edge.target for edge in self.out_edges(node_id)]

    # ------------------------------------------------------------------
    # Spatial helpers
    # ------------------------------------------------------------------
    def _ensure_index(self) -> QuadTree[int]:
        if self._index is None:
            from repro.geometry.bbox import BoundingBox

            bounds = BoundingBox.from_points(self._locations.values()).expanded(200.0)
            index: QuadTree[int] = QuadTree(bounds)
            for node_id, location in self._locations.items():
                index.insert(location, node_id)
            self._index = index
        return self._index

    def nearest_vertex(self, point: LatLng) -> int:
        """The graph vertex closest to ``point`` (snapping for route endpoints)."""
        if not self._locations:
            raise GraphError("graph has no vertices")
        hits = self._ensure_index().nearest(point, count=1)
        return hits[0][1]

    def path_length_meters(self, path: list[int]) -> float:
        """Total length of a vertex path using stored edge lengths when available."""
        total = 0.0
        for a, b in zip(path, path[1:]):
            edge = next((e for e in self.out_edges(a) if e.target == b), None)
            if edge is not None:
                total += edge.length_meters
            else:
                total += self.location(a).distance_to(self.location(b))
        return total

    def path_locations(self, path: list[int]) -> list[LatLng]:
        return [self.location(node_id) for node_id in path]


_graph_memo: "WeakKeyDictionary[MapData, tuple[int, tuple[str, ...], RoutingGraph]]" = (
    WeakKeyDictionary()
)
"""Extracted graphs memoized per map (weakly) and per map *version*.

Benchmarks and fleet sweeps build many federations over the same generated
worlds; re-extracting an identical graph per federation is pure waste.  The
entry is keyed on :attr:`MapData.version`, so any mutation of the map
invalidates it, and the weak reference lets worlds be garbage collected.
"""


def graph_from_map(
    map_data: MapData,
    routable_tags: Iterable[str] = ROUTABLE_TAGS,
    use_cache: bool = True,
) -> RoutingGraph:
    """Build a routing graph from a map's routable ways (memoized per map).

    Every way tagged with one of ``routable_tags`` contributes a chain of
    bidirectional edges between consecutive nodes.  ``use_cache=False``
    forces a fresh extraction — callers that *measure* extraction cost (the
    centralized preprocessing benchmarks) must not time a memo lookup.
    """
    tag_set = tuple(routable_tags)
    if use_cache:
        cached = _graph_memo.get(map_data)
        if cached is not None:
            version, cached_tags, cached_graph = cached
            if version == map_data.version and cached_tags == tag_set:
                return cached_graph
    graph = RoutingGraph()
    for way in map_data.ways():
        if not _is_routable(way, tag_set):
            continue
        nodes = map_data.way_nodes(way.way_id)
        _add_way_edges(graph, way, nodes)
    if use_cache:
        _graph_memo[map_data] = (map_data.version, tag_set, graph)
    return graph


def _is_routable(way: Way, routable_tags: tuple[str, ...]) -> bool:
    return any(key in way.tags for key in routable_tags)


def _add_way_edges(graph: RoutingGraph, way: Way, nodes: list[Node]) -> None:
    for node in nodes:
        graph.add_vertex(node.node_id, node.location)
    one_way = way.tags.get("oneway") == "yes"
    for a, b in zip(nodes, nodes[1:]):
        length = a.location.distance_to(b.location)
        graph.add_edge(Edge(a.node_id, b.node_id, length, way.way_id), bidirectional=not one_way)
