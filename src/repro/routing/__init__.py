"""Routing substrate: graphs, shortest paths, contraction hierarchies, stitching."""

from repro.routing.contraction import ContractionHierarchy, build_contraction_hierarchy
from repro.routing.graph import (
    ROUTABLE_TAGS,
    Edge,
    GraphError,
    RoutingGraph,
    graph_from_map,
)
from repro.routing.shortest_path import (
    NoRouteError,
    Route,
    astar,
    bidirectional_dijkstra,
    dijkstra,
    dijkstra_all,
)
from repro.routing.stitching import (
    RouteLeg,
    RouteStitcher,
    StitchError,
    StitchedRoute,
    route_stretch,
)

__all__ = [
    "ContractionHierarchy",
    "Edge",
    "GraphError",
    "NoRouteError",
    "ROUTABLE_TAGS",
    "Route",
    "RouteLeg",
    "RouteStitcher",
    "RoutingGraph",
    "StitchError",
    "StitchedRoute",
    "astar",
    "bidirectional_dijkstra",
    "build_contraction_hierarchy",
    "dijkstra",
    "dijkstra_all",
    "graph_from_map",
    "route_stretch",
]
