"""Shortest-path algorithms: Dijkstra, A*, bidirectional Dijkstra.

These are the baseline query algorithms of the centralized model's routing
server (Section 4.1) and of each federated map server's routing service.  The
contraction-hierarchy preprocessing in ``contraction.py`` builds on the same
graph abstraction.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.geometry.point import LatLng
from repro.routing.graph import GraphError, RoutingGraph


@dataclass(frozen=True, slots=True)
class Route:
    """A computed route: ordered vertex ids plus total cost."""

    vertices: tuple[int, ...]
    cost: float
    metric: str = "distance"
    settled_vertices: int = 0

    @property
    def is_empty(self) -> bool:
        return not self.vertices

    @property
    def source(self) -> int:
        if self.is_empty:
            raise GraphError("empty route has no source")
        return self.vertices[0]

    @property
    def target(self) -> int:
        if self.is_empty:
            raise GraphError("empty route has no target")
        return self.vertices[-1]

    def locations(self, graph: RoutingGraph) -> list[LatLng]:
        return graph.path_locations(list(self.vertices))


class NoRouteError(GraphError):
    """Raised when no path exists between the requested endpoints."""


@dataclass
class _SearchState:
    distances: dict[int, float] = field(default_factory=dict)
    predecessors: dict[int, int] = field(default_factory=dict)
    settled: set[int] = field(default_factory=set)


def dijkstra(graph: RoutingGraph, source: int, target: int, metric: str = "distance") -> Route:
    """Plain Dijkstra search from ``source`` to ``target``."""
    _check_endpoints(graph, source, target)
    if source == target:
        return Route((source,), 0.0, metric)

    state = _SearchState()
    state.distances[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]

    while heap:
        distance, vertex = heapq.heappop(heap)
        if vertex in state.settled:
            continue
        state.settled.add(vertex)
        if vertex == target:
            return _build_route(state, source, target, metric)
        for edge in graph.out_edges(vertex):
            new_distance = distance + edge.cost(metric)
            if new_distance < state.distances.get(edge.target, float("inf")):
                state.distances[edge.target] = new_distance
                state.predecessors[edge.target] = vertex
                heapq.heappush(heap, (new_distance, edge.target))

    raise NoRouteError(f"no route from {source} to {target}")


def dijkstra_all(graph: RoutingGraph, source: int, metric: str = "distance") -> dict[int, float]:
    """Distances from ``source`` to every reachable vertex (used in tests/benches)."""
    if not graph.has_vertex(source):
        raise GraphError(f"unknown vertex {source}")
    distances = {source: 0.0}
    heap: list[tuple[float, int]] = [(0.0, source)]
    settled: set[int] = set()
    while heap:
        distance, vertex = heapq.heappop(heap)
        if vertex in settled:
            continue
        settled.add(vertex)
        for edge in graph.out_edges(vertex):
            new_distance = distance + edge.cost(metric)
            if new_distance < distances.get(edge.target, float("inf")):
                distances[edge.target] = new_distance
                heapq.heappush(heap, (new_distance, edge.target))
    return distances


def astar(graph: RoutingGraph, source: int, target: int, metric: str = "distance") -> Route:
    """A* search using great-circle distance as an admissible heuristic.

    The heuristic is only admissible for the distance metric; for other
    metrics the function falls back to Dijkstra.
    """
    if metric != "distance":
        return dijkstra(graph, source, target, metric)
    _check_endpoints(graph, source, target)
    if source == target:
        return Route((source,), 0.0, metric)

    target_location = graph.location(target)

    def heuristic(vertex: int) -> float:
        return graph.location(vertex).distance_to(target_location)

    state = _SearchState()
    state.distances[source] = 0.0
    heap: list[tuple[float, int]] = [(heuristic(source), source)]

    while heap:
        _, vertex = heapq.heappop(heap)
        if vertex in state.settled:
            continue
        state.settled.add(vertex)
        if vertex == target:
            return _build_route(state, source, target, metric)
        base = state.distances[vertex]
        for edge in graph.out_edges(vertex):
            new_distance = base + edge.cost(metric)
            if new_distance < state.distances.get(edge.target, float("inf")):
                state.distances[edge.target] = new_distance
                state.predecessors[edge.target] = vertex
                heapq.heappush(heap, (new_distance + heuristic(edge.target), edge.target))

    raise NoRouteError(f"no route from {source} to {target}")


def bidirectional_dijkstra(
    graph: RoutingGraph, source: int, target: int, metric: str = "distance"
) -> Route:
    """Bidirectional Dijkstra: simultaneous forward and backward searches."""
    _check_endpoints(graph, source, target)
    if source == target:
        return Route((source,), 0.0, metric)

    forward = _SearchState()
    backward = _SearchState()
    forward.distances[source] = 0.0
    backward.distances[target] = 0.0
    forward_heap: list[tuple[float, int]] = [(0.0, source)]
    backward_heap: list[tuple[float, int]] = [(0.0, target)]

    best_cost = float("inf")
    meeting_vertex: int | None = None

    def scan(
        heap: list[tuple[float, int]],
        state: _SearchState,
        other: _SearchState,
        use_reverse_edges: bool,
    ) -> None:
        nonlocal best_cost, meeting_vertex
        distance, vertex = heapq.heappop(heap)
        if vertex in state.settled:
            return
        state.settled.add(vertex)
        if vertex in other.distances:
            total = distance + other.distances[vertex]
            if total < best_cost:
                best_cost = total
                meeting_vertex = vertex
        edges = graph.in_edges(vertex) if use_reverse_edges else graph.out_edges(vertex)
        for edge in edges:
            neighbor = edge.source if use_reverse_edges else edge.target
            new_distance = distance + edge.cost(metric)
            if new_distance < state.distances.get(neighbor, float("inf")):
                state.distances[neighbor] = new_distance
                state.predecessors[neighbor] = vertex
                heapq.heappush(heap, (new_distance, neighbor))

    while forward_heap and backward_heap:
        top_sum = forward_heap[0][0] + backward_heap[0][0]
        if top_sum >= best_cost:
            break
        if forward_heap[0][0] <= backward_heap[0][0]:
            scan(forward_heap, forward, backward, use_reverse_edges=False)
        else:
            scan(backward_heap, backward, forward, use_reverse_edges=True)

    if meeting_vertex is None:
        raise NoRouteError(f"no route from {source} to {target}")

    forward_path = _reconstruct(forward.predecessors, source, meeting_vertex)
    backward_path = _reconstruct(backward.predecessors, target, meeting_vertex)
    full_path = forward_path + list(reversed(backward_path[:-1]))
    settled = len(forward.settled) + len(backward.settled)
    return Route(tuple(full_path), best_cost, metric, settled_vertices=settled)


def _check_endpoints(graph: RoutingGraph, source: int, target: int) -> None:
    if not graph.has_vertex(source):
        raise GraphError(f"unknown source vertex {source}")
    if not graph.has_vertex(target):
        raise GraphError(f"unknown target vertex {target}")


def _build_route(state: _SearchState, source: int, target: int, metric: str) -> Route:
    path = _reconstruct(state.predecessors, source, target)
    return Route(tuple(path), state.distances[target], metric, settled_vertices=len(state.settled))


def _reconstruct(predecessors: dict[int, int], source: int, target: int) -> list[int]:
    path = [target]
    current = target
    while current != source:
        current = predecessors[current]
        path.append(current)
    path.reverse()
    return path
