"""Contraction hierarchies (CH) preprocessing and queries.

Section 4.1 notes that centralized providers preprocess their road graph
"using the contraction hierarchies algorithm which makes routing queries
faster to compute" (citing Geisberger et al.).  This module implements CH
from scratch: a node-ordering heuristic (edge difference + deleted
neighbours), shortcut insertion, and the bidirectional upward query.

The implementation favours clarity over raw speed, but still demonstrates the
characteristic trade-off measured in experiment E10: expensive one-off
preprocessing in exchange for queries that settle far fewer vertices than
Dijkstra.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.routing.graph import GraphError, RoutingGraph
from repro.routing.shortest_path import NoRouteError, Route


@dataclass(frozen=True, slots=True)
class _ShortcutEdge:
    """A CH edge: either an original edge or a shortcut bridging a contracted node."""

    source: int
    target: int
    cost: float
    via: int | None = None  # contracted middle vertex for shortcuts


@dataclass
class ContractionHierarchy:
    """The preprocessed structure produced by :func:`build_contraction_hierarchy`."""

    order: dict[int, int]
    upward: dict[int, list[_ShortcutEdge]]
    downward: dict[int, list[_ShortcutEdge]]
    shortcut_count: int
    metric: str = "distance"
    _shortcut_via: dict[tuple[int, int], int] | None = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def query(self, source: int, target: int) -> Route:
        """Bidirectional upward search over the hierarchy."""
        if source not in self.order or target not in self.order:
            raise GraphError("query endpoints must be part of the preprocessed graph")
        if source == target:
            return Route((source,), 0.0, self.metric)

        forward_cost, forward_parent = self._upward_search(source, self.upward)
        backward_cost, backward_parent = self._upward_search(target, self.downward)

        best_cost = float("inf")
        meeting: int | None = None
        for vertex, cost in forward_cost.items():
            other = backward_cost.get(vertex)
            if other is not None and cost + other < best_cost:
                best_cost = cost + other
                meeting = vertex
        if meeting is None:
            raise NoRouteError(f"no route from {source} to {target}")

        forward_path = self._reconstruct(forward_parent, source, meeting)
        backward_path = self._reconstruct(backward_parent, target, meeting)
        combined = forward_path + list(reversed(backward_path[:-1]))
        expanded = self._expand_path(combined)
        settled = len(forward_cost) + len(backward_cost)
        return Route(tuple(expanded), best_cost, self.metric, settled_vertices=settled)

    def _upward_search(
        self, start: int, adjacency: dict[int, list[_ShortcutEdge]]
    ) -> tuple[dict[int, float], dict[int, int]]:
        distances: dict[int, float] = {start: 0.0}
        parents: dict[int, int] = {}
        settled: set[int] = set()
        heap: list[tuple[float, int]] = [(0.0, start)]
        while heap:
            distance, vertex = heapq.heappop(heap)
            if vertex in settled:
                continue
            settled.add(vertex)
            for edge in adjacency.get(vertex, []):
                new_distance = distance + edge.cost
                if new_distance < distances.get(edge.target, float("inf")):
                    distances[edge.target] = new_distance
                    parents[edge.target] = vertex
                    heapq.heappush(heap, (new_distance, edge.target))
        return distances, parents

    @staticmethod
    def _reconstruct(parents: dict[int, int], source: int, target: int) -> list[int]:
        path = [target]
        current = target
        while current != source:
            current = parents[current]
            path.append(current)
        path.reverse()
        return path

    def _expand_path(self, path: list[int]) -> list[int]:
        """Replace shortcut hops with the original vertices they bypass."""
        if self._shortcut_via is None:
            # The expansion table only depends on the preprocessed edges, so
            # it is built once on first use rather than per query.
            shortcut_via: dict[tuple[int, int], int] = {}
            for adjacency in (self.upward, self.downward):
                for edges in adjacency.values():
                    for edge in edges:
                        if edge.via is not None:
                            shortcut_via[(edge.source, edge.target)] = edge.via
            self._shortcut_via = shortcut_via
        shortcut_via = self._shortcut_via

        def expand(a: int, b: int) -> list[int]:
            via = shortcut_via.get((a, b))
            if via is None:
                return [a, b]
            left = expand(a, via)
            right = expand(via, b)
            return left[:-1] + right

        expanded = [path[0]]
        for a, b in zip(path, path[1:]):
            expanded.extend(expand(a, b)[1:])
        return expanded


def build_contraction_hierarchy(graph: RoutingGraph, metric: str = "distance") -> ContractionHierarchy:
    """Preprocess ``graph`` into a contraction hierarchy."""
    # Working adjacency (mutated as nodes are contracted).
    forward: dict[int, dict[int, _ShortcutEdge]] = {v: {} for v in graph.vertices()}
    backward: dict[int, dict[int, _ShortcutEdge]] = {v: {} for v in graph.vertices()}
    for vertex in graph.vertices():
        for edge in graph.out_edges(vertex):
            cost = edge.cost(metric)
            existing = forward[edge.source].get(edge.target)
            if existing is None or cost < existing.cost:
                shortcut = _ShortcutEdge(edge.source, edge.target, cost)
                forward[edge.source][edge.target] = shortcut
                backward[edge.target][edge.source] = shortcut

    contracted: set[int] = set()
    deleted_neighbors: dict[int, int] = {v: 0 for v in graph.vertices()}
    order: dict[int, int] = {}
    shortcut_count = 0

    def simulate_contraction(vertex: int) -> list[_ShortcutEdge]:
        """Shortcuts that contracting ``vertex`` would need."""
        needed: list[_ShortcutEdge] = []
        incoming = [e for s, e in backward[vertex].items() if s not in contracted]
        outgoing = [e for t, e in forward[vertex].items() if t not in contracted]
        for in_edge in incoming:
            for out_edge in outgoing:
                if in_edge.source == out_edge.target:
                    continue
                through_cost = in_edge.cost + out_edge.cost
                witness = _witness_search(
                    forward, contracted, in_edge.source, out_edge.target, vertex, through_cost
                )
                if witness > through_cost - 1e-12:
                    needed.append(
                        _ShortcutEdge(in_edge.source, out_edge.target, through_cost, via=vertex)
                    )
        return needed

    def priority(vertex: int) -> float:
        shortcuts = simulate_contraction(vertex)
        degree = sum(1 for s in backward[vertex] if s not in contracted) + sum(
            1 for t in forward[vertex] if t not in contracted
        )
        edge_difference = len(shortcuts) - degree
        return edge_difference * 2.0 + deleted_neighbors[vertex]

    queue: list[tuple[float, int]] = [(priority(v), v) for v in graph.vertices()]
    heapq.heapify(queue)
    rank = 0

    while queue:
        _, vertex = heapq.heappop(queue)
        if vertex in contracted:
            continue
        # Lazy update: re-evaluate priority and requeue if it is now worse
        # than the head of the queue.
        current_priority = priority(vertex)
        if queue and current_priority > queue[0][0] + 1e-12:
            heapq.heappush(queue, (current_priority, vertex))
            continue

        shortcuts = simulate_contraction(vertex)
        for shortcut in shortcuts:
            existing = forward[shortcut.source].get(shortcut.target)
            if existing is None or shortcut.cost < existing.cost:
                forward[shortcut.source][shortcut.target] = shortcut
                backward[shortcut.target][shortcut.source] = shortcut
                shortcut_count += 1
        for neighbor in list(forward[vertex]) + list(backward[vertex]):
            if neighbor not in contracted:
                deleted_neighbors[neighbor] += 1
        contracted.add(vertex)
        order[vertex] = rank
        rank += 1

    # Build the upward/downward search graphs: an edge (u, v) is "upward" if
    # rank(v) > rank(u).
    upward: dict[int, list[_ShortcutEdge]] = {v: [] for v in graph.vertices()}
    downward: dict[int, list[_ShortcutEdge]] = {v: [] for v in graph.vertices()}
    for source, edges in forward.items():
        for target, edge in edges.items():
            if order[target] > order[source]:
                upward[source].append(edge)
            else:
                downward[target].append(_ShortcutEdge(target, source, edge.cost, edge.via))

    return ContractionHierarchy(
        order=order,
        upward=upward,
        downward=downward,
        shortcut_count=shortcut_count,
        metric=metric,
    )


def _witness_search(
    forward: dict[int, dict[int, _ShortcutEdge]],
    contracted: set[int],
    source: int,
    target: int,
    excluded: int,
    limit: float,
    max_settled: int = 200,
) -> float:
    """Shortest path from source to target avoiding ``excluded``, up to ``limit``.

    Bounded Dijkstra used to decide whether a shortcut is necessary.  Returns
    the best distance found (may be infinity).
    """
    distances = {source: 0.0}
    heap: list[tuple[float, int]] = [(0.0, source)]
    settled: set[int] = set()
    while heap and len(settled) < max_settled:
        distance, vertex = heapq.heappop(heap)
        if vertex in settled:
            continue
        settled.add(vertex)
        if vertex == target:
            return distance
        if distance > limit:
            break
        for neighbor, edge in forward[vertex].items():
            if neighbor == excluded or neighbor in contracted:
                continue
            new_distance = distance + edge.cost
            if new_distance < distances.get(neighbor, float("inf")):
                distances[neighbor] = new_distance
                heapq.heappush(heap, (new_distance, neighbor))
    return distances.get(target, float("inf"))
