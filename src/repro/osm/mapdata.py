"""The MapData container: one organization's map.

A :class:`MapData` instance is the unit of federation — it is "a portion of
the spatial namespace that is independently managed by an organization"
(Section 3).  It owns nodes, ways and relations, keeps a spatial index of its
nodes, records its coverage region and (optionally) the local coordinate frame
it is surveyed in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.geometry.bbox import BoundingBox
from repro.geometry.point import LatLng
from repro.geometry.polygon import Polygon
from repro.geometry.projection import LocalProjection
from repro.osm.elements import (
    ElementRef,
    ElementType,
    Node,
    Relation,
    Way,
)
from repro.spatialindex.quadtree import QuadTree


class MapDataError(Exception):
    """Raised for structural errors in a map (missing references, duplicates)."""


@dataclass
class MapMetadata:
    """Descriptive metadata for a map: who owns it and what it covers."""

    name: str
    operator: str = "unknown"
    fidelity: str = "2d"
    coordinate_frame: str = "geographic"
    description: str = ""


class MapData:
    """A mutable collection of OSM-style elements with spatial indexing."""

    def __init__(
        self,
        metadata: MapMetadata | None = None,
        coverage: Polygon | None = None,
        projection: LocalProjection | None = None,
    ) -> None:
        self.metadata = metadata or MapMetadata(name="unnamed")
        self._nodes: dict[int, Node] = {}
        self._ways: dict[int, Way] = {}
        self._relations: dict[int, Relation] = {}
        self._coverage = coverage
        self.projection = projection
        self._index: QuadTree[int] | None = None
        self._index_dirty = True
        self._bbox: BoundingBox | None = None
        self._version = 0

    # ------------------------------------------------------------------
    # Element management
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> Node:
        if node.node_id in self._nodes:
            raise MapDataError(f"duplicate node id {node.node_id}")
        self._nodes[node.node_id] = node
        self._index_dirty = True
        self._bbox = None
        self._version += 1
        return node

    def add_way(self, way: Way) -> Way:
        if way.way_id in self._ways:
            raise MapDataError(f"duplicate way id {way.way_id}")
        missing = [nid for nid in way.node_ids if nid not in self._nodes]
        if missing:
            raise MapDataError(f"way {way.way_id} references missing nodes {missing}")
        self._ways[way.way_id] = way
        self._version += 1
        return way

    def add_relation(self, relation: Relation) -> Relation:
        if relation.relation_id in self._relations:
            raise MapDataError(f"duplicate relation id {relation.relation_id}")
        for member in relation.members:
            if not self.has_element(member.element_type, member.element_id):
                raise MapDataError(
                    f"relation {relation.relation_id} references missing "
                    f"{member.element_type.value} {member.element_id}"
                )
        self._relations[relation.relation_id] = relation
        self._version += 1
        return relation

    def remove_node(self, node_id: int) -> None:
        """Remove a node; fails if any way still references it."""
        if node_id not in self._nodes:
            raise MapDataError(f"unknown node id {node_id}")
        referencing = [w.way_id for w in self._ways.values() if node_id in w.node_ids]
        if referencing:
            raise MapDataError(f"node {node_id} still referenced by ways {referencing}")
        del self._nodes[node_id]
        self._index_dirty = True
        self._bbox = None
        self._version += 1

    def has_element(self, element_type: ElementType, element_id: int) -> bool:
        if element_type == ElementType.NODE:
            return element_id in self._nodes
        if element_type == ElementType.WAY:
            return element_id in self._ways
        return element_id in self._relations

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def node(self, node_id: int) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise MapDataError(f"unknown node id {node_id}") from None

    def way(self, way_id: int) -> Way:
        try:
            return self._ways[way_id]
        except KeyError:
            raise MapDataError(f"unknown way id {way_id}") from None

    def relation(self, relation_id: int) -> Relation:
        try:
            return self._relations[relation_id]
        except KeyError:
            raise MapDataError(f"unknown relation id {relation_id}") from None

    def nodes(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def ways(self) -> Iterator[Way]:
        return iter(self._ways.values())

    def relations(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def way_count(self) -> int:
        return len(self._ways)

    @property
    def relation_count(self) -> int:
        return len(self._relations)

    def way_nodes(self, way_id: int) -> list[Node]:
        """Resolve a way's node references to Node objects, in order."""
        return [self.node(nid) for nid in self.way(way_id).node_ids]

    def way_length_meters(self, way_id: int) -> float:
        """Length of a way's polyline in meters."""
        nodes = self.way_nodes(way_id)
        return sum(a.location.distance_to(b.location) for a, b in zip(nodes, nodes[1:]))

    # ------------------------------------------------------------------
    # Coverage and spatial queries
    # ------------------------------------------------------------------
    @property
    def coverage(self) -> Polygon:
        """The region this map claims to cover.

        If no polygon was supplied, the coverage defaults to the bounding box
        of the map's nodes — an intentionally fuzzy boundary (Section 3).
        """
        if self._coverage is not None:
            return self._coverage
        if not self._nodes:
            raise MapDataError("map has no nodes and no explicit coverage polygon")
        box = self.bounding_box()
        return Polygon.from_bbox(box)

    def set_coverage(self, polygon: Polygon) -> None:
        self._coverage = polygon

    def bounding_box(self) -> BoundingBox:
        if not self._nodes:
            raise MapDataError("map has no nodes")
        # Every tile/search request consults the map's extent; recomputing it
        # is O(nodes), so the box is cached and rebuilt alongside the spatial
        # index (``_index_dirty`` flips on any node mutation).
        if self._bbox is None:
            self._bbox = BoundingBox.from_points(n.location for n in self._nodes.values())
        return self._bbox

    def covers_point(self, point: LatLng) -> bool:
        return self.coverage.contains(point)

    @property
    def version(self) -> int:
        """Monotonic mutation counter.

        Increments on every element addition/removal, so derived structures
        (routing graphs, rendered tiles) can be memoized against a map and
        invalidated precisely when it actually changed.
        """
        return self._version

    def _ensure_index(self) -> QuadTree[int]:
        if self._index is None or self._index_dirty:
            bounds = self.bounding_box().expanded(100.0)
            index: QuadTree[int] = QuadTree(bounds)
            for node in self._nodes.values():
                index.insert(node.location, node.node_id)
            self._index = index
            self._index_dirty = False
        return self._index

    def nodes_in_box(self, box: BoundingBox) -> list[Node]:
        index = self._ensure_index()
        return [self.node(node_id) for _, node_id in index.query_box(box)]

    def nodes_near(self, center: LatLng, radius_meters: float) -> list[Node]:
        index = self._ensure_index()
        return [self.node(node_id) for _, node_id in index.query_radius(center, radius_meters)]

    def nearest_nodes(self, center: LatLng, count: int = 1) -> list[Node]:
        index = self._ensure_index()
        return [self.node(node_id) for _, node_id in index.nearest(center, count)]

    # ------------------------------------------------------------------
    # Tag queries
    # ------------------------------------------------------------------
    def find_nodes_by_tag(self, key: str, value: str | None = None) -> list[Node]:
        return [n for n in self._nodes.values() if n.has_tag(key, value)]

    def find_ways_by_tag(self, key: str, value: str | None = None) -> list[Way]:
        return [w for w in self._ways.values() if w.has_tag(key, value)]

    def find_nodes_by_name(self, name: str) -> list[Node]:
        lowered = name.lower()
        return [n for n in self._nodes.values() if (n.name or "").lower() == lowered]

    # ------------------------------------------------------------------
    # Bulk operations
    # ------------------------------------------------------------------
    def merge(self, other: "MapData", id_offset: int = 0) -> None:
        """Merge ``other`` into this map, offsetting ids to avoid collisions.

        Used by the centralized baseline, which ingests every organization's
        map into one database (Figure 1).
        """
        node_id_map: dict[int, int] = {}
        for node in other.nodes():
            new_id = node.node_id + id_offset
            if new_id in self._nodes:
                raise MapDataError(f"node id collision while merging: {new_id}")
            node_id_map[node.node_id] = new_id
            self.add_node(Node(new_id, node.location, dict(node.tags), node.local_position))
        for way in other.ways():
            new_id = way.way_id + id_offset
            if new_id in self._ways:
                raise MapDataError(f"way id collision while merging: {new_id}")
            self.add_way(Way(new_id, [node_id_map[nid] for nid in way.node_ids], dict(way.tags)))
        for relation in other.relations():
            new_id = relation.relation_id + id_offset
            if new_id in self._relations:
                raise MapDataError(f"relation id collision while merging: {new_id}")
            members = [
                ElementRef(
                    member.element_type,
                    member.element_id + id_offset,
                    member.role,
                )
                for member in relation.members
            ]
            self.add_relation(Relation(new_id, members, dict(relation.tags)))

    def max_element_id(self) -> int:
        """Largest element id in use, handy for choosing merge offsets."""
        candidates: Iterable[int] = list(self._nodes) + list(self._ways) + list(self._relations)
        return max(candidates, default=0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MapData(name={self.metadata.name!r}, nodes={self.node_count}, "
            f"ways={self.way_count}, relations={self.relation_count})"
        )
