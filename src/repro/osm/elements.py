"""OpenStreetMap-style map elements.

Section 3 of the paper adopts the OpenStreetMap data model: a map consists of
*nodes* (points), *ways* (ordered node lists forming polylines/polygons) and
*relations* (collections of other elements), each carrying free-form tag
metadata.  These classes are the common currency passed between world
generators, map servers, the centralized baseline and every location-based
service.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Mapping

from repro.geometry.point import LatLng, LocalPoint

Tags = Mapping[str, str]


class ElementType(str, Enum):
    """The three OSM element kinds."""

    NODE = "node"
    WAY = "way"
    RELATION = "relation"


@dataclass(frozen=True, slots=True)
class ElementRef:
    """A typed reference to a map element, used inside relations."""

    element_type: ElementType
    element_id: int
    role: str = ""


@dataclass(slots=True)
class Node:
    """A point feature.

    A node always has a position in the map's own frame.  When the map is
    georeferenced the ``location`` is a :class:`LatLng`; maps kept purely in a
    local frame also populate ``local_position`` and may leave ``location`` as
    a best-effort estimate (Section 3: indoor maps are hard to align).
    """

    node_id: int
    location: LatLng
    tags: dict[str, str] = field(default_factory=dict)
    local_position: LocalPoint | None = None

    def tag(self, key: str, default: str | None = None) -> str | None:
        return self.tags.get(key, default)

    def has_tag(self, key: str, value: str | None = None) -> bool:
        if key not in self.tags:
            return False
        return value is None or self.tags[key] == value

    @property
    def name(self) -> str | None:
        return self.tags.get("name")


@dataclass(slots=True)
class Way:
    """An ordered polyline/polygon of node references."""

    way_id: int
    node_ids: list[int] = field(default_factory=list)
    tags: dict[str, str] = field(default_factory=dict)

    def tag(self, key: str, default: str | None = None) -> str | None:
        return self.tags.get(key, default)

    def has_tag(self, key: str, value: str | None = None) -> bool:
        if key not in self.tags:
            return False
        return value is None or self.tags[key] == value

    @property
    def is_closed(self) -> bool:
        """True if the way forms a ring (first node equals last node)."""
        return len(self.node_ids) >= 3 and self.node_ids[0] == self.node_ids[-1]

    @property
    def name(self) -> str | None:
        return self.tags.get("name")


@dataclass(slots=True)
class Relation:
    """A collection of member elements with roles (e.g. a building with floors)."""

    relation_id: int
    members: list[ElementRef] = field(default_factory=list)
    tags: dict[str, str] = field(default_factory=dict)

    def tag(self, key: str, default: str | None = None) -> str | None:
        return self.tags.get(key, default)

    def has_tag(self, key: str, value: str | None = None) -> bool:
        if key not in self.tags:
            return False
        return value is None or self.tags[key] == value

    def members_of_type(self, element_type: ElementType) -> list[ElementRef]:
        return [m for m in self.members if m.element_type == element_type]

    @property
    def name(self) -> str | None:
        return self.tags.get("name")


# Well-known tag keys used throughout the library.  Keeping them as module
# constants avoids typo'd string literals scattered across services.
TAG_NAME = "name"
TAG_HIGHWAY = "highway"
TAG_BUILDING = "building"
TAG_INDOOR = "indoor"
TAG_AMENITY = "amenity"
TAG_SHOP = "shop"
TAG_PRODUCT = "product"
TAG_ADDRESS = "addr:full"
TAG_STREET = "addr:street"
TAG_HOUSE_NUMBER = "addr:housenumber"
TAG_CITY = "addr:city"
TAG_LEVEL = "level"
TAG_ACCESS = "access"
TAG_PRIVACY = "privacy"
