"""Fluent construction of MapData instances.

World generators and tests build maps through :class:`MapBuilder`, which
hands out fresh element ids and keeps the underlying :class:`MapData`
structurally valid at every step.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry.point import LatLng, LocalPoint
from repro.geometry.polygon import Polygon
from repro.geometry.projection import LocalProjection
from repro.osm.elements import ElementRef, ElementType, Node, Relation, Way
from repro.osm.mapdata import MapData, MapMetadata


@dataclass
class MapBuilder:
    """Incrementally builds a :class:`MapData`."""

    name: str = "unnamed"
    operator: str = "unknown"
    fidelity: str = "2d"
    coordinate_frame: str = "geographic"
    projection: LocalProjection | None = None
    _map: MapData = field(init=False)
    _next_node_id: int = field(init=False, default=1)
    _next_way_id: int = field(init=False, default=1)
    _next_relation_id: int = field(init=False, default=1)

    def __post_init__(self) -> None:
        metadata = MapMetadata(
            name=self.name,
            operator=self.operator,
            fidelity=self.fidelity,
            coordinate_frame=self.coordinate_frame,
        )
        self._map = MapData(metadata=metadata, projection=self.projection)

    # ------------------------------------------------------------------
    # Node/way/relation creation
    # ------------------------------------------------------------------
    def add_node(
        self,
        location: LatLng,
        tags: dict[str, str] | None = None,
        local_position: LocalPoint | None = None,
    ) -> Node:
        """Add a node, deriving the local position from the projection if set."""
        if local_position is None and self.projection is not None:
            local_position = self.projection.to_local(location)
        node = Node(self._next_node_id, location, dict(tags or {}), local_position)
        self._next_node_id += 1
        return self._map.add_node(node)

    def add_local_node(
        self,
        local_position: LocalPoint,
        tags: dict[str, str] | None = None,
    ) -> Node:
        """Add a node surveyed in the map's local frame.

        Requires the builder to have a projection so an (approximate)
        geographic location can be derived — this mirrors real indoor maps,
        whose geographic alignment is only approximate.
        """
        if self.projection is None:
            raise ValueError("add_local_node requires the builder to have a projection")
        location = self.projection.to_geographic(local_position)
        node = Node(self._next_node_id, location, dict(tags or {}), local_position)
        self._next_node_id += 1
        return self._map.add_node(node)

    def add_way(self, nodes: list[Node], tags: dict[str, str] | None = None) -> Way:
        way = Way(self._next_way_id, [n.node_id for n in nodes], dict(tags or {}))
        self._next_way_id += 1
        return self._map.add_way(way)

    def add_path(
        self,
        locations: list[LatLng],
        tags: dict[str, str] | None = None,
        node_tags: dict[str, str] | None = None,
    ) -> Way:
        """Create nodes along ``locations`` and join them with a way."""
        nodes = [self.add_node(loc, node_tags) for loc in locations]
        return self.add_way(nodes, tags)

    def add_relation(
        self,
        members: list[tuple[ElementType, int, str]],
        tags: dict[str, str] | None = None,
    ) -> Relation:
        refs = [ElementRef(etype, eid, role) for etype, eid, role in members]
        relation = Relation(self._next_relation_id, refs, dict(tags or {}))
        self._next_relation_id += 1
        return self._map.add_relation(relation)

    # ------------------------------------------------------------------
    # Finalisation
    # ------------------------------------------------------------------
    def set_coverage(self, polygon: Polygon) -> None:
        self._map.set_coverage(polygon)

    def build(self) -> MapData:
        """Return the constructed map (the builder can keep extending it)."""
        return self._map
