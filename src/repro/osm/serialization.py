"""Serialisation of maps to and from a JSON-compatible document.

Map servers exchange map fragments (e.g. routing sub-graphs or search
results) and persist their maps; a plain-dict document format keeps that
dependency-free and easy to inspect in tests.
"""

from __future__ import annotations

import json
from typing import Any

from repro.geometry.point import LatLng, LocalPoint
from repro.geometry.polygon import Polygon
from repro.geometry.projection import LocalProjection
from repro.osm.elements import ElementRef, ElementType, Node, Relation, Way
from repro.osm.mapdata import MapData, MapMetadata


def map_to_document(map_data: MapData) -> dict[str, Any]:
    """Serialise a map to a JSON-compatible dictionary."""
    document: dict[str, Any] = {
        "metadata": {
            "name": map_data.metadata.name,
            "operator": map_data.metadata.operator,
            "fidelity": map_data.metadata.fidelity,
            "coordinate_frame": map_data.metadata.coordinate_frame,
            "description": map_data.metadata.description,
        },
        "nodes": [
            {
                "id": node.node_id,
                "lat": node.location.latitude,
                "lng": node.location.longitude,
                "tags": dict(node.tags),
                **(
                    {
                        "local": {
                            "x": node.local_position.x,
                            "y": node.local_position.y,
                            "frame": node.local_position.frame,
                        }
                    }
                    if node.local_position is not None
                    else {}
                ),
            }
            for node in map_data.nodes()
        ],
        "ways": [
            {"id": way.way_id, "nodes": list(way.node_ids), "tags": dict(way.tags)}
            for way in map_data.ways()
        ],
        "relations": [
            {
                "id": relation.relation_id,
                "members": [
                    {"type": m.element_type.value, "ref": m.element_id, "role": m.role}
                    for m in relation.members
                ],
                "tags": dict(relation.tags),
            }
            for relation in map_data.relations()
        ],
    }
    if map_data.projection is not None:
        document["projection"] = {
            "anchor_lat": map_data.projection.anchor.latitude,
            "anchor_lng": map_data.projection.anchor.longitude,
            "rotation_degrees": map_data.projection.rotation_degrees,
            "frame": map_data.projection.frame,
        }
    try:
        coverage = map_data.coverage
        document["coverage"] = [
            {"lat": v.latitude, "lng": v.longitude} for v in coverage.vertices
        ]
    except Exception:
        pass
    return document


def map_from_document(document: dict[str, Any]) -> MapData:
    """Rebuild a map from the dictionary produced by :func:`map_to_document`."""
    meta = document.get("metadata", {})
    metadata = MapMetadata(
        name=meta.get("name", "unnamed"),
        operator=meta.get("operator", "unknown"),
        fidelity=meta.get("fidelity", "2d"),
        coordinate_frame=meta.get("coordinate_frame", "geographic"),
        description=meta.get("description", ""),
    )
    projection = None
    if "projection" in document:
        proj = document["projection"]
        projection = LocalProjection(
            LatLng(proj["anchor_lat"], proj["anchor_lng"]),
            proj.get("rotation_degrees", 0.0),
            proj.get("frame", "local"),
        )
    coverage = None
    if "coverage" in document:
        coverage = Polygon([LatLng(v["lat"], v["lng"]) for v in document["coverage"]])

    map_data = MapData(metadata=metadata, coverage=coverage, projection=projection)
    for entry in document.get("nodes", []):
        local_position = None
        if "local" in entry:
            local = entry["local"]
            local_position = LocalPoint(local["x"], local["y"], local.get("frame", "local"))
        map_data.add_node(
            Node(entry["id"], LatLng(entry["lat"], entry["lng"]), dict(entry.get("tags", {})), local_position)
        )
    for entry in document.get("ways", []):
        map_data.add_way(Way(entry["id"], list(entry["nodes"]), dict(entry.get("tags", {}))))
    for entry in document.get("relations", []):
        members = [
            ElementRef(ElementType(m["type"]), m["ref"], m.get("role", ""))
            for m in entry.get("members", [])
        ]
        map_data.add_relation(Relation(entry["id"], members, dict(entry.get("tags", {}))))
    return map_data


def map_to_json(map_data: MapData, indent: int | None = None) -> str:
    """Serialise a map to a JSON string."""
    return json.dumps(map_to_document(map_data), indent=indent, sort_keys=True)


def map_from_json(text: str) -> MapData:
    """Parse a map from a JSON string."""
    return map_from_document(json.loads(text))
