"""Structural validation of maps.

Before a map is served by a map server (or ingested by the centralized
baseline) it is validated: dangling references, empty ways, out-of-coverage
nodes and missing metadata are reported.  Validation returns issues rather
than raising so callers can decide how strict to be.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.osm.elements import ElementType
from repro.osm.mapdata import MapData


class Severity(str, Enum):
    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True, slots=True)
class ValidationIssue:
    """One problem found in a map."""

    severity: Severity
    code: str
    message: str
    element_type: ElementType | None = None
    element_id: int | None = None


def validate_map(map_data: MapData, check_coverage: bool = True) -> list[ValidationIssue]:
    """Validate a map and return all issues found (empty list means clean)."""
    issues: list[ValidationIssue] = []

    if not map_data.metadata.name or map_data.metadata.name == "unnamed":
        issues.append(
            ValidationIssue(Severity.WARNING, "metadata.name", "map has no descriptive name")
        )

    if map_data.node_count == 0:
        issues.append(ValidationIssue(Severity.ERROR, "map.empty", "map contains no nodes"))
        return issues

    node_ids = {node.node_id for node in map_data.nodes()}

    for way in map_data.ways():
        if len(way.node_ids) < 2:
            issues.append(
                ValidationIssue(
                    Severity.ERROR,
                    "way.too_short",
                    f"way {way.way_id} has fewer than two nodes",
                    ElementType.WAY,
                    way.way_id,
                )
            )
        missing = [nid for nid in way.node_ids if nid not in node_ids]
        if missing:
            issues.append(
                ValidationIssue(
                    Severity.ERROR,
                    "way.dangling_ref",
                    f"way {way.way_id} references missing nodes {missing}",
                    ElementType.WAY,
                    way.way_id,
                )
            )
        consecutive_duplicates = any(a == b for a, b in zip(way.node_ids, way.node_ids[1:]))
        if consecutive_duplicates:
            issues.append(
                ValidationIssue(
                    Severity.WARNING,
                    "way.repeated_node",
                    f"way {way.way_id} repeats a node consecutively",
                    ElementType.WAY,
                    way.way_id,
                )
            )

    for relation in map_data.relations():
        if not relation.members:
            issues.append(
                ValidationIssue(
                    Severity.WARNING,
                    "relation.empty",
                    f"relation {relation.relation_id} has no members",
                    ElementType.RELATION,
                    relation.relation_id,
                )
            )
        for member in relation.members:
            if not map_data.has_element(member.element_type, member.element_id):
                issues.append(
                    ValidationIssue(
                        Severity.ERROR,
                        "relation.dangling_ref",
                        f"relation {relation.relation_id} references missing "
                        f"{member.element_type.value} {member.element_id}",
                        ElementType.RELATION,
                        relation.relation_id,
                    )
                )

    if check_coverage:
        try:
            coverage = map_data.coverage
        except Exception:
            coverage = None
        if coverage is not None:
            outside = [
                node.node_id
                for node in map_data.nodes()
                if not coverage.contains(node.location)
            ]
            if outside:
                issues.append(
                    ValidationIssue(
                        Severity.WARNING,
                        "coverage.nodes_outside",
                        f"{len(outside)} nodes lie outside the declared coverage polygon",
                    )
                )

    return issues


def has_errors(issues: list[ValidationIssue]) -> bool:
    """True if any issue is of ERROR severity."""
    return any(issue.severity == Severity.ERROR for issue in issues)
