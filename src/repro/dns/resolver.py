"""A recursive, caching DNS resolver over the simulated namespace.

The resolver walks delegations from a root name server down to the
authoritative server for a name, caching both answers and referrals, and
charging every server exchange against the simulated network so experiments
can report discovery latency and message counts (experiments E2/E3/E8).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dns.cache import DnsCache
from repro.dns.message import DnsResponse, Question, ResponseCode
from repro.dns.records import RecordType, ResourceRecord, normalize_name
from repro.dns.server import NameServer
from repro.simulation.network import SimulatedNetwork


class ResolutionError(Exception):
    """Raised when a name cannot be resolved (loop, missing glue, depth limit)."""


@dataclass
class ResolverStats:
    queries: int = 0
    authoritative_exchanges: int = 0
    cache_answers: int = 0
    nxdomain: int = 0
    timeouts: int = 0
    """Queries abandoned because the authority was dark (fault-injected
    outage): the resolver paid its full patience and synthesized SERVFAIL."""


@dataclass
class RecursiveResolver:
    """A caching recursive resolver.

    ``root`` is the root name server; ``servers`` maps a name-server identifier
    (the data of NS records) to the :class:`NameServer` that answers for it —
    the moral equivalent of glue records plus routing.
    """

    root: NameServer
    servers: dict[str, NameServer]
    network: SimulatedNetwork
    cache: DnsCache = field(default=None)  # type: ignore[assignment]
    max_referrals: int = 16
    stats: ResolverStats = field(default_factory=ResolverStats)

    def __post_init__(self) -> None:
        if self.cache is None:
            self.cache = DnsCache(clock=self.network.clock)

    def register_server(self, server: NameServer) -> None:
        """Make an authoritative server reachable by its identifier."""
        self.servers[server.server_id] = server

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolve(self, name: str, record_type: RecordType) -> DnsResponse:
        """Resolve ``name``/``record_type``, using the cache when possible."""
        self.stats.queries += 1
        question = Question(name, record_type)

        cached = self.cache.get(name, record_type)
        if cached is not None:
            self.stats.cache_answers += 1
            code = ResponseCode.NOERROR if cached else ResponseCode.NXDOMAIN
            return DnsResponse(question, code=code, answers=cached, from_cache=True)

        response = self._resolve_iteratively(question)
        if response.code == ResponseCode.NOERROR and response.answers:
            self.cache.put(name, record_type, response.answers)
        elif response.code in (ResponseCode.NXDOMAIN, ResponseCode.NOERROR):
            self.cache.put_negative(name, record_type)
            if response.code == ResponseCode.NXDOMAIN:
                self.stats.nxdomain += 1
        return response

    def resolve_data(self, name: str, record_type: RecordType) -> list[str]:
        """Resolve and return just the answer data strings (empty on NXDOMAIN)."""
        response = self.resolve(name, record_type)
        if response.code != ResponseCode.NOERROR:
            return []
        return [r.data for r in response.answers if r.record_type == record_type]

    def _resolve_iteratively(self, question: Question) -> DnsResponse:
        server = self.root
        for _ in range(self.max_referrals):
            faults = self.network.faults
            if faults is not None and faults.authority_is_down(server.server_id):
                # The authority is dark: the query goes unanswered, the
                # resolver pays its full patience and gives up with SERVFAIL.
                # SERVFAIL is deliberately never cached (see resolve), so
                # recovery is visible on the very next uncached query.
                self.network.dns_timeout(faults.dns_timeout_ms)
                self.stats.timeouts += 1
                return DnsResponse(question, code=ResponseCode.SERVFAIL)
            self.network.resolver_authority_exchange()
            self.stats.authoritative_exchanges += 1
            response = server.handle(question)

            if response.code in (ResponseCode.NXDOMAIN, ResponseCode.SERVFAIL, ResponseCode.REFUSED):
                return response

            if response.answers:
                answers = self._chase_cname(question, response)
                return answers

            if response.is_referral:
                next_server = self._server_for_referral(response)
                if next_server is None:
                    return DnsResponse(question, code=ResponseCode.SERVFAIL)
                server = next_server
                continue

            # NODATA: the name exists but has no records of the requested type.
            return response

        raise ResolutionError(f"referral limit exceeded while resolving {question.name!r}")

    def _chase_cname(self, question: Question, response: DnsResponse) -> DnsResponse:
        """If the answer is only a CNAME, restart resolution at the target."""
        direct = [r for r in response.answers if r.record_type == question.record_type]
        if direct:
            return response
        cnames = [r for r in response.answers if r.record_type == RecordType.CNAME]
        if not cnames:
            return response
        target = cnames[0].data
        chained = self.resolve(target, question.record_type)
        merged = list(response.answers) + list(chained.answers)
        return DnsResponse(question, code=chained.code, answers=merged)

    def _server_for_referral(self, response: DnsResponse) -> NameServer | None:
        for ns_record in response.authority:
            if ns_record.record_type != RecordType.NS:
                continue
            server = self.servers.get(normalize_name(ns_record.data))
            if server is not None:
                return server
        return None


@dataclass
class StubResolver:
    """A client-side stub: forwards every query to one recursive resolver.

    The stub charges the client→resolver hop so that end-to-end discovery
    latency seen by a client includes both the access hop and whatever the
    recursive resolver had to do upstream.
    """

    recursive: RecursiveResolver
    network: SimulatedNetwork

    def resolve(self, name: str, record_type: RecordType) -> DnsResponse:
        self.network.client_resolver_exchange()
        return self.recursive.resolve(name, record_type)

    def resolve_data(self, name: str, record_type: RecordType) -> list[str]:
        response = self.resolve(name, record_type)
        if response.code != ResponseCode.NOERROR:
            return []
        return [r.data for r in response.answers if r.record_type == record_type]


def build_namespace(
    network: SimulatedNetwork,
    zones: dict[str, list[ResourceRecord]] | None = None,
) -> tuple[NameServer, RecursiveResolver]:
    """Convenience helper: build a root server plus resolver in one call."""
    from repro.dns.zone import Zone

    root_zone = Zone(origin="")
    root = NameServer(server_id="root", zones={"": root_zone})
    resolver = RecursiveResolver(root=root, servers={"root": root}, network=network)
    if zones:
        for origin, records in zones.items():
            zone = Zone(origin=origin)
            for record in records:
                zone.add_record(record)
            root.host_zone(zone)
    return root, resolver
