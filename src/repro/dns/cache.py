"""TTL-based DNS caching.

The paper's case for DNS-based discovery leans heavily on caching: "the
address of the map servers are not expected to change frequently so the
system would benefit from a ubiquitous caching mechanism" (Section 5.1).  The
cache honours per-record TTLs against a simulated clock and also performs
negative caching of NXDOMAIN answers — important because most spatial cells
have no map server registered and repeated discovery of empty cells must stay
cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dns.records import RecordType, ResourceRecord, normalize_name
from repro.simulation.clock import SimulatedClock

DEFAULT_NEGATIVE_TTL_SECONDS = 60.0


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    negative_hits: int = 0
    insertions: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses + self.negative_hits
        return (self.hits + self.negative_hits) / total if total else 0.0


@dataclass
class _PositiveEntry:
    records: list[ResourceRecord]
    expires_at: float


@dataclass
class _NegativeEntry:
    expires_at: float


@dataclass
class DnsCache:
    """A TTL cache for DNS answers keyed by (name, type)."""

    clock: SimulatedClock
    max_entries: int = 10_000
    negative_ttl_seconds: float = DEFAULT_NEGATIVE_TTL_SECONDS
    stats: CacheStats = field(default_factory=CacheStats)
    _positive: dict[tuple[str, RecordType], _PositiveEntry] = field(default_factory=dict)
    _negative: dict[tuple[str, RecordType], _NegativeEntry] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, name: str, record_type: RecordType) -> list[ResourceRecord] | None:
        """Cached answer records, or None on a miss.

        A negative-cache hit returns an empty list (distinct from None).
        """
        key = (normalize_name(name), record_type)
        now = self.clock.now()

        negative = self._negative.get(key)
        if negative is not None:
            if negative.expires_at > now:
                self.stats.negative_hits += 1
                return []
            del self._negative[key]

        entry = self._positive.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        if entry.expires_at <= now:
            del self._positive[key]
            self.stats.evictions += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return list(entry.records)

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def put(self, name: str, record_type: RecordType, records: list[ResourceRecord]) -> None:
        """Cache a positive answer using the minimum TTL across records."""
        if not records:
            self.put_negative(name, record_type)
            return
        key = (normalize_name(name), record_type)
        ttl = min(record.ttl_seconds for record in records)
        if ttl <= 0:
            return
        self._evict_if_full()
        self._positive[key] = _PositiveEntry(list(records), self.clock.now() + ttl)
        self.stats.insertions += 1

    def put_negative(self, name: str, record_type: RecordType, ttl: float | None = None) -> None:
        """Cache the absence of records at ``name``/``record_type``."""
        key = (normalize_name(name), record_type)
        ttl_value = self.negative_ttl_seconds if ttl is None else ttl
        if ttl_value <= 0:
            return
        self._negative[key] = _NegativeEntry(self.clock.now() + ttl_value)
        self.stats.insertions += 1

    def _evict_if_full(self) -> None:
        if len(self._positive) < self.max_entries:
            return
        now = self.clock.now()
        expired = [key for key, entry in self._positive.items() if entry.expires_at <= now]
        for key in expired:
            del self._positive[key]
            self.stats.evictions += 1
        if len(self._positive) >= self.max_entries:
            # Evict the entry closest to expiry.
            victim = min(self._positive, key=lambda k: self._positive[k].expires_at)
            del self._positive[victim]
            self.stats.evictions += 1

    def remaining_ttl(self, name: str, record_type: RecordType) -> float | None:
        """Seconds until the cached entry for ``name``/``record_type`` expires.

        Returns None when nothing (live) is cached.  Unlike :meth:`get` this
        never mutates the cache or its statistics, so layered caches can use
        it to clamp their own entry lifetimes to the DNS data they were
        derived from.
        """
        key = (normalize_name(name), record_type)
        now = self.clock.now()
        entry = self._positive.get(key)
        if entry is not None and entry.expires_at > now:
            return entry.expires_at - now
        negative = self._negative.get(key)
        if negative is not None and negative.expires_at > now:
            return negative.expires_at - now
        return None

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def flush(self) -> None:
        self._positive.clear()
        self._negative.clear()

    @property
    def size(self) -> int:
        return len(self._positive) + len(self._negative)
