"""Authoritative DNS name servers."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dns.message import DnsResponse, Question, ResponseCode
from repro.dns.records import RecordType
from repro.dns.zone import Zone


@dataclass
class NameServer:
    """An authoritative server hosting one or more zones.

    The server answers a question from the most specific zone it hosts: an
    exact match yields an authoritative answer, a name under a delegation
    yields a referral, and an unknown name inside a hosted zone yields
    NXDOMAIN.
    """

    server_id: str
    zones: dict[str, Zone] = field(default_factory=dict)
    queries_served: int = 0

    def host_zone(self, zone: Zone) -> None:
        """Start serving ``zone``; replaces any previously hosted zone with the same origin."""
        self.zones[zone.origin] = zone

    def zone_for(self, name: str) -> Zone | None:
        """The most specific hosted zone containing ``name``."""
        best: Zone | None = None
        for zone in self.zones.values():
            if zone.in_zone(name):
                if best is None or len(zone.origin) > len(best.origin):
                    best = zone
        return best

    def handle(self, question: Question) -> DnsResponse:
        """Answer a DNS question authoritatively."""
        self.queries_served += 1
        zone = self.zone_for(question.name)
        if zone is None:
            return DnsResponse(question, code=ResponseCode.REFUSED)

        delegation = zone.covering_delegation(question.name)
        if delegation is not None and delegation != question.name:
            authority = zone.delegation_records(delegation)
            additional = []
            for ns_record in authority:
                additional.extend(zone.records_at(ns_record.data, RecordType.A))
            return DnsResponse(
                question,
                code=ResponseCode.NOERROR,
                authority=authority,
                additional=additional,
                authoritative=False,
            )

        answers = zone.records_at(question.name, question.record_type)
        if answers:
            return DnsResponse(question, answers=answers, authoritative=True)

        # CNAME chasing within the same zone.
        cnames = zone.records_at(question.name, RecordType.CNAME)
        if cnames:
            target = cnames[0].data
            target_answers = zone.records_at(target, question.record_type)
            return DnsResponse(
                question,
                answers=list(cnames) + target_answers,
                authoritative=True,
            )

        if zone.contains_name(question.name) or question.name == zone.origin:
            # The name exists but has no records of this type (NODATA).
            return DnsResponse(question, code=ResponseCode.NOERROR, authoritative=True)
        return DnsResponse(question, code=ResponseCode.NXDOMAIN, authoritative=True)
