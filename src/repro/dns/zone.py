"""DNS zones: independently managed portions of the namespace.

A map in OpenFLAME "is conceptually equivalent to a zone in a traditional
naming system like the DNS" (Section 3).  Zones hold resource records,
support wildcard-free exact-name lookup, and record delegations (child zones
served elsewhere).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dns.records import (
    RecordType,
    ResourceRecord,
    is_subdomain,
    normalize_name,
    validate_name,
)


class ZoneError(Exception):
    """Raised for invalid zone manipulation."""


@dataclass
class Zone:
    """One zone of the DNS namespace.

    ``origin`` is the zone apex (e.g. ``"maps.example"``).  Records must live
    at or below the apex.  Delegations are represented by NS records for a
    child name; lookups below a delegation return a referral.
    """

    origin: str
    default_ttl: float = 300.0
    _records: dict[tuple[str, RecordType], list[ResourceRecord]] = field(default_factory=dict)
    _delegations: set[str] = field(default_factory=set)
    _name_index: dict[str, set[RecordType]] = field(default_factory=dict)
    """Record types present per name — O(1) existence checks and O(1)
    removal without scanning the whole record table.  Removal MUST keep this
    index (and the ``_delegations`` set the ``covering_delegation`` suffix
    walk probes) exact: a deregistered server stops resolving at the
    authority the moment its records go; only caches may stay stale."""

    def __post_init__(self) -> None:
        self.origin = normalize_name(self.origin)
        if self.origin:
            validate_name(self.origin)

    # ------------------------------------------------------------------
    # Record management
    # ------------------------------------------------------------------
    def add_record(self, record: ResourceRecord) -> None:
        """Add a record, enforcing that it belongs to this zone."""
        if not is_subdomain(record.name, self.origin):
            raise ZoneError(f"record {record.name!r} is outside zone {self.origin!r}")
        key = (record.name, record.record_type)
        bucket = self._records.get(key)
        if bucket is None:
            bucket = self._records[key] = []
            self._name_index.setdefault(record.name, set()).add(record.record_type)
        if record in bucket:
            return
        bucket.append(record)
        if record.record_type == RecordType.NS and record.name != self.origin:
            self._delegations.add(record.name)

    def add(self, name: str, record_type: RecordType, data: str, ttl: float | None = None) -> ResourceRecord:
        """Convenience wrapper building and adding a record."""
        record = ResourceRecord(name, record_type, data, ttl if ttl is not None else self.default_ttl)
        self.add_record(record)
        return record

    def _drop_bucket(self, name: str, record_type: RecordType) -> None:
        """Remove an emptied bucket's entries from the lookup indexes."""
        types = self._name_index.get(name)
        if types is not None:
            types.discard(record_type)
            if not types:
                del self._name_index[name]
        if record_type == RecordType.NS:
            self._delegations.discard(name)

    def remove_record(self, record: ResourceRecord) -> bool:
        """Remove exactly one record; returns whether it was present.

        Surgical removal is what deregistration needs: withdrawing one map
        server's SRV record from a spatial name shared with other servers
        (replicas of one coverage region) must leave the others resolving,
        while the last record at a name must also clear the name's existence
        (``contains_name``) and any delegation the ``covering_delegation``
        suffix walk would still find.
        """
        key = (record.name, record.record_type)
        bucket = self._records.get(key)
        if bucket is None or record not in bucket:
            return False
        bucket.remove(record)
        if not bucket:
            del self._records[key]
            self._drop_bucket(record.name, record.record_type)
        return True

    def remove_records(self, name: str, record_type: RecordType | None = None) -> int:
        """Remove records at ``name`` (optionally only of one type); returns count."""
        name_n = normalize_name(name)
        types = self._name_index.get(name_n)
        if not types:
            return 0
        doomed = [record_type] if record_type is not None else list(types)
        removed = 0
        for key_type in doomed:
            bucket = self._records.pop((name_n, key_type), None)
            if bucket is None:
                continue
            removed += len(bucket)
            self._drop_bucket(name_n, key_type)
        return removed

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def records_at(self, name: str, record_type: RecordType | None = None) -> list[ResourceRecord]:
        """All records at exactly ``name`` (of ``record_type`` if given)."""
        name_n = normalize_name(name)
        if record_type is not None:
            return list(self._records.get((name_n, record_type), []))
        out: list[ResourceRecord] = []
        for (key_name, _), bucket in self._records.items():
            if key_name == name_n:
                out.extend(bucket)
        return out

    def covering_delegation(self, name: str) -> str | None:
        """The delegated child zone that covers ``name``, if any.

        A delegation covering ``name`` is by definition one of ``name``'s
        label suffixes, so instead of scanning every delegation (the spatial
        zone holds one per registered covering cell) the lookup walks the
        name's own suffixes longest-first and probes the delegation set —
        O(labels) regardless of how many zones are delegated.
        """
        name_n = normalize_name(name)
        delegations = self._delegations
        if not delegations:
            return None
        candidate = name_n
        while candidate:
            if candidate != self.origin and candidate in delegations:
                return candidate
            dot = candidate.find(".")
            if dot < 0:
                return None
            candidate = candidate[dot + 1 :]
        return None

    def delegation_records(self, child: str) -> list[ResourceRecord]:
        return self.records_at(child, RecordType.NS)

    def contains_name(self, name: str) -> bool:
        """True if any record exists at exactly ``name``."""
        return normalize_name(name) in self._name_index

    def names(self) -> set[str]:
        """All names with at least one record."""
        return set(self._name_index)

    @property
    def record_count(self) -> int:
        return sum(len(bucket) for bucket in self._records.values())

    def in_zone(self, name: str) -> bool:
        return is_subdomain(name, self.origin)
