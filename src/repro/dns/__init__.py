"""An in-process DNS substrate: zones, authoritative servers, caching resolver."""

from repro.dns.cache import CacheStats, DnsCache
from repro.dns.message import DnsResponse, Question, ResponseCode
from repro.dns.records import (
    RecordType,
    ResourceRecord,
    SrvData,
    is_subdomain,
    name_labels,
    normalize_name,
    parent_name,
    validate_name,
)
from repro.dns.resolver import (
    RecursiveResolver,
    ResolutionError,
    ResolverStats,
    StubResolver,
    build_namespace,
)
from repro.dns.server import NameServer
from repro.dns.zone import Zone, ZoneError

__all__ = [
    "CacheStats",
    "DnsCache",
    "DnsResponse",
    "NameServer",
    "Question",
    "RecordType",
    "RecursiveResolver",
    "ResolutionError",
    "ResolverStats",
    "ResourceRecord",
    "ResponseCode",
    "SrvData",
    "StubResolver",
    "Zone",
    "ZoneError",
    "build_namespace",
    "is_subdomain",
    "name_labels",
    "normalize_name",
    "parent_name",
    "validate_name",
]
