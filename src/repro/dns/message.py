"""DNS query/response messages."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.dns.records import RecordType, ResourceRecord, normalize_name


class ResponseCode(str, Enum):
    """Subset of DNS RCODEs used by the substrate."""

    NOERROR = "NOERROR"
    NXDOMAIN = "NXDOMAIN"
    SERVFAIL = "SERVFAIL"
    REFUSED = "REFUSED"


@dataclass(frozen=True, slots=True)
class Question:
    """A DNS question: (name, type)."""

    name: str
    record_type: RecordType

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", normalize_name(self.name))


@dataclass(slots=True)
class DnsResponse:
    """A DNS response carrying answers, referrals and authority data."""

    question: Question
    code: ResponseCode = ResponseCode.NOERROR
    answers: list[ResourceRecord] = field(default_factory=list)
    authority: list[ResourceRecord] = field(default_factory=list)
    additional: list[ResourceRecord] = field(default_factory=list)
    authoritative: bool = False
    from_cache: bool = False

    @property
    def is_referral(self) -> bool:
        """True when the response delegates to another zone (NS in authority)."""
        return (
            self.code == ResponseCode.NOERROR
            and not self.answers
            and any(r.record_type == RecordType.NS for r in self.authority)
        )

    @property
    def is_nxdomain(self) -> bool:
        return self.code == ResponseCode.NXDOMAIN

    def answer_data(self) -> list[str]:
        """The data strings of all answer records."""
        return [record.data for record in self.answers]
