"""DNS resource records and domain-name utilities.

The discovery layer (Section 5.1) repurposes the DNS: spatial cells become
hierarchical domain names and map servers are advertised as records under
those names.  This module models the small subset of the DNS data model the
system needs — names, record types, records with TTLs — with the same
hierarchy/suffix semantics as the real thing.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum
from functools import lru_cache

_LABEL_RE = re.compile(r"^[a-z0-9]([a-z0-9-]{0,61}[a-z0-9])?$")


class RecordType(str, Enum):
    """Supported resource-record types."""

    A = "A"
    AAAA = "AAAA"
    NS = "NS"
    CNAME = "CNAME"
    TXT = "TXT"
    SRV = "SRV"
    SOA = "SOA"
    PTR = "PTR"


@lru_cache(maxsize=65536)
def normalize_name(name: str) -> str:
    """Canonicalise a domain name: lower-case, no trailing dot, no whitespace.

    Memoized: resolution normalizes the same spatial names on every cache
    probe, referral and zone lookup, so the repertoire of distinct names in a
    run is tiny compared to the number of normalizations.
    """
    cleaned = name.strip().lower().rstrip(".")
    if not cleaned:
        return ""
    return cleaned


def validate_name(name: str) -> None:
    """Raise ``ValueError`` if ``name`` is not a syntactically valid domain name."""
    normalized = normalize_name(name)
    if not normalized:
        raise ValueError("empty domain name")
    if len(normalized) > 253:
        raise ValueError(f"domain name too long ({len(normalized)} chars)")
    for label in normalized.split("."):
        if not _LABEL_RE.match(label):
            raise ValueError(f"invalid DNS label {label!r} in {name!r}")


def name_labels(name: str) -> list[str]:
    """Split a name into labels, least significant (leftmost) first."""
    normalized = normalize_name(name)
    return normalized.split(".") if normalized else []


def is_subdomain(name: str, zone: str) -> bool:
    """True if ``name`` is within ``zone`` (inclusive)."""
    name_n = normalize_name(name)
    zone_n = normalize_name(zone)
    if not zone_n:
        return True
    return name_n == zone_n or name_n.endswith("." + zone_n)


def parent_name(name: str) -> str:
    """The name with its leftmost label removed (empty string for a TLD)."""
    labels = name_labels(name)
    if len(labels) <= 1:
        return ""
    return ".".join(labels[1:])


@dataclass(frozen=True, slots=True)
class ResourceRecord:
    """A single DNS resource record."""

    name: str
    record_type: RecordType
    data: str
    ttl_seconds: float = 300.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", normalize_name(self.name))
        if self.ttl_seconds < 0:
            raise ValueError("TTL must be non-negative")

    def matches(self, name: str, record_type: RecordType) -> bool:
        return self.name == normalize_name(name) and self.record_type == record_type


@dataclass(frozen=True, slots=True)
class SrvData:
    """Parsed contents of an SRV-style record: a service endpoint.

    Map servers are advertised as SRV-like records whose data encodes the
    server identifier plus RFC 2782 priority/weight for load sharing:
    clients must try lower ``priority`` values first, and within one
    priority tier spread load proportionally to ``weight`` (a weight of 0
    means "only when nothing weighted is available").
    """

    target: str
    port: int = 443
    priority: int = 0
    weight: int = 0

    def __post_init__(self) -> None:
        if not self.target:
            raise ValueError("SRV target cannot be empty")
        if self.port < 0:
            raise ValueError("SRV port cannot be negative")
        if self.priority < 0:
            raise ValueError("SRV priority cannot be negative")
        if self.weight < 0:
            raise ValueError("SRV weight cannot be negative")

    @property
    def endpoint(self) -> tuple[str, int]:
        """The host:port pair this record points at (shadow-dedup key)."""
        return (self.target, self.port)

    def encode(self) -> str:
        return f"{self.priority} {self.weight} {self.port} {self.target}"

    @classmethod
    def decode(cls, data: str) -> "SrvData":
        parts = data.split(maxsplit=3)
        if len(parts) != 4:
            raise ValueError(f"malformed SRV data {data!r}")
        priority, weight, port, target = parts
        return cls(target=target, port=int(port), priority=int(priority), weight=int(weight))
