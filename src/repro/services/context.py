"""Shared context for the federated client-side services.

Every federated service (Section 5.2) needs the same three things: a way to
*discover* map servers for a region, a way to *reach* a discovered server by
its identifier, and a *network* against which to charge the requests it
makes.  :class:`FederationContext` bundles them; it is constructed by
:class:`repro.core.federation.Federation` and handed to each service.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.discovery.discoverer import Discoverer, DiscoveryResult
from repro.geometry.point import LatLng
from repro.mapserver.auth import ANONYMOUS, Credential
from repro.mapserver.server import MapServer
from repro.simulation.network import SimulatedNetwork


class UnknownServerError(KeyError):
    """Raised when discovery returns a server id the directory cannot reach."""


@dataclass
class FederationContext:
    """Everything a federated client-side service needs to operate."""

    discoverer: Discoverer
    directory: dict[str, MapServer] = field(default_factory=dict)
    network: SimulatedNetwork = field(default_factory=SimulatedNetwork)
    credential: Credential = ANONYMOUS

    # ------------------------------------------------------------------
    # Directory
    # ------------------------------------------------------------------
    def server(self, server_id: str) -> MapServer:
        """Resolve a discovered server id to a reachable map server."""
        try:
            return self.directory[server_id]
        except KeyError:
            raise UnknownServerError(server_id) from None

    def servers(self, server_ids: tuple[str, ...] | list[str]) -> list[MapServer]:
        """Resolve several ids, skipping any that are not reachable."""
        found = []
        for server_id in server_ids:
            server = self.directory.get(server_id)
            if server is not None:
                found.append(server)
        return found

    # ------------------------------------------------------------------
    # Discovery helpers (charged against the network)
    # ------------------------------------------------------------------
    def discover_at(self, location: LatLng, uncertainty_meters: float = 0.0) -> DiscoveryResult:
        return self.discoverer.discover_at(location, uncertainty_meters)

    def discover_along(self, waypoints: list[LatLng], corridor_meters: float = 200.0) -> DiscoveryResult:
        return self.discoverer.discover_along(waypoints, corridor_meters)

    def charge_map_server_request(self) -> None:
        """Charge one client↔map-server exchange against the network."""
        self.network.client_map_server_exchange()
