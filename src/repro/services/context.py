"""Shared context for the federated client-side services.

Every federated service (Section 5.2) needs the same three things: a way to
*discover* map servers for a region, a way to *reach* a discovered server by
its identifier, and a *network* against which to charge the requests it
makes.  :class:`FederationContext` bundles them; it is constructed by
:class:`repro.core.federation.Federation` and handed to each service.

With the churn subsystem the context also carries the client's failover
machinery: the federation's replica-group membership map, the configured
:class:`~repro.churn.retry.RetryPolicy`, a per-device
:class:`~repro.churn.health.ReplicaHealth` tracker and a per-device
:class:`~repro.churn.failover.FailoverRecorder`.  Services address *logical
targets* (:meth:`targets`) and execute requests through :meth:`request`,
which fails over between replicas; with no retry policy configured both
collapse to the historical skip-on-failure behaviour with identical message
counts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence, TypeVar

from repro.churn.failover import (
    FIRST_HEALTHY,
    FailoverRecorder,
    RequestTarget,
    TargetUnavailableError,
    execute_with_failover,
    plan_targets,
)
from repro.churn.health import ReplicaHealth
from repro.churn.retry import RetryPolicy
from repro.discovery.discoverer import Discoverer, DiscoveryResult
from repro.geometry.point import LatLng
from repro.mapserver.auth import ANONYMOUS, Credential
from repro.mapserver.server import MapServer
from repro.simulation.network import SimulatedNetwork

T = TypeVar("T")


class UnknownServerError(KeyError):
    """Raised when discovery returns a server id the directory cannot reach."""


@dataclass
class FederationContext:
    """Everything a federated client-side service needs to operate."""

    discoverer: Discoverer
    directory: dict[str, MapServer] = field(default_factory=dict)
    network: SimulatedNetwork = field(default_factory=SimulatedNetwork)
    credential: Credential = ANONYMOUS
    retry_policy: RetryPolicy | None = None
    group_of: Mapping[str, str] = field(default_factory=dict)
    health: ReplicaHealth | None = None
    failover: FailoverRecorder = field(default_factory=FailoverRecorder)
    replica_selection: str = FIRST_HEALTHY
    """How replica chains are ordered (see :mod:`repro.churn.failover`);
    the federation injects its configured mode — the bare-context default
    keeps the legacy first-healthy ordering."""
    srv_of: Mapping[str, tuple[int, int]] = field(default_factory=dict)
    """Per-server (priority, weight) for RFC 2782 weighted selection."""
    selection_rng: random.Random | None = None
    """This device's seeded weighted-selection RNG stream."""
    backoff_rng: random.Random | None = None
    """This device's seeded retry-backoff jitter stream, consulted only by
    full-jitter retry policies (no draws otherwise — byte-identity safe)."""

    # ------------------------------------------------------------------
    # Directory
    # ------------------------------------------------------------------
    def server(self, server_id: str) -> MapServer:
        """Resolve a discovered server id to a reachable map server."""
        try:
            return self.directory[server_id]
        except KeyError:
            raise UnknownServerError(server_id) from None

    def servers(self, server_ids: tuple[str, ...] | list[str]) -> list[MapServer]:
        """Resolve several ids, skipping any that are not reachable."""
        found = []
        for server_id in server_ids:
            server = self.directory.get(server_id)
            if server is not None:
                found.append(server)
        return found

    # ------------------------------------------------------------------
    # Logical targets and failover execution
    # ------------------------------------------------------------------
    @property
    def failover_enabled(self) -> bool:
        return self.retry_policy is not None

    def targets(self, server_ids: Sequence[str]) -> list[RequestTarget]:
        """Collapse discovered ids into logical request targets.

        Replicas of one group become a single target with an ordered
        failover chain; with failover enabled, dead ids (stale cache
        entries) stay in the chain so the client pays — and the run
        measures — their timeout cost.
        """
        return plan_targets(
            server_ids,
            directory=self.directory,
            group_of=self.group_of,
            health=self.health,
            include_dead=self.failover_enabled,
            selection=self.replica_selection,
            srv_of=self.srv_of,
            rng=self.selection_rng,
            recorder=self.failover,
        )

    def request(
        self,
        target: RequestTarget,
        operation: Callable[[MapServer], T],
        charge_exchange: bool = True,
    ) -> T:
        """Execute ``operation`` against ``target`` with replica failover.

        Raises :class:`~repro.churn.failover.TargetUnavailableError` when
        the whole chain fails (callers usually skip the target, exactly as
        they always skipped one failed server).  ``charge_exchange=False``
        leaves the per-message accounting to the operation itself (the tile
        service charges per tile, not per server).
        """
        network = self.network if charge_exchange else _NoExchangeNetwork(self.network)
        return execute_with_failover(
            target,
            operation,
            network=network,
            policy=self.retry_policy,
            health=self.health,
            recorder=self.failover,
            rng=self.backoff_rng,
        )

    # ------------------------------------------------------------------
    # Discovery helpers (charged against the network)
    # ------------------------------------------------------------------
    def discover_at(self, location: LatLng, uncertainty_meters: float = 0.0) -> DiscoveryResult:
        return self.discoverer.discover_at(location, uncertainty_meters)

    def discover_along(self, waypoints: list[LatLng], corridor_meters: float = 200.0) -> DiscoveryResult:
        return self.discoverer.discover_along(waypoints, corridor_meters)

    def charge_map_server_request(self) -> None:
        """Charge one client↔map-server exchange against the network."""
        self.network.client_map_server_exchange()


class _NoExchangeNetwork:
    """Network view whose per-attempt exchange charge is a no-op.

    Timeouts, backoff and the clock still hit the real network; only the
    one-exchange-per-attempt charge is suppressed, for operations that
    account their own messages.
    """

    __slots__ = ("_network",)

    def __init__(self, network: SimulatedNetwork) -> None:
        self._network = network

    @property
    def clock(self):
        return self._network.clock

    def client_map_server_exchange(
        self, server_id: str | None = None, fail_on_exhaustion: bool = False
    ) -> float:
        return 0.0

    def server_reachable(self, server_id: str) -> bool:
        return self._network.server_reachable(server_id)

    def client_backoff(self, delay_ms: float) -> float:
        return self._network.client_backoff(delay_ms)

    def dead_server_timeout(self, timeout_ms: float) -> float:
        return self._network.dead_server_timeout(timeout_ms)


__all__ = [
    "FederationContext",
    "RequestTarget",
    "TargetUnavailableError",
    "UnknownServerError",
]
