"""Federated routing with client-side stitching.

Section 5.2 (Routing): "The client first obtains the location of the source
and destination addresses using the Geocode service... Then it discovers all
the map servers that lie along the way from the source to the destination.
Each map server would calculate the route that is relevant for the region
that they cover.  The client would collect paths from all relevant map
servers, and stitch them together such that the final path optimizes a metric
of interest."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.churn.failover import RequestTarget, TargetUnavailableError
from repro.geometry.point import LatLng
from repro.mapserver.server import MapServer
from repro.routing.stitching import RouteLeg, RouteStitcher, StitchedRoute, StitchError
from repro.services.context import FederationContext


class FederatedRoutingError(Exception):
    """Raised when no combination of discovered servers can serve the route."""


@dataclass(frozen=True, slots=True)
class FederatedRouteResult:
    """A stitched end-to-end route plus federation bookkeeping."""

    route: StitchedRoute
    servers_consulted: int
    legs_used: int
    dns_lookups: int

    @property
    def length_meters(self) -> float:
        return self.route.length_meters()

    @property
    def servers(self) -> tuple[str, ...]:
        return self.route.servers


@dataclass
class FederatedRouter:
    """Plans multi-map routes by delegating legs to map servers and stitching."""

    context: FederationContext
    stitcher: RouteStitcher = field(default_factory=lambda: RouteStitcher(max_gap_meters=200.0))
    corridor_meters: float = 250.0
    queries: int = field(default=0, init=False)

    def route(
        self,
        origin: LatLng,
        destination: LatLng,
        metric: str = "distance",
        waypoints: list[LatLng] | None = None,
    ) -> FederatedRouteResult:
        """Compute a stitched route from ``origin`` to ``destination``.

        ``waypoints`` (if given) refine discovery along the way — typically
        the coarse outdoor route's points, which is how the grocery-store
        scenario discovers both the city map and the store map.
        """
        self.queries += 1
        probe_points = [origin, destination] + list(waypoints or [])
        discovery = self.context.discover_along(probe_points, self.corridor_meters)
        targets = self.context.targets(discovery.server_ids)
        if not targets:
            raise FederatedRoutingError("discovery found no map servers along the route")

        legs, servers_consulted = self._collect_legs(targets, origin, destination, metric)
        if not legs:
            raise FederatedRoutingError("no discovered map server could compute a route leg")

        stitched = self._stitch_best(origin, destination, legs)
        return FederatedRouteResult(
            route=stitched,
            servers_consulted=servers_consulted,
            legs_used=len(stitched.legs),
            dns_lookups=discovery.dns_lookups,
        )

    # ------------------------------------------------------------------
    # Leg collection
    # ------------------------------------------------------------------
    def _collect_legs(
        self,
        targets: list[RequestTarget],
        origin: LatLng,
        destination: LatLng,
        metric: str,
    ) -> tuple[list[RouteLeg], int]:
        """Ask every relevant target for the part of the route it can serve.

        Each server routes between the origin/destination clamped to its own
        coverage (clamping happens per replica, inside the failover chain);
        servers covering neither endpoint nor anything in between return
        nothing useful and are dropped.
        """

        def route_leg(server: MapServer):
            leg_origin = self._clamp_to_coverage(server, origin)
            leg_destination = self._clamp_to_coverage(server, destination)
            response = server.route(leg_origin, leg_destination, self.context.credential, metric)
            if response is None or len(response.points) < 2:
                return None
            return response.as_leg(server.server_id)

        legs: list[RouteLeg] = []
        consulted = 0
        for target in targets:
            consulted += 1
            try:
                leg = self.context.request(target, route_leg)
            except TargetUnavailableError:
                continue
            if leg is not None:
                legs.append(leg)
        return legs, consulted

    @staticmethod
    def _clamp_to_coverage(server: MapServer, point: LatLng) -> LatLng:
        """Move a point outside the server's coverage to its hand-over point.

        The hand-over point where one server's leg ends and the next begins is
        the map's nearest *entrance* when it declares one (the storefront of
        the Section 2 walkthrough — an indoor leg must start at a door, not at
        whichever shelf happens to be closest to the street), falling back to
        the nearest node otherwise.  The containment test uses the map's exact
        coverage polygon: a point on the sidewalk just outside the store must
        still be routed via the entrance, not teleported through the wall.
        """
        if server.map_data.covers_point(point):
            return point
        entrances = server.map_data.find_nodes_by_tag("entrance")
        if entrances:
            nearest_entrance = min(entrances, key=lambda n: point.distance_to(n.location))
            return nearest_entrance.location
        nearest = server.map_data.nearest_nodes(point, count=1)
        return nearest[0].location if nearest else point

    # ------------------------------------------------------------------
    # Stitching
    # ------------------------------------------------------------------
    def _stitch_best(
        self, origin: LatLng, destination: LatLng, legs: list[RouteLeg]
    ) -> StitchedRoute:
        """Stitch the legs, dropping redundant ones if the full set fails.

        Overlapping maps can produce redundant legs (two servers covering the
        same stretch); when stitching the full set fails or is clearly
        suboptimal, subsets ordered by leg cost are tried.
        """
        candidates: list[StitchedRoute] = []
        subsets: list[list[RouteLeg]] = []
        if len(legs) <= 5:
            # Overlap between maps keeps the leg count small, so the subset
            # space can be searched exhaustively.
            for mask in range(1, 1 << len(legs)):
                subsets.append([leg for index, leg in enumerate(legs) if mask & (1 << index)])
        else:
            subsets.append(list(legs))
            by_cost = sorted(legs, key=lambda leg: leg.cost)
            subsets.extend(by_cost[:size] for size in range(1, len(by_cost) + 1))

        for subset in subsets:
            try:
                candidates.append(self.stitcher.stitch(origin, destination, subset))
            except StitchError:
                continue

        if not candidates:
            raise FederatedRoutingError(
                "could not stitch any combination of route legs into a continuous route"
            )

        # Prefer routes that actually arrive at the endpoints: a route whose
        # last leg ends at the storefront but not at the shelf is worse than a
        # slightly longer route that reaches the shelf, so the gap between the
        # stitched legs and the requested endpoints is penalised heavily.
        def score(route: StitchedRoute) -> float:
            start_gap = origin.distance_to(route.legs[0].start) if route.legs else 0.0
            end_gap = destination.distance_to(route.legs[-1].end) if route.legs else 0.0
            return route.total_cost + 10.0 * (start_gap + end_gap)

        return min(candidates, key=score)
