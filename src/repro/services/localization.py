"""Federated localization.

Section 5.2 (Localization): the client discovers map servers at its coarse
location, sends each one the location cues matching the technologies it
advertises, collects the candidate results, and selects the most plausible
one by comparing against its own dead-reckoning (IMU/SLAM) estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.churn.failover import TargetUnavailableError
from repro.geometry.point import LatLng
from repro.localization.cues import CueBundle, LocalizationResult
from repro.localization.fusion import LocalizationSelector, ScoredResult
from repro.localization.imu import DeadReckoningTracker
from repro.services.context import FederationContext


@dataclass(frozen=True, slots=True)
class FederatedLocalizationResult:
    """The selected fix plus every candidate considered."""

    best: ScoredResult | None
    candidates: tuple[ScoredResult, ...]
    servers_consulted: int
    servers_answering: int
    dns_lookups: int

    @property
    def location(self) -> LatLng | None:
        return self.best.result.location if self.best is not None else None

    @property
    def accuracy_meters(self) -> float | None:
        return self.best.result.accuracy_meters if self.best is not None else None


@dataclass
class FederatedLocalizer:
    """Discover, fan out cues, and select the most plausible localization."""

    context: FederationContext
    selector: LocalizationSelector = field(default_factory=LocalizationSelector)
    discovery_uncertainty_meters: float = 150.0
    queries: int = field(default=0, init=False)

    def localize(
        self,
        coarse_location: LatLng,
        cues: CueBundle,
        tracker: DeadReckoningTracker | None = None,
    ) -> FederatedLocalizationResult:
        """Localize the device given a coarse position and its sensed cues.

        ``coarse_location`` is the ubiquitous (GPS-grade) position used only
        for discovery; the returned fix comes from whichever discovered map
        server produced the most plausible result.
        """
        self.queries += 1
        discovery = self.context.discover_at(coarse_location, self.discovery_uncertainty_meters)

        available = cues.available_types()
        candidates: list[LocalizationResult] = []
        servers_consulted = 0
        servers_answering = 0

        for target in self.context.targets(discovery.server_ids):
            # Replicas serve the same map, so any live one tells us whether
            # the group can consume our cues; skip the request if not.  A
            # target with no live replica cannot be pre-filtered — the
            # device only finds out by paying the timeout.
            live = next((server for _, server in target.candidates if server is not None), None)
            if live is not None and not (live.advertised_localization_technologies() & available):
                continue
            servers_consulted += 1
            try:
                results = self.context.request(
                    target, lambda server: server.localize(cues, self.context.credential)
                )
            except TargetUnavailableError:
                continue
            if results:
                servers_answering += 1
                candidates.extend(results)

        # The coarse (GNSS-like) fix is always a candidate of last resort, so
        # the outdoor case degrades gracefully to plain GPS behaviour.
        if cues.gnss is not None:
            candidates.append(
                LocalizationResult(
                    server_id="client.gnss",
                    location=cues.gnss.location,
                    accuracy_meters=cues.gnss.accuracy_meters,
                    confidence=0.6,
                    cue_type=cues.gnss.cue_type,
                )
            )

        ranked = self.selector.rank(candidates, tracker)
        best = ranked[0] if ranked and ranked[0].plausibility >= self.selector.min_plausibility else None
        return FederatedLocalizationResult(
            best=best,
            candidates=tuple(ranked),
            servers_consulted=servers_consulted,
            servers_answering=servers_answering,
            dns_lookups=discovery.dns_lookups,
        )
