"""Federated client-side location-based services (Section 5.2 of the paper)."""

from repro.services.context import FederationContext, UnknownServerError
from repro.services.geocode import (
    FederatedGeocodeResult,
    FederatedGeocoder,
    FederatedReverseGeocodeResult,
)
from repro.services.localization import FederatedLocalizationResult, FederatedLocalizer
from repro.services.navigation import (
    NavigationSession,
    NavigationState,
    NavigationUpdate,
)
from repro.services.routing import (
    FederatedRouteResult,
    FederatedRouter,
    FederatedRoutingError,
)
from repro.services.search import FederatedSearch, FederatedSearchResult
from repro.services.tiles import FederatedTileClient, FederatedViewport

__all__ = [
    "FederatedGeocodeResult",
    "FederatedGeocoder",
    "FederatedLocalizationResult",
    "FederatedLocalizer",
    "FederatedReverseGeocodeResult",
    "FederatedRouteResult",
    "FederatedRouter",
    "FederatedRoutingError",
    "FederatedSearch",
    "FederatedSearchResult",
    "FederatedTileClient",
    "FederatedViewport",
    "FederationContext",
    "NavigationSession",
    "NavigationState",
    "NavigationUpdate",
    "UnknownServerError",
]
