"""Federated forward and reverse geocoding.

Section 5.2 (Geocode): "Given a text string of a hierarchical address, the
client first uses the geocode service of a large world-map provider to get
the coarse location of a part of the address.  The client then discovers
finer map servers in the coarse location which search in their own maps for
the exact address."

The "large world-map provider" role is played by any map server designated as
the *world provider* (in our scenarios, the city-scale outdoor map).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.churn.failover import TargetUnavailableError
from repro.geometry.point import LatLng
from repro.mapserver.geocode import Address, GeocodeResult, ReverseGeocodeResult
from repro.mapserver.policy import AccessDenied
from repro.simulation.queueing import ServerOverloadedError
from repro.mapserver.server import MapServer
from repro.services.context import FederationContext


@dataclass(frozen=True, slots=True)
class FederatedGeocodeResult:
    """The outcome of a federated forward-geocode query."""

    best: GeocodeResult | None
    candidates: tuple[GeocodeResult, ...]
    coarse_location: LatLng | None
    servers_consulted: int
    dns_lookups: int


@dataclass(frozen=True, slots=True)
class FederatedReverseGeocodeResult:
    """The outcome of a federated reverse-geocode query."""

    best: ReverseGeocodeResult | None
    candidates: tuple[ReverseGeocodeResult, ...]
    servers_consulted: int
    dns_lookups: int


@dataclass
class FederatedGeocoder:
    """Two-stage geocoding: coarse world-map lookup, then fine discovered maps."""

    context: FederationContext
    world_provider: MapServer | None = None
    discovery_radius_meters: float = 300.0
    queries: int = field(default=0, init=False)

    # ------------------------------------------------------------------
    # Forward geocode
    # ------------------------------------------------------------------
    def geocode(self, address: Address, limit: int = 5) -> FederatedGeocodeResult:
        """Resolve a textual address to precise candidates across the federation."""
        self.queries += 1
        coarse = self._coarse_location(address)
        dns_lookups = 0
        candidates: list[GeocodeResult] = []
        servers_consulted = 0

        if coarse is not None:
            discovery = self.context.discover_at(coarse, self.discovery_radius_meters)
            dns_lookups = discovery.dns_lookups
            for target in self.context.targets(discovery.server_ids):
                servers_consulted += 1
                try:
                    candidates.extend(
                        self.context.request(
                            target,
                            lambda server: server.geocode(address, self.context.credential, limit),
                        )
                    )
                except TargetUnavailableError:
                    continue

        # Fall back to (or augment with) the world provider's own answers.
        if self.world_provider is not None:
            self.context.charge_map_server_request()
            servers_consulted += 1
            try:
                candidates.extend(
                    self.world_provider.geocode(address, self.context.credential, limit)
                )
            except (AccessDenied, ServerOverloadedError):
                pass

        deduped = self._dedupe(candidates)
        deduped.sort(key=lambda r: r.score, reverse=True)
        best = deduped[0] if deduped else None
        return FederatedGeocodeResult(
            best=best,
            candidates=tuple(deduped[:limit]),
            coarse_location=coarse,
            servers_consulted=servers_consulted,
            dns_lookups=dns_lookups,
        )

    # ------------------------------------------------------------------
    # Reverse geocode
    # ------------------------------------------------------------------
    def reverse_geocode(
        self, location: LatLng, max_distance_meters: float = 250.0
    ) -> FederatedReverseGeocodeResult:
        """Snap a location to the most precise node any discovered map offers."""
        self.queries += 1
        discovery = self.context.discover_at(location, max_distance_meters)
        candidates: list[ReverseGeocodeResult] = []
        servers_consulted = 0
        for target in self.context.targets(discovery.server_ids):
            servers_consulted += 1
            try:
                result = self.context.request(
                    target,
                    lambda server: server.reverse_geocode(
                        location, self.context.credential, max_distance_meters
                    ),
                )
            except TargetUnavailableError:
                continue
            if result is not None:
                candidates.append(result)
        if self.world_provider is not None:
            self.context.charge_map_server_request()
            servers_consulted += 1
            try:
                result = self.world_provider.reverse_geocode(
                    location, self.context.credential, max_distance_meters
                )
                if result is not None:
                    candidates.append(result)
            except (AccessDenied, ServerOverloadedError):
                pass
        candidates.sort(key=lambda r: r.distance_meters)
        best = candidates[0] if candidates else None
        return FederatedReverseGeocodeResult(
            best=best,
            candidates=tuple(candidates),
            servers_consulted=servers_consulted,
            dns_lookups=discovery.dns_lookups,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _coarse_location(self, address: Address) -> LatLng | None:
        """Stage one: ask the world provider for a coarse location."""
        if self.world_provider is None:
            return None
        self.context.charge_map_server_request()
        try:
            results = self.world_provider.geocode(address, self.context.credential, limit=1)
        except (AccessDenied, ServerOverloadedError):
            return None
        if not results:
            return None
        return results[0].location

    @staticmethod
    def _dedupe(results: list[GeocodeResult]) -> list[GeocodeResult]:
        seen: set[tuple[str, int]] = set()
        unique: list[GeocodeResult] = []
        for result in results:
            key = (result.map_name, result.node_id)
            if key not in seen:
                seen.add(key)
                unique.append(result)
        return unique
