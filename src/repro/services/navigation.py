"""Turn-by-turn navigation sessions over a federated route.

This is the application-level layer the Section 2 walkthrough implies: after
the client has obtained a stitched route, it must *guide* the user along it —
tracking progress with dead reckoning, correcting the track with federated
localization fixes, detecting when the user leaves the route, and announcing
which map server is responsible for the current leg (so the UI can switch
from street guidance to in-store guidance at the storefront hand-over).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.geometry.point import LatLng
from repro.localization.cues import CueBundle
from repro.localization.imu import DeadReckoningTracker, MotionUpdate
from repro.services.localization import FederatedLocalizer
from repro.services.routing import FederatedRouteResult


class NavigationState(str, Enum):
    """Lifecycle of a navigation session."""

    ON_ROUTE = "on_route"
    OFF_ROUTE = "off_route"
    ARRIVED = "arrived"


@dataclass(frozen=True, slots=True)
class NavigationUpdate:
    """What the application is told after each tracking step."""

    state: NavigationState
    position: LatLng
    position_accuracy_meters: float
    distance_to_route_meters: float
    remaining_meters: float
    current_server: str | None
    localization_source: str | None

    @property
    def is_indoor_leg(self) -> bool:
        """True when guidance is currently served by a non-world map server."""
        return self.current_server is not None and self.current_server != "client.gnss"


@dataclass
class NavigationSession:
    """Tracks a user's progress along a stitched federated route.

    The session owns a dead-reckoning tracker anchored at the route origin.
    Each call to :meth:`advance` feeds it one motion update and (optionally)
    the device's current sensor cues; when cues are provided the federated
    localizer is consulted and, if its fix is plausible, the tracker is
    re-anchored to it — exactly the outdoor-GPS / indoor-map-server switch the
    paper describes.
    """

    route: FederatedRouteResult
    localizer: FederatedLocalizer
    arrival_threshold_meters: float = 5.0
    off_route_threshold_meters: float = 30.0
    tracker: DeadReckoningTracker = field(init=False)
    updates: list[NavigationUpdate] = field(default_factory=list)

    def __post_init__(self) -> None:
        points = self.route.route.points
        if len(points) < 2:
            raise ValueError("a navigation session needs a route with at least two points")
        self.tracker = DeadReckoningTracker(anchor=points[0], anchor_accuracy_meters=5.0)

    # ------------------------------------------------------------------
    # Progress tracking
    # ------------------------------------------------------------------
    def advance(self, motion: MotionUpdate, cues: CueBundle | None = None) -> NavigationUpdate:
        """Advance the session by one motion step and return guidance state."""
        self.tracker.apply(motion)
        position = self.tracker.position
        accuracy = self.tracker.uncertainty_meters
        source: str | None = None

        if cues is not None:
            fix = self.localizer.localize(position, cues, tracker=self.tracker)
            if fix.best is not None:
                position = fix.best.result.location
                accuracy = fix.best.result.accuracy_meters
                source = fix.best.result.server_id
                self.tracker.re_anchor(position, accuracy)

        update = self._build_update(position, accuracy, source)
        self.updates.append(update)
        return update

    def _build_update(
        self, position: LatLng, accuracy: float, source: str | None
    ) -> NavigationUpdate:
        nearest_index, distance_to_route = self._nearest_route_point(position)
        remaining = self._remaining_distance(nearest_index)
        destination = self.route.route.points[-1]

        if position.distance_to(destination) <= self.arrival_threshold_meters:
            state = NavigationState.ARRIVED
        elif distance_to_route > self.off_route_threshold_meters:
            state = NavigationState.OFF_ROUTE
        else:
            state = NavigationState.ON_ROUTE

        return NavigationUpdate(
            state=state,
            position=position,
            position_accuracy_meters=accuracy,
            distance_to_route_meters=distance_to_route,
            remaining_meters=remaining,
            current_server=self._server_for_progress(nearest_index) or source,
            localization_source=source,
        )

    # ------------------------------------------------------------------
    # Route geometry helpers
    # ------------------------------------------------------------------
    def _nearest_route_point(self, position: LatLng) -> tuple[int, float]:
        best_index = 0
        best_distance = float("inf")
        for index, point in enumerate(self.route.route.points):
            distance = position.distance_to(point)
            if distance < best_distance:
                best_distance = distance
                best_index = index
        return best_index, best_distance

    def _remaining_distance(self, from_index: int) -> float:
        points = self.route.route.points
        total = 0.0
        for a, b in zip(points[from_index:], points[from_index + 1 :]):
            total += a.distance_to(b)
        return total

    def _server_for_progress(self, route_point_index: int) -> str | None:
        """Which leg's map server owns the route point the user is nearest to."""
        points = self.route.route.points
        if not self.route.route.legs:
            return None
        target_point = points[route_point_index]
        best_server = None
        best_distance = float("inf")
        for leg in self.route.route.legs:
            for leg_point in leg.points:
                distance = target_point.distance_to(leg_point)
                if distance < best_distance:
                    best_distance = distance
                    best_server = leg.server_id
        return best_server

    # ------------------------------------------------------------------
    # Session summary
    # ------------------------------------------------------------------
    @property
    def state(self) -> NavigationState:
        return self.updates[-1].state if self.updates else NavigationState.ON_ROUTE

    @property
    def has_arrived(self) -> bool:
        return self.state == NavigationState.ARRIVED

    def servers_used(self) -> list[str]:
        """Map servers that provided guidance during the session, in order."""
        seen: list[str] = []
        for update in self.updates:
            if update.current_server and update.current_server not in seen:
                seen.append(update.current_server)
        return seen
