"""Federated location-based search.

Section 5.2 (Reverse geocode and location-based search): "Searching for map
nodes around a location would begin by the client discovering map servers
around a given location.  The client would then ask each map server to search
for the relevant items within their maps and return relevant results, if any.
The client would then rank results from multiple map servers and present them
to the application."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.churn.failover import TargetUnavailableError
from repro.geometry.point import LatLng
from repro.mapserver.search import SearchResult
from repro.services.context import FederationContext


@dataclass(frozen=True, slots=True)
class FederatedSearchResult:
    """The merged, ranked result of a federated search."""

    results: tuple[SearchResult, ...]
    servers_consulted: int
    servers_with_results: int
    dns_lookups: int

    def __len__(self) -> int:
        return len(self.results)

    def labels(self) -> list[str]:
        return [result.label for result in self.results]


@dataclass
class FederatedSearch:
    """Fan-out search across discovered map servers with client-side ranking."""

    context: FederationContext
    search_radius_meters: float = 500.0
    queries: int = field(default=0, init=False)

    def search(
        self,
        query: str,
        near: LatLng,
        radius_meters: float | None = None,
        limit: int = 10,
    ) -> FederatedSearchResult:
        """Search for ``query`` around ``near`` across every discovered server."""
        self.queries += 1
        radius = radius_meters if radius_meters is not None else self.search_radius_meters
        discovery = self.context.discover_at(near, radius)

        all_results: list[SearchResult] = []
        servers_consulted = 0
        servers_with_results = 0
        for target in self.context.targets(discovery.server_ids):
            servers_consulted += 1
            try:
                results = self.context.request(
                    target,
                    lambda server: server.search(
                        query,
                        near=near,
                        radius_meters=radius,
                        credential=self.context.credential,
                        limit=limit,
                    ),
                )
            except TargetUnavailableError:
                continue
            if results:
                servers_with_results += 1
                all_results.extend(results)

        ranked = self._rank(all_results)
        return FederatedSearchResult(
            results=tuple(ranked[:limit]),
            servers_consulted=servers_consulted,
            servers_with_results=servers_with_results,
            dns_lookups=discovery.dns_lookups,
        )

    @staticmethod
    def _rank(results: list[SearchResult]) -> list[SearchResult]:
        """Client-side ranking across servers.

        Results from different servers are directly comparable because each
        carries both a keyword relevance and a distance; the client ranks by
        relevance and breaks ties by distance.
        """
        deduped: dict[tuple[str, int], SearchResult] = {}
        for result in results:
            key = (result.map_name, result.node_id)
            existing = deduped.get(key)
            if existing is None or result.relevance > existing.relevance:
                deduped[key] = result
        ranked = list(deduped.values())
        ranked.sort(key=lambda r: (-r.relevance, r.distance_meters))
        return ranked
