"""Federated tile rendering.

Section 5.2 (Tile rendering): "The client would download these
representations from multiple discovered map servers and stitch them together
before showing them to the user."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry.bbox import BoundingBox
from repro.mapserver.policy import AccessDenied, ServiceName
from repro.simulation.queueing import ServerOverloadedError
from repro.services.context import FederationContext
from repro.tiles.cache import TileCache
from repro.tiles.renderer import Tile
from repro.tiles.stitcher import CompositeTile, TileStitcher
from repro.tiles.tile_math import TileCoordinate, tile_bounds, tiles_for_box


@dataclass(frozen=True, slots=True)
class FederatedViewport:
    """A stitched viewport: composite tiles plus federation bookkeeping."""

    composites: dict[TileCoordinate, CompositeTile]
    servers_consulted: int
    tiles_downloaded: int
    dns_lookups: int
    tiles_from_cache: int = 0

    @property
    def coverage_fraction(self) -> float:
        if not self.composites:
            return 0.0
        return sum(tile.coverage_fraction for tile in self.composites.values()) / len(self.composites)


@dataclass
class FederatedTileClient:
    """Downloads tiles for a viewport from every relevant map server and stitches them."""

    context: FederationContext
    stitcher: TileStitcher = field(default_factory=TileStitcher)
    cache: TileCache | None = None
    queries: int = field(default=0, init=False)

    def render_viewport(self, viewport: BoundingBox, zoom: int) -> FederatedViewport:
        """Render ``viewport`` at ``zoom`` by compositing every server's tiles.

        Servers are ordered outdoor-first (larger coverage first) so that
        higher-fidelity indoor maps are composited on top.  Tiles already in
        the client's LRU cache are reused without touching the network.
        """
        self.queries += 1
        discovery = self.context.discoverer.discover_region(viewport)
        servers = self.context.servers(discovery.server_ids)
        servers.sort(key=lambda s: s.coverage.area_square_meters(), reverse=True)

        coordinates = tiles_for_box(viewport, zoom)
        tiles_by_coordinate: dict[TileCoordinate, list[Tile]] = {c: [] for c in coordinates}
        servers_consulted = 0
        tiles_downloaded = 0
        tiles_from_cache = 0

        for server in servers:
            server_box = server.map_data.bounding_box().expanded(20.0)
            relevant = [c for c in coordinates if tile_bounds(c).intersects(server_box)]
            if not relevant:
                continue
            servers_consulted += 1
            # Cached tiles must not outlive the server's access policy: a
            # credential that has since been denied re-fetches (and fails)
            # rather than being served from its own cache.
            use_cache = self.cache is not None and server.policy.allows(
                ServiceName.TILES, self.context.credential
            )
            for coordinate in relevant:
                if use_cache:
                    cached = self.cache.get(server.server_id, coordinate)
                    if cached is not None:
                        tiles_by_coordinate[coordinate].append(cached)
                        tiles_from_cache += 1
                        continue
                self.context.charge_map_server_request()
                try:
                    tile = server.get_tile(coordinate, self.context.credential)
                except (AccessDenied, ServerOverloadedError):
                    break
                if self.cache is not None:
                    self.cache.put(server.server_id, coordinate, tile)
                tiles_by_coordinate[coordinate].append(tile)
                tiles_downloaded += 1

        composites = {
            coordinate: self.stitcher.stitch(tiles)
            for coordinate, tiles in tiles_by_coordinate.items()
            if tiles
        }
        return FederatedViewport(
            composites=composites,
            servers_consulted=servers_consulted,
            tiles_downloaded=tiles_downloaded,
            dns_lookups=discovery.dns_lookups,
            tiles_from_cache=tiles_from_cache,
        )
