"""Federated tile rendering.

Section 5.2 (Tile rendering): "The client would download these
representations from multiple discovered map servers and stitch them together
before showing them to the user."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.churn.failover import TargetUnavailableError
from repro.geometry.bbox import BoundingBox
from repro.mapserver.policy import ServiceName
from repro.services.context import FederationContext
from repro.tiles.cache import TileCache
from repro.tiles.renderer import Tile
from repro.tiles.stitcher import CompositeTile, TileStitcher
from repro.tiles.tile_math import TileCoordinate, tile_bounds, tiles_for_box


@dataclass(frozen=True, slots=True)
class FederatedViewport:
    """A stitched viewport: composite tiles plus federation bookkeeping."""

    composites: dict[TileCoordinate, CompositeTile]
    servers_consulted: int
    tiles_downloaded: int
    dns_lookups: int
    tiles_from_cache: int = 0

    @property
    def coverage_fraction(self) -> float:
        if not self.composites:
            return 0.0
        return sum(tile.coverage_fraction for tile in self.composites.values()) / len(self.composites)


def _target_coverage_area(target) -> float:
    """Coverage area of a target's first live replica (0.0 if none)."""
    for _, server in target.candidates:
        if server is not None:
            return server.coverage.area_square_meters()
    return 0.0


@dataclass
class FederatedTileClient:
    """Downloads tiles for a viewport from every relevant map server and stitches them."""

    context: FederationContext
    stitcher: TileStitcher = field(default_factory=TileStitcher)
    cache: TileCache | None = None
    queries: int = field(default=0, init=False)

    def render_viewport(self, viewport: BoundingBox, zoom: int) -> FederatedViewport:
        """Render ``viewport`` at ``zoom`` by compositing every server's tiles.

        Servers are ordered outdoor-first (larger coverage first) so that
        higher-fidelity indoor maps are composited on top.  Tiles already in
        the client's LRU cache are reused without touching the network.
        """
        self.queries += 1
        discovery = self.context.discoverer.discover_region(viewport)
        targets = self.context.targets(discovery.server_ids)
        # Outdoor-first compositing: order targets by the coverage of any
        # live replica, largest first; targets with no live replica sort
        # last (the client cannot size a map it cannot reach).
        targets.sort(key=_target_coverage_area, reverse=True)

        coordinates = tiles_for_box(viewport, zoom)
        tiles_by_coordinate: dict[TileCoordinate, list[Tile]] = {c: [] for c in coordinates}
        servers_consulted = 0
        tiles_downloaded = 0
        tiles_from_cache = 0

        for target in targets:
            live = next((server for _, server in target.candidates if server is not None), None)
            if live is not None:
                server_box = live.map_data.bounding_box().expanded(20.0)
                if not any(tile_bounds(c).intersects(server_box) for c in coordinates):
                    continue
            servers_consulted += 1
            # A failover retry must not re-download what an earlier replica
            # already served before it keeled over.
            done: set[TileCoordinate] = set()

            def fetch_viewport(server) -> int:
                server_box = server.map_data.bounding_box().expanded(20.0)
                relevant = [c for c in coordinates if tile_bounds(c).intersects(server_box)]
                # Cached tiles must not outlive the server's access policy: a
                # credential that has since been denied re-fetches (and fails)
                # rather than being served from its own cache.
                use_cache = self.cache is not None and server.policy.allows(
                    ServiceName.TILES, self.context.credential
                )
                fetched = 0
                nonlocal tiles_downloaded, tiles_from_cache
                for coordinate in relevant:
                    if coordinate in done:
                        continue
                    if use_cache:
                        cached = self.cache.get(server.server_id, coordinate)
                        if cached is not None:
                            tiles_by_coordinate[coordinate].append(cached)
                            tiles_from_cache += 1
                            done.add(coordinate)
                            continue
                    self.context.charge_map_server_request()
                    tile = server.get_tile(coordinate, self.context.credential)
                    if self.cache is not None:
                        self.cache.put(server.server_id, coordinate, tile)
                    tiles_by_coordinate[coordinate].append(tile)
                    tiles_downloaded += 1
                    done.add(coordinate)
                    fetched += 1
                return fetched

            try:
                self.context.request(target, fetch_viewport, charge_exchange=False)
            except TargetUnavailableError:
                # Tiles fetched before the chain died are kept (the old
                # behaviour on an overloaded server was the same partial
                # viewport); the stitcher composites what arrived.
                continue

        composites = {
            coordinate: self.stitcher.stitch(tiles)
            for coordinate, tiles in tiles_by_coordinate.items()
            if tiles
        }
        return FederatedViewport(
            composites=composites,
            servers_consulted=servers_consulted,
            tiles_downloaded=tiles_downloaded,
            dns_lookups=discovery.dns_lookups,
            tiles_from_cache=tiles_from_cache,
        )
