"""A point quadtree for in-memory spatial lookups.

Map servers index their nodes (shelves, rooms, POIs, road vertices) in a
quadtree so that reverse geocode and location-based search queries are not
linear scans.  The tree stores (point, value) pairs and supports box queries
and nearest-neighbour queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generic, Iterator, TypeVar

from repro.geometry.bbox import BoundingBox
from repro.geometry.point import LatLng

T = TypeVar("T")

_DEFAULT_CAPACITY = 16
_MAX_DEPTH = 24


@dataclass
class _Entry(Generic[T]):
    point: LatLng
    value: T


class QuadTree(Generic[T]):
    """A bucketed point quadtree over a fixed bounding box."""

    def __init__(
        self,
        bounds: BoundingBox | None = None,
        capacity: int = _DEFAULT_CAPACITY,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._bounds = bounds or BoundingBox(-90.0, -180.0, 90.0, 180.0)
        self._capacity = capacity
        self._root = _Node(self._bounds, capacity, depth=0)
        self._size = 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, point: LatLng, value: T) -> None:
        """Insert a (point, value) pair; points outside the bounds are rejected."""
        if not self._bounds.contains(point):
            raise ValueError(f"point {point} outside quadtree bounds")
        self._root.insert(_Entry(point, value))
        self._size += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def bounds(self) -> BoundingBox:
        return self._bounds

    def query_box(self, box: BoundingBox) -> list[tuple[LatLng, T]]:
        """All (point, value) pairs whose point lies inside ``box``."""
        out: list[tuple[LatLng, T]] = []
        self._root.query_box(box, out)
        return out

    def query_radius(self, center: LatLng, radius_meters: float) -> list[tuple[LatLng, T]]:
        """All pairs within ``radius_meters`` of ``center``."""
        box = BoundingBox.around(center, radius_meters)
        return [
            (point, value)
            for point, value in self.query_box(box)
            if center.distance_to(point) <= radius_meters
        ]

    def nearest(self, center: LatLng, count: int = 1) -> list[tuple[LatLng, T]]:
        """The ``count`` entries nearest to ``center`` (brute-force fallback on
        expanding ring search)."""
        if count < 1:
            raise ValueError("count must be >= 1")
        if self._size == 0:
            return []
        radius = 50.0
        # The ring search must be able to reach every stored point even when
        # the query point lies far outside the tree's bounds.
        max_radius = self._bounds.diagonal_meters() + center.distance_to(self._bounds.center) + 1.0
        while radius <= max_radius:
            hits = self.query_radius(center, radius)
            if len(hits) >= count:
                hits.sort(key=lambda item: center.distance_to(item[0]))
                return hits[:count]
            radius *= 2.0
        hits = sorted(self, key=lambda item: center.distance_to(item[0]))
        return hits[:count]

    def __iter__(self) -> Iterator[tuple[LatLng, T]]:
        yield from self._root.iter_entries()


@dataclass
class _Node(Generic[T]):
    bounds: BoundingBox
    capacity: int
    depth: int
    entries: list[_Entry[T]] = field(default_factory=list)
    children: list["_Node[T]"] | None = None

    def insert(self, entry: _Entry[T]) -> None:
        if self.children is not None:
            self._child_for(entry.point).insert(entry)
            return
        self.entries.append(entry)
        if len(self.entries) > self.capacity and self.depth < _MAX_DEPTH:
            self._split()

    def _split(self) -> None:
        box = self.bounds
        mid_lat = (box.south + box.north) / 2.0
        mid_lng = (box.west + box.east) / 2.0
        self.children = [
            _Node(BoundingBox(box.south, box.west, mid_lat, mid_lng), self.capacity, self.depth + 1),
            _Node(BoundingBox(box.south, mid_lng, mid_lat, box.east), self.capacity, self.depth + 1),
            _Node(BoundingBox(mid_lat, box.west, box.north, mid_lng), self.capacity, self.depth + 1),
            _Node(BoundingBox(mid_lat, mid_lng, box.north, box.east), self.capacity, self.depth + 1),
        ]
        entries, self.entries = self.entries, []
        for entry in entries:
            self._child_for(entry.point).insert(entry)

    def _child_for(self, point: LatLng) -> "_Node[T]":
        assert self.children is not None
        box = self.bounds
        mid_lat = (box.south + box.north) / 2.0
        mid_lng = (box.west + box.east) / 2.0
        index = (2 if point.latitude >= mid_lat else 0) + (1 if point.longitude >= mid_lng else 0)
        return self.children[index]

    def query_box(self, box: BoundingBox, out: list[tuple[LatLng, T]]) -> None:
        if not self.bounds.intersects(box):
            return
        if self.children is not None:
            for child in self.children:
                child.query_box(box, out)
            return
        for entry in self.entries:
            if box.contains(entry.point):
                out.append((entry.point, entry.value))

    def iter_entries(self) -> Iterator[tuple[LatLng, T]]:
        if self.children is not None:
            for child in self.children:
                yield from child.iter_entries()
        else:
            for entry in self.entries:
                yield (entry.point, entry.value)
