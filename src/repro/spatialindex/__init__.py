"""Hierarchical spatial indexing (S2/H3-like cells, geohash, quadtree, R-tree)."""

from repro.spatialindex.cellid import MAX_LEVEL, CellId
from repro.spatialindex.covering import (
    CoveringOptions,
    RegionCoverer,
    cells_at_level,
    covering_area_square_meters,
    covering_contains_point,
    normalize_covering,
)
from repro.spatialindex.geohash import decode, decode_bounds, encode, neighbors
from repro.spatialindex.hexgrid import (
    HexCell,
    edge_length_meters,
    hex_for_point,
    hexes_covering_box,
)
from repro.spatialindex.quadtree import QuadTree
from repro.spatialindex.rtree import RTree

__all__ = [
    "MAX_LEVEL",
    "CellId",
    "CoveringOptions",
    "HexCell",
    "QuadTree",
    "RTree",
    "RegionCoverer",
    "cells_at_level",
    "covering_area_square_meters",
    "covering_contains_point",
    "decode",
    "decode_bounds",
    "edge_length_meters",
    "encode",
    "hex_for_point",
    "hexes_covering_box",
    "neighbors",
    "normalize_covering",
]
