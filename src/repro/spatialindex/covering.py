"""Region coverings: approximate a region with a small set of cells.

A map server's zone (a polygon or bounding box) is registered in the
discovery DNS as a *covering* — a set of cells whose union contains the zone
(Section 5.1: "A polygonal region, or a zone, can be approximated by a
collection of domain names").  The covering is allowed to over-approximate the
region; that over-approximation is exactly the "fuzzy boundary" the paper
argues is acceptable for discovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable

from repro.geometry.bbox import BoundingBox
from repro.geometry.point import LatLng
from repro.geometry.polygon import Polygon
from repro.simulation.lru import LruCache
from repro.spatialindex.cellid import MAX_LEVEL, CellId, _bounds_of


@dataclass(frozen=True, slots=True)
class CoveringOptions:
    """Tuning knobs for the region coverer.

    ``min_level``/``max_level`` bound cell sizes; ``max_cells`` bounds the
    covering size (and therefore the number of DNS records a registration
    creates and the number of lookups a discovery query may need).
    """

    min_level: int = 4
    max_level: int = 16
    max_cells: int = 32

    def __post_init__(self) -> None:
        if not (0 <= self.min_level <= self.max_level <= MAX_LEVEL):
            raise ValueError("require 0 <= min_level <= max_level <= MAX_LEVEL")
        if self.max_cells < 1:
            raise ValueError("max_cells must be >= 1")


_polygon_covering_memo: LruCache = LruCache(max_entries=1024)
"""Bounded memo of polygon coverings keyed by (vertices, covering options).

Map-server coverage polygons are registered every time a scenario is built,
and a fleet sweep builds one scenario per sweep point — the recursive
covering of an identical region is computed once per process instead of once
per registration.  Both Polygon and CellId are immutable, so sharing entries
is safe; callers get a fresh list.
"""


@dataclass
class RegionCoverer:
    """Computes cell coverings of boxes, polygons and discs."""

    options: CoveringOptions = field(default_factory=CoveringOptions)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def cover_box(self, box: BoundingBox) -> list[CellId]:
        """Covering of a bounding box."""
        return self._cover(lambda cell_box: cell_box.intersects(box),
                           lambda cell_box: box.contains_box(cell_box))

    def cover_polygon(self, polygon: Polygon) -> list[CellId]:
        """Covering of a polygon (memoized per region + options)."""
        opts = self.options
        key = (polygon.vertices, opts.min_level, opts.max_level, opts.max_cells)
        cached = _polygon_covering_memo.lookup(key)
        if cached is None:
            cached = self._cover(
                lambda cell_box: polygon.intersects_box(cell_box),
                lambda cell_box: all(polygon.contains(c) for c in cell_box.corners()),
            )
            _polygon_covering_memo.store(key, cached)
        return list(cached)

    def cover_disc(self, center: LatLng, radius_meters: float) -> list[CellId]:
        """Covering of a disc, via its bounding box.

        Discs are what discovery queries use: a coarse device location plus an
        uncertainty radius.
        """
        return self.cover_box(BoundingBox.around(center, radius_meters))

    def cover_point(self, point: LatLng, level: int | None = None) -> list[CellId]:
        """The single cell containing ``point`` at the covering level."""
        chosen = self.options.max_level if level is None else level
        return [CellId.from_point(point, chosen)]

    # ------------------------------------------------------------------
    # Core recursive covering
    # ------------------------------------------------------------------
    def _cover(
        self,
        intersects: Callable[[BoundingBox], bool],
        contained: Callable[[BoundingBox], bool],
    ) -> list[CellId]:
        """Generic covering: refine intersecting cells until budget is spent."""
        opts = self.options
        # Seed with the cells at min_level that intersect the region.
        frontier: list[CellId] = []
        self._collect_intersecting(CellId.root(), opts.min_level, intersects, frontier)
        if not frontier:
            return []

        result: list[CellId] = []
        # Refine cells that are not fully inside the region while the cell
        # budget allows; fully-contained cells are kept as-is.
        while frontier:
            frontier.sort(key=lambda c: c.level)
            cell = frontier.pop(0)
            cell_box = cell.bounds()
            if contained(cell_box) or cell.level >= opts.max_level:
                result.append(cell)
                continue
            children = [child for child in cell.children() if intersects(child.bounds())]
            if not children:
                result.append(cell)
                continue
            if len(result) + len(frontier) + len(children) > opts.max_cells:
                result.append(cell)
            else:
                frontier.extend(children)

        return normalize_covering(result)

    def _collect_intersecting(
        self,
        cell: CellId,
        target_level: int,
        intersects: Callable[[BoundingBox], bool],
        out: list[CellId],
    ) -> None:
        if not intersects(cell.bounds()):
            return
        if cell.level >= target_level:
            out.append(cell)
            return
        for child in cell.children():
            self._collect_intersecting(child, target_level, intersects, out)


def cells_at_level(box: BoundingBox, level: int, max_cells: int = 64) -> list[CellId]:
    """All cells at exactly ``level`` intersecting ``box``, capped at ``max_cells``.

    Discovery queries use this fixed-level enumeration so that a query name is
    always at the same level as (or finer than) registration names and the
    DNS ancestor walk is guaranteed to meet every registration.  The scan runs
    south-west to north-east; if the box needs more than ``max_cells`` cells
    the outermost ones are dropped (the query becomes slightly less complete
    rather than unboundedly expensive).
    """
    if max_cells < 1:
        raise ValueError("max_cells must be >= 1")
    # Corner cells pin the integer index range of the aligned grid; every
    # candidate in between is then derived with bit arithmetic rather than
    # re-quantizing a floating-point probe per cell (this enumeration runs
    # for every discovery query a fleet issues).
    south_west = LatLng(max(-90.0, box.south), max(-180.0, box.west))
    north_east = LatLng(min(90.0, box.north), min(180.0, box.east))
    row0, col0 = CellId.from_point(south_west, level).indices()
    row1, col1 = CellId.from_point(north_east, level).indices()
    row1, col1 = max(row0, row1), max(col0, col1)
    cells: list[CellId] = []
    # Same scan order as the historical implementation: south→north rows,
    # west→east within a row, dropping the outermost cells once the budget
    # is exhausted.
    for row in range(row0, row1 + 1):
        if len(cells) >= max_cells:
            break
        for col in range(col0, col1 + 1):
            if len(cells) >= max_cells:
                break
            cell = CellId.from_indices(row, col, level)
            if cell.bounds().intersects(box):
                cells.append(cell)
    # The grid scan yields unique same-level cells, so normalization reduces
    # to the canonical (level, token) ordering — no containment pass needed.
    cells.sort(key=lambda cell: cell.token)
    return cells


def normalize_covering(cells: list[CellId]) -> list[CellId]:
    """Sort a covering and drop cells already contained in coarser members.

    Containment of cell ids is a token-prefix test, so instead of comparing
    every pair (quadratic in the covering size) each cell checks its ancestor
    prefixes — one per coarser level already kept — against a set.
    """
    unique = sorted(set(cells), key=lambda c: (c.level, c.token))
    kept: list[CellId] = []
    kept_tokens: set[str] = set()
    kept_levels: list[int] = []
    for cell in unique:
        token = cell.token
        if any(token[:level] in kept_tokens for level in kept_levels):
            continue
        kept.append(cell)
        kept_tokens.add(token)
        if not kept_levels or kept_levels[-1] != cell.level:
            kept_levels.append(cell.level)
    return kept


@lru_cache(maxsize=2048)
def _covering_contains(tokens: tuple[str, ...], latitude: float, longitude: float) -> bool:
    point = LatLng(latitude, longitude)
    return any(_bounds_of(token).contains(point) for token in tokens)


def covering_contains_point(cells: list[CellId], point: LatLng) -> bool:
    """True if any cell of the covering contains ``point``.

    Memoized on (covering tokens, exact coordinates) — this only pays off
    for callers re-checking *recurring* points (popular POIs, fixed probe
    grids) against stable coverings; continuously varying positions miss.
    """
    return _covering_contains(
        tuple(cell.token for cell in cells), point.latitude, point.longitude
    )


def covering_area_square_meters(cells: list[CellId]) -> float:
    """Total area of the covering (an upper bound on the region's area)."""
    return sum(cell.bounds().area_square_meters() for cell in cells)
