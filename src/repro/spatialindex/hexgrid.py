"""An H3-like hexagonal grid.

The paper names two spatial indexing systems that can turn locations into
hierarchical names: Google's S2 (quadrilateral cells — modelled by
``cellid.py``) and Uber's H3 (hexagonal cells).  This module provides a flat
hexagonal grid with multiple resolutions so that the discovery layer's naming
scheme can be evaluated against a hex decomposition as well: hexagons have the
nice property that all six neighbours are edge-adjacent and equidistant,
which makes "this cell plus its ring" queries a natural uncertainty region.

Unlike the quadtree cells, hexagons do not nest exactly across resolutions,
so hex identifiers encode ``(resolution, axial q, axial r)`` rather than a
prefix string; containment across resolutions is by centre-point lookup, as
in H3 itself.

The grid is laid out on an equirectangular plane anchored at (0°, 0°), so
hexagons are geometrically exact near the equator and increasingly stretched
east-west at higher latitudes (by ``1/cos(latitude)``).  That distortion does
not affect the properties discovery relies on — every point maps to exactly
one cell per resolution and neighbour relationships are consistent — but
metric comparisons against the quadtree cells should account for it.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass

from repro.geometry.bbox import BoundingBox
from repro.geometry.point import (
    LatLng,
    meters_per_degree_latitude,
    meters_per_degree_longitude,
)

MAX_RESOLUTION = 15

# Edge length of a resolution-0 hexagon, in meters.  Each finer resolution
# shrinks the edge by sqrt(7), mirroring H3's aperture-7 subdivision ratio.
_BASE_EDGE_METERS = 1_000_000.0
_APERTURE = math.sqrt(7.0)

# Reference origin for the axial grid.  A fixed origin keeps identifiers
# stable across processes without needing icosahedron face math.
_ORIGIN = LatLng(0.0, 0.0)


def edge_length_meters(resolution: int) -> float:
    """Hexagon edge length at ``resolution``."""
    _check_resolution(resolution)
    return _BASE_EDGE_METERS / (_APERTURE**resolution)


def _check_resolution(resolution: int) -> None:
    if not (0 <= resolution <= MAX_RESOLUTION):
        raise ValueError(f"resolution must be in [0, {MAX_RESOLUTION}]")


@dataclass(frozen=True, slots=True)
class HexCell:
    """One hexagon of the grid, identified by resolution and axial coordinates."""

    resolution: int
    q: int
    r: int

    def __post_init__(self) -> None:
        _check_resolution(self.resolution)

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def token(self) -> str:
        """A compact, DNS-label-friendly identifier (negative axes spelled ``n``)."""

        def encode(value: int) -> str:
            return f"n{-value}" if value < 0 else str(value)

        return f"h{self.resolution}x{encode(self.q)}y{encode(self.r)}"

    @classmethod
    def from_token(cls, token: str) -> "HexCell":
        match = re.fullmatch(r"h(\d+)x(n?\d+)y(n?\d+)", token)
        if match is None:
            raise ValueError(f"invalid hex token {token!r}")

        def decode(text: str) -> int:
            return -int(text[1:]) if text.startswith("n") else int(text)

        return cls(int(match.group(1)), decode(match.group(2)), decode(match.group(3)))

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def center(self) -> LatLng:
        """Geographic centre of the hexagon."""
        edge = edge_length_meters(self.resolution)
        x = edge * (1.5 * self.q)
        y = edge * (math.sqrt(3.0) * (self.r + self.q / 2.0))
        lat = _ORIGIN.latitude + y / meters_per_degree_latitude()
        lng = _ORIGIN.longitude + x / meters_per_degree_longitude(_ORIGIN.latitude)
        return LatLng.normalized(lat, lng)

    def boundary(self) -> list[LatLng]:
        """The six corners of the hexagon (pointy-top orientation)."""
        edge = edge_length_meters(self.resolution)
        centre = self.center()
        corners = []
        for k in range(6):
            angle = math.radians(60.0 * k)
            east = edge * math.cos(angle)
            north = edge * math.sin(angle)
            lat = centre.latitude + north / meters_per_degree_latitude()
            lng = centre.longitude + east / meters_per_degree_longitude(centre.latitude)
            corners.append(LatLng.normalized(lat, lng))
        return corners

    def bounding_box(self) -> BoundingBox:
        return BoundingBox.from_points(self.boundary())

    def neighbors(self) -> list["HexCell"]:
        """The six edge-adjacent hexagons at the same resolution."""
        offsets = [(1, 0), (1, -1), (0, -1), (-1, 0), (-1, 1), (0, 1)]
        return [HexCell(self.resolution, self.q + dq, self.r + dr) for dq, dr in offsets]

    def ring(self, radius: int) -> list["HexCell"]:
        """All hexagons exactly ``radius`` steps away (the H3 "k-ring" shell)."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        if radius == 0:
            return [self]
        results: list[HexCell] = []
        q, r = self.q + radius * -1, self.r + radius * 1  # start at direction (-1, +1) * radius
        directions = [(1, 0), (1, -1), (0, -1), (-1, 0), (-1, 1), (0, 1)]
        for direction_q, direction_r in directions:
            for _ in range(radius):
                results.append(HexCell(self.resolution, q, r))
                q += direction_q
                r += direction_r
        return results

    def disk(self, radius: int) -> list["HexCell"]:
        """All hexagons within ``radius`` steps (the H3 "k-disk")."""
        cells: list[HexCell] = []
        for ring_radius in range(radius + 1):
            cells.extend(self.ring(ring_radius))
        return cells

    def parent(self) -> "HexCell":
        """The cell at the next coarser resolution containing this cell's centre."""
        if self.resolution == 0:
            raise ValueError("a resolution-0 hexagon has no parent")
        return hex_for_point(self.center(), self.resolution - 1)

    def contains_point(self, point: LatLng) -> bool:
        """True if ``point`` falls in this hexagon (by nearest-centre test)."""
        return hex_for_point(point, self.resolution) == self


def hex_for_point(point: LatLng, resolution: int) -> HexCell:
    """The hexagon containing ``point`` at ``resolution``."""
    _check_resolution(resolution)
    edge = edge_length_meters(resolution)
    x = (point.longitude - _ORIGIN.longitude) * meters_per_degree_longitude(_ORIGIN.latitude)
    y = (point.latitude - _ORIGIN.latitude) * meters_per_degree_latitude()
    fractional_q = (2.0 / 3.0) * x / edge
    fractional_r = (-1.0 / 3.0) * x / edge + (math.sqrt(3.0) / 3.0) * y / edge
    q, r = _round_axial(fractional_q, fractional_r)
    return HexCell(resolution, q, r)


def hexes_covering_box(box: BoundingBox, resolution: int, max_cells: int = 256) -> list[HexCell]:
    """Hexagons at ``resolution`` covering ``box`` (capped at ``max_cells``)."""
    _check_resolution(resolution)
    if max_cells < 1:
        raise ValueError("max_cells must be >= 1")
    edge = edge_length_meters(resolution)
    step_lat = edge / meters_per_degree_latitude()
    step_lng = edge / meters_per_degree_longitude(box.center.latitude)
    cells: dict[str, HexCell] = {}
    lat = box.south
    while lat <= box.north + step_lat and len(cells) < max_cells:
        lng = box.west
        while lng <= box.east + step_lng and len(cells) < max_cells:
            cell = hex_for_point(LatLng.normalized(lat, lng), resolution)
            cells.setdefault(cell.token(), cell)
            lng += step_lng
        lat += step_lat
    return list(cells.values())


def _round_axial(fractional_q: float, fractional_r: float) -> tuple[int, int]:
    """Round fractional axial coordinates to the containing hexagon (cube rounding)."""
    x = fractional_q
    z = fractional_r
    y = -x - z
    rounded_x = round(x)
    rounded_y = round(y)
    rounded_z = round(z)
    dx = abs(rounded_x - x)
    dy = abs(rounded_y - y)
    dz = abs(rounded_z - z)
    if dx > dy and dx > dz:
        rounded_x = -rounded_y - rounded_z
    elif dy > dz:
        rounded_y = -rounded_x - rounded_z
    else:
        rounded_z = -rounded_x - rounded_y
    return int(rounded_x), int(rounded_z)
