"""A small in-memory R-tree for rectangle-valued spatial data.

Where the quadtree indexes points, the R-tree indexes *extents*: map ways
(roads, aisles, walls), map-server coverage regions inside the federation
registry, and pre-rendered tile extents.  The implementation is a classic
quadratic-split R-tree, sufficient for the data sizes this prototype handles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generic, TypeVar

from repro.geometry.bbox import BoundingBox
from repro.geometry.point import LatLng

T = TypeVar("T")

_MAX_ENTRIES = 8
_MIN_ENTRIES = 2


@dataclass
class _Item(Generic[T]):
    box: BoundingBox
    value: T


@dataclass
class _RNode(Generic[T]):
    leaf: bool
    items: list["_Item[T]"] = field(default_factory=list)
    children: list["_RNode[T]"] = field(default_factory=list)
    box: BoundingBox | None = None

    def recompute_box(self) -> None:
        boxes = [item.box for item in self.items] if self.leaf else [
            child.box for child in self.children if child.box is not None
        ]
        if not boxes:
            self.box = None
            return
        merged = boxes[0]
        for box in boxes[1:]:
            merged = merged.union(box)
        self.box = merged


class RTree(Generic[T]):
    """An R-tree mapping bounding boxes to values."""

    def __init__(self) -> None:
        self._root: _RNode[T] = _RNode(leaf=True)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, box: BoundingBox, value: T) -> None:
        item = _Item(box, value)
        split = self._insert(self._root, item)
        if split is not None:
            new_root: _RNode[T] = _RNode(leaf=False, children=[self._root, split])
            new_root.recompute_box()
            self._root = new_root
        self._size += 1

    def _insert(self, node: _RNode[T], item: _Item[T]) -> _RNode[T] | None:
        if node.leaf:
            node.items.append(item)
            node.recompute_box()
            if len(node.items) > _MAX_ENTRIES:
                return self._split_leaf(node)
            return None
        child = self._choose_child(node, item.box)
        split = self._insert(child, item)
        if split is not None:
            node.children.append(split)
        node.recompute_box()
        if len(node.children) > _MAX_ENTRIES:
            return self._split_internal(node)
        return None

    def _choose_child(self, node: _RNode[T], box: BoundingBox) -> _RNode[T]:
        best = None
        best_growth = float("inf")
        for child in node.children:
            assert child.box is not None
            merged = child.box.union(box)
            growth = merged.area_square_meters() - child.box.area_square_meters()
            if growth < best_growth:
                best_growth = growth
                best = child
        assert best is not None
        return best

    def _split_leaf(self, node: _RNode[T]) -> _RNode[T]:
        items = node.items
        seed_a, seed_b = self._pick_seeds([item.box for item in items])
        group_a = [items[seed_a]]
        group_b = [items[seed_b]]
        for index, item in enumerate(items):
            if index in (seed_a, seed_b):
                continue
            self._assign(item, group_a, group_b, key=lambda entry: entry.box)
        node.items = group_a
        node.recompute_box()
        sibling: _RNode[T] = _RNode(leaf=True, items=group_b)
        sibling.recompute_box()
        return sibling

    def _split_internal(self, node: _RNode[T]) -> _RNode[T]:
        children = node.children
        seed_a, seed_b = self._pick_seeds([child.box for child in children if child.box])
        group_a = [children[seed_a]]
        group_b = [children[seed_b]]
        for index, child in enumerate(children):
            if index in (seed_a, seed_b):
                continue
            self._assign(child, group_a, group_b, key=lambda entry: entry.box)
        node.children = group_a
        node.recompute_box()
        sibling: _RNode[T] = _RNode(leaf=False, children=group_b)
        sibling.recompute_box()
        return sibling

    @staticmethod
    def _pick_seeds(boxes: list[BoundingBox]) -> tuple[int, int]:
        worst_pair = (0, 1)
        worst_waste = -1.0
        for i in range(len(boxes)):
            for j in range(i + 1, len(boxes)):
                merged = boxes[i].union(boxes[j])
                waste = (
                    merged.area_square_meters()
                    - boxes[i].area_square_meters()
                    - boxes[j].area_square_meters()
                )
                if waste > worst_waste:
                    worst_waste = waste
                    worst_pair = (i, j)
        return worst_pair

    @staticmethod
    def _assign(entry, group_a: list, group_b: list, key) -> None:
        def group_box(group: list) -> BoundingBox:
            merged = key(group[0])
            for member in group[1:]:
                merged = merged.union(key(member))
            return merged

        if len(group_a) + (_MAX_ENTRIES - len(group_b)) < _MIN_ENTRIES:
            group_a.append(entry)
            return
        if len(group_b) + (_MAX_ENTRIES - len(group_a)) < _MIN_ENTRIES:
            group_b.append(entry)
            return
        box = key(entry)
        growth_a = group_box(group_a).union(box).area_square_meters() - group_box(group_a).area_square_meters()
        growth_b = group_box(group_b).union(box).area_square_meters() - group_box(group_b).area_square_meters()
        if growth_a <= growth_b:
            group_a.append(entry)
        else:
            group_b.append(entry)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query_box(self, box: BoundingBox) -> list[tuple[BoundingBox, T]]:
        """All (box, value) entries whose box intersects ``box``."""
        out: list[tuple[BoundingBox, T]] = []
        self._query(self._root, box, out)
        return out

    def query_point(self, point: LatLng) -> list[tuple[BoundingBox, T]]:
        """All entries whose box contains ``point``."""
        tiny = BoundingBox(point.latitude, point.longitude, point.latitude, point.longitude)
        return [(box, value) for box, value in self.query_box(tiny) if box.contains(point)]

    def _query(self, node: _RNode[T], box: BoundingBox, out: list[tuple[BoundingBox, T]]) -> None:
        if node.box is None or not node.box.intersects(box):
            return
        if node.leaf:
            for item in node.items:
                if item.box.intersects(box):
                    out.append((item.box, item.value))
            return
        for child in node.children:
            self._query(child, box, out)

    def all_entries(self) -> list[tuple[BoundingBox, T]]:
        out: list[tuple[BoundingBox, T]] = []
        self._collect(self._root, out)
        return out

    def _collect(self, node: _RNode[T], out: list[tuple[BoundingBox, T]]) -> None:
        if node.leaf:
            out.extend((item.box, item.value) for item in node.items)
            return
        for child in node.children:
            self._collect(child, out)
