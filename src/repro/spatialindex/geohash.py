"""Geohash encoding/decoding.

Geohashes are an alternative hierarchical location code used by several
spatial databases the paper cites (GeoFire, MongoDB).  They are included both
as a second naming scheme for the discovery layer and as a compact key for
fingerprint databases.
"""

from __future__ import annotations

from repro.geometry.bbox import BoundingBox
from repro.geometry.point import LatLng

_BASE32 = "0123456789bcdefghjkmnpqrstuvwxyz"
_BASE32_INDEX = {ch: i for i, ch in enumerate(_BASE32)}


def encode(point: LatLng, precision: int = 9) -> str:
    """Encode a point as a geohash string of ``precision`` characters."""
    if precision < 1:
        raise ValueError("precision must be >= 1")
    lat_interval = [-90.0, 90.0]
    lng_interval = [-180.0, 180.0]
    bits = [16, 8, 4, 2, 1]
    chars: list[str] = []
    bit = 0
    ch = 0
    even = True
    while len(chars) < precision:
        if even:
            mid = (lng_interval[0] + lng_interval[1]) / 2
            if point.longitude >= mid:
                ch |= bits[bit]
                lng_interval[0] = mid
            else:
                lng_interval[1] = mid
        else:
            mid = (lat_interval[0] + lat_interval[1]) / 2
            if point.latitude >= mid:
                ch |= bits[bit]
                lat_interval[0] = mid
            else:
                lat_interval[1] = mid
        even = not even
        if bit < 4:
            bit += 1
        else:
            chars.append(_BASE32[ch])
            bit = 0
            ch = 0
    return "".join(chars)


def decode_bounds(geohash: str) -> BoundingBox:
    """Bounding box of a geohash cell."""
    if not geohash:
        raise ValueError("geohash must be non-empty")
    lat_interval = [-90.0, 90.0]
    lng_interval = [-180.0, 180.0]
    even = True
    for character in geohash.lower():
        if character not in _BASE32_INDEX:
            raise ValueError(f"invalid geohash character {character!r}")
        cd = _BASE32_INDEX[character]
        for mask in (16, 8, 4, 2, 1):
            if even:
                mid = (lng_interval[0] + lng_interval[1]) / 2
                if cd & mask:
                    lng_interval[0] = mid
                else:
                    lng_interval[1] = mid
            else:
                mid = (lat_interval[0] + lat_interval[1]) / 2
                if cd & mask:
                    lat_interval[0] = mid
                else:
                    lat_interval[1] = mid
            even = not even
    return BoundingBox(lat_interval[0], lng_interval[0], lat_interval[1], lng_interval[1])


def decode(geohash: str) -> LatLng:
    """Center point of a geohash cell."""
    return decode_bounds(geohash).center


def neighbors(geohash: str) -> list[str]:
    """Geohashes of the eight cells surrounding ``geohash``."""
    box = decode_bounds(geohash)
    d_lat = box.height_degrees
    d_lng = box.width_degrees
    center = box.center
    out: list[str] = []
    seen = {geohash}
    for dlat in (-d_lat, 0.0, d_lat):
        for dlng in (-d_lng, 0.0, d_lng):
            if dlat == 0.0 and dlng == 0.0:
                continue
            lat = center.latitude + dlat
            lng = center.longitude + dlng
            if not (-90.0 <= lat <= 90.0 and -180.0 <= lng <= 180.0):
                continue
            code = encode(LatLng(lat, lng), precision=len(geohash))
            if code not in seen:
                seen.add(code)
                out.append(code)
    return out
