"""Hierarchical spatial cells (an S2/H3-like decomposition).

The discovery layer (Section 5.1) relies on a *hierarchical* decomposition of
the earth's surface into cells whose identifiers can be written as domain
names.  The paper suggests S2 or H3; we implement a quadtree decomposition of
the latitude/longitude rectangle which offers the same properties the paper
needs:

* every cell at level ``L`` has exactly four children at level ``L + 1``;
* a cell's identifier is a prefix of all of its descendants' identifiers, so
  containment is a string-prefix test and DNS delegation follows the hierarchy
  naturally;
* any point maps to exactly one cell per level, and any region can be
  approximated by a small *covering* of cells (see ``covering.py``).

Cell tokens are strings of the digits ``0-3`` ("face" quadrants of the world
rectangle first, then successive quadrant refinements), e.g. ``"203113"`` is a
level-6 cell.  The empty token is the root cell covering the whole world.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache, total_ordering

from repro.geometry.bbox import BoundingBox
from repro.geometry.point import LatLng

MAX_LEVEL = 30
"""Deepest refinement level supported (sub-centimetre at the equator)."""

_WORLD = BoundingBox(-90.0, -180.0, 90.0, 180.0)

_DIGITS = ("0", "1", "2", "3")


@lru_cache(maxsize=65536)
def _bounds_of(token: str) -> BoundingBox:
    """Geographic bounds of a cell token (cached — tokens repeat heavily).

    Discovery enumerates the same handful of city cells for every request a
    fleet makes, so the successive-halving walk is paid once per distinct
    token instead of once per lookup.  BoundingBox is frozen, so sharing the
    instance is safe.
    """
    south, west, north, east = _WORLD.south, _WORLD.west, _WORLD.north, _WORLD.east
    for digit in token:
        value = int(digit)
        mid_lat = (south + north) / 2.0
        mid_lng = (west + east) / 2.0
        if value & 2:
            south = mid_lat
        else:
            north = mid_lat
        if value & 1:
            west = mid_lng
        else:
            east = mid_lng
    return BoundingBox(south, west, north, east)


@total_ordering
@dataclass(frozen=True, slots=True)
class CellId:
    """An identifier for one cell of the hierarchical decomposition."""

    token: str

    def __post_init__(self) -> None:
        if len(self.token) > MAX_LEVEL:
            raise ValueError(f"cell level {len(self.token)} exceeds MAX_LEVEL={MAX_LEVEL}")
        # str.strip runs in C; a per-character generator is ~10x slower and
        # this constructor sits on the discovery hot path.
        if self.token.strip("0123"):
            raise ValueError(f"invalid cell token {self.token!r}: digits must be 0-3")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def root(cls) -> "CellId":
        """The level-0 cell covering the whole world."""
        return cls("")

    @classmethod
    def from_point(cls, point: LatLng, level: int) -> "CellId":
        """The unique level-``level`` cell containing ``point``."""
        if not (0 <= level <= MAX_LEVEL):
            raise ValueError(f"level must be in [0, {MAX_LEVEL}]")
        south, west, north, east = _WORLD.south, _WORLD.west, _WORLD.north, _WORLD.east
        digits = []
        for _ in range(level):
            mid_lat = (south + north) / 2.0
            mid_lng = (west + east) / 2.0
            if point.latitude >= mid_lat:
                vertical = 1
                south = mid_lat
            else:
                vertical = 0
                north = mid_lat
            if point.longitude >= mid_lng:
                horizontal = 1
                west = mid_lng
            else:
                horizontal = 0
                east = mid_lng
            digits.append(str(vertical * 2 + horizontal))
        return cls("".join(digits))

    @classmethod
    @lru_cache(maxsize=65536)
    def from_indices(cls, row: int, col: int, level: int) -> "CellId":
        """The cell at integer grid position (``row``, ``col``) of ``level``.

        Rows count south→north and columns west→east; both must lie in
        ``[0, 2**level)``.  Each token digit packs one row bit (value 2) and
        one column bit (value 1), most significant first — the inverse of
        :meth:`indices`.  Grid enumeration (coverings of a box) uses this to
        step between adjacent cells without re-deriving each token from a
        floating-point point.
        """
        if not (0 <= level <= MAX_LEVEL):
            raise ValueError(f"level must be in [0, {MAX_LEVEL}]")
        side = 1 << level
        if not (0 <= row < side and 0 <= col < side):
            raise ValueError(f"indices ({row}, {col}) outside level-{level} grid")
        digits = []
        for bit in range(level - 1, -1, -1):
            digits.append(_DIGITS[((row >> bit) & 1) * 2 + ((col >> bit) & 1)])
        return cls("".join(digits))

    def indices(self) -> tuple[int, int]:
        """This cell's (row, col) position in the level grid (inverse of
        :meth:`from_indices`)."""
        row = col = 0
        for ch in self.token:
            value = int(ch)
            row = (row << 1) | (value >> 1)
            col = (col << 1) | (value & 1)
        return row, col

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def level(self) -> int:
        return len(self.token)

    @property
    def is_root(self) -> bool:
        return not self.token

    def parent(self, level: int | None = None) -> "CellId":
        """Ancestor at ``level`` (default: the immediate parent)."""
        if level is None:
            level = self.level - 1
        if level < 0 or level > self.level:
            raise ValueError(f"invalid parent level {level} for cell at level {self.level}")
        return CellId(self.token[:level])

    def children(self) -> list["CellId"]:
        """The four child cells at the next level."""
        if self.level >= MAX_LEVEL:
            raise ValueError("cannot subdivide a cell at MAX_LEVEL")
        return [CellId(self.token + digit) for digit in "0123"]

    def contains(self, other: "CellId") -> bool:
        """True if ``other`` is this cell or one of its descendants."""
        return other.token.startswith(self.token)

    def intersects_cell(self, other: "CellId") -> bool:
        """True if the two cells share area (one contains the other)."""
        return self.contains(other) or other.contains(self)

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def bounds(self) -> BoundingBox:
        """The geographic rectangle covered by this cell."""
        return _bounds_of(self.token)

    def center(self) -> LatLng:
        return self.bounds().center

    def contains_point(self, point: LatLng) -> bool:
        return self.bounds().contains(point)

    def approximate_size_meters(self) -> float:
        """The cell diagonal in meters, a convenient scale measure."""
        return self.bounds().diagonal_meters()

    def neighbors(self) -> list["CellId"]:
        """The up-to-eight edge/corner adjacent cells at the same level.

        Neighbours are computed by sampling points just outside each edge and
        corner of the cell; cells falling outside the world rectangle are
        dropped, so border cells have fewer neighbours.
        """
        if self.is_root:
            return []
        box = self.bounds()
        d_lat = box.height_degrees * 0.5
        d_lng = box.width_degrees * 0.5
        center = box.center
        offsets = [
            (d_lat + box.height_degrees * 0.01, 0.0),
            (-(d_lat + box.height_degrees * 0.01), 0.0),
            (0.0, d_lng + box.width_degrees * 0.01),
            (0.0, -(d_lng + box.width_degrees * 0.01)),
            (d_lat + box.height_degrees * 0.01, d_lng + box.width_degrees * 0.01),
            (d_lat + box.height_degrees * 0.01, -(d_lng + box.width_degrees * 0.01)),
            (-(d_lat + box.height_degrees * 0.01), d_lng + box.width_degrees * 0.01),
            (-(d_lat + box.height_degrees * 0.01), -(d_lng + box.width_degrees * 0.01)),
        ]
        found: list[CellId] = []
        seen: set[str] = {self.token}
        for dlat, dlng in offsets:
            lat = center.latitude + dlat
            lng = center.longitude + dlng
            if not (-90.0 <= lat <= 90.0 and -180.0 <= lng <= 180.0):
                continue
            neighbor = CellId.from_point(LatLng(lat, lng), self.level)
            if neighbor.token not in seen:
                seen.add(neighbor.token)
                found.append(neighbor)
        return found

    # ------------------------------------------------------------------
    # Ordering / representation
    # ------------------------------------------------------------------
    def __lt__(self, other: "CellId") -> bool:
        return (self.level, self.token) < (other.level, other.token)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.token or "<root>"
