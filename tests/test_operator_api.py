"""The operator API layer: schemas, middleware, audit replay, the wire.

Covers the request/response schemas, the middleware walk (validate →
auth → idempotency → contention → dispatch → audit), the error-family
taxonomy, the append-only audit log as conflict arbiter and as a
deterministic replay tape, and the networked client: latency charged on
the simulated network, lost exchanges retried with the same idempotency
token, partitions evaluated from the operator's region, and the engine
integration (direct transport byte-identical to the in-process plane,
networked transport measurably laggier)."""

from __future__ import annotations

import random

import pytest

from repro.churn.retry import RetryPolicy
from repro.control.plane import ControlPlane
from repro.control.schedule import ControlEvent, ControlEventKind, ControlSchedule
from repro.core.config import FederationConfig
from repro.operator import (
    AuditLog,
    ControlRequest,
    MalformedError,
    NetworkedControlPlayer,
    OperatorApi,
    OperatorClient,
    OperatorConfig,
    PrincipalRegistry,
    replay_audit,
    state_digest,
)
from repro.operator.permissions import ALL_PERMISSIONS, CONTROL_WRITE, HEALTH_REPORT
from repro.simulation.network import GrayFailure
from repro.simulation.queueing import ServerOverloadedError, ServiceTimeModel
from repro.workload import WorkloadConfig, WorkloadEngine
from repro.worldgen.scenario import build_scenario


def _federation_config(**overrides) -> FederationConfig:
    kw = dict(
        device_discovery_cache_ttl_seconds=20.0,
        registration_ttl_seconds=60.0,
        service_times=ServiceTimeModel(default_ms=2.0),
        retry_policy=RetryPolicy.utilization_aware(),
    )
    kw.update(overrides)
    return FederationConfig(**kw)


def _scenario(replicas=4, **config_overrides):
    return build_scenario(
        store_count=1,
        city_rows=5,
        city_cols=5,
        config=_federation_config(**config_overrides),
        seed=33,
        reuse_worlds=True,
        store_replicas=replicas,
    )


def _api(scenario, principal="ops", permissions=ALL_PERMISSIONS, **kwargs) -> OperatorApi:
    principals = PrincipalRegistry()
    principals.register(principal, permissions)
    return OperatorApi(
        federation=scenario.federation, principals=principals, **kwargs
    )


def _request(api, action, server_id=None, value=None, token="t-1", principal="ops", now=0.0):
    payload = {"principal": principal, "action": action, "token": token}
    if server_id is not None:
        payload["server_id"] = server_id
    if value is not None:
        payload["value"] = value
    return api.handle(payload, now=now)


class TestSchemas:
    def test_round_trip(self):
        request = ControlRequest.from_payload(
            {"principal": "ops", "action": "drain", "token": "t", "server_id": "s"}
        )
        assert ControlRequest.from_payload(request.to_payload()) == request

    @pytest.mark.parametrize(
        "payload",
        [
            "not a mapping",
            {"action": "drain", "token": "t", "server_id": "s"},
            {"principal": "", "action": "drain", "token": "t", "server_id": "s"},
            {"principal": "ops", "action": "reboot", "token": "t", "server_id": "s"},
            {"principal": "ops", "action": "drain", "server_id": "s"},
            {"principal": "ops", "action": "drain", "token": "t"},
            {"principal": "ops", "action": "set-weight", "token": "t", "server_id": "s"},
            {"principal": "ops", "action": "set-weight", "token": "t", "server_id": "s", "value": -1},
            {"principal": "ops", "action": "set-weight", "token": "t", "server_id": "s", "value": True},
            {"principal": "ops", "action": "drain", "token": "t", "server_id": "s", "extra": 1},
        ],
    )
    def test_invalid_payloads(self, payload):
        with pytest.raises(MalformedError):
            ControlRequest.from_payload(payload)

    def test_malformed_requests_are_answered_and_audited_not_raised(self):
        api = _api(_scenario())
        response = api.handle({"action": "drain"}, now=1.0)
        assert response.status == "error"
        assert response.error == "malformed"
        assert len(api.audit) == 1
        assert api.audit.records[0].outcome == "rejected"
        assert api.audit.records[0].error == "malformed"


class TestAuthz:
    def test_unknown_principal_rejected_before_any_state_change(self):
        scenario = _scenario()
        server_id = scenario.store_replica_ids(0)[0]
        api = _api(scenario)
        before = scenario.federation.srv_of(server_id)
        response = _request(api, "drain", server_id, principal="mallory")
        assert response.error == "unauthorized"
        assert scenario.federation.srv_of(server_id) == before
        assert api.plane.applied == []

    def test_permission_checked_per_route(self):
        scenario = _scenario()
        server_id = scenario.store_replica_ids(0)[0]
        api = _api(scenario, principal="prober", permissions=(HEALTH_REPORT,))
        assert _request(api, "drain", server_id, principal="prober").error == "unauthorized"
        assert _request(api, "park", server_id, principal="prober").error == "unauthorized"
        assert _request(api, "events", principal="prober").error == "unauthorized"
        ok = _request(api, "health", server_id, value=1, principal="prober")
        assert ok.ok

    def test_unauthorized_is_not_cached_so_a_granted_retry_succeeds(self):
        scenario = _scenario()
        server_id = scenario.store_replica_ids(0)[0]
        api = _api(scenario, principal="junior", permissions=(HEALTH_REPORT,))
        denied = _request(api, "drain", server_id, principal="junior", token="tok")
        assert denied.error == "unauthorized"
        api.principals.register("junior", (HEALTH_REPORT, CONTROL_WRITE))
        granted = _request(api, "drain", server_id, principal="junior", token="tok")
        assert granted.ok
        assert not granted.replayed


class TestRoutes:
    def test_srv_ops_land_and_record_like_the_plane(self):
        scenario = _scenario()
        server_id = scenario.store_replica_ids(0)[0]
        api = _api(scenario)
        drained = _request(api, "drain", server_id, token="t-1", now=5.0)
        assert drained.ok and drained.weight == 0
        undrained = _request(api, "undrain", server_id, token="t-2", now=6.0)
        assert undrained.ok and undrained.weight > 0
        reweighted = _request(api, "set-weight", server_id, value=3, token="t-3")
        assert reweighted.ok and reweighted.weight == 3
        promoted = _request(api, "promote", server_id, value=1, token="t-4")
        assert promoted.ok and promoted.priority == 1
        kinds = [event.kind for event in api.plane.applied]
        assert kinds == ["drain", "undrain", "set-weight", "promote"]
        assert all(event.applied for event in api.plane.applied)

    def test_group_guard_is_a_conflict_recording_live_state(self):
        scenario = _scenario(replicas=2)
        first, second = scenario.store_replica_ids(0)
        api = _api(scenario)
        assert _request(api, "drain", first, token="t-1").ok
        response = _request(api, "drain", second, token="t-2")
        assert response.error == "conflict"
        # The rejected record carries the live SRV state, not (0, 0).
        record = api.plane.applied[-1]
        assert not record.applied
        assert (record.priority, record.weight) == scenario.federation.srv_of(second)

    def test_unknown_server_is_unavailable(self):
        api = _api(_scenario())
        response = _request(api, "drain", "ghost")
        assert response.error == "unavailable"

    def test_park_requires_a_drained_server(self):
        scenario = _scenario()
        server_id = scenario.store_replica_ids(0)[0]
        api = _api(scenario)
        conflict = _request(api, "park", server_id, token="t-1")
        assert conflict.error == "conflict"
        assert not scenario.federation.is_parked(server_id)
        assert _request(api, "drain", server_id, token="t-2").ok
        parked = _request(api, "park", server_id, token="t-3")
        assert parked.ok
        assert scenario.federation.is_parked(server_id)
        assert scenario.federation.registration_for(server_id) is None
        unparked = _request(api, "unpark", server_id, token="t-4")
        assert unparked.ok
        assert not scenario.federation.is_parked(server_id)
        assert scenario.federation.registration_for(server_id) is not None

    def test_pool_ops_on_offline_server_conflict_without_corruption(self):
        scenario = _scenario()
        server_id = scenario.store_replica_ids(0)[0]
        api = _api(scenario)
        scenario.federation.crash_map_server(server_id)
        response = _request(api, "park", server_id)
        assert response.error == "conflict"
        assert not scenario.federation.is_parked(server_id)

    def test_health_route_records_gossip(self):
        scenario = _scenario()
        server_id = scenario.store_replica_ids(0)[0]
        api = _api(scenario)
        response = _request(api, "health", server_id, value=1, now=42.0)
        assert response.ok
        assert api.health_board[server_id] == (42.0, 1)

    def test_events_route_returns_the_audit_tail(self):
        scenario = _scenario()
        server_id = scenario.store_replica_ids(0)[0]
        api = _api(scenario)
        _request(api, "drain", server_id, token="t-1")
        _request(api, "undrain", server_id, token="t-2")
        response = _request(api, "events", value=2, token="t-3")
        assert response.ok
        assert [event["action"] for event in response.events] == ["drain", "undrain"]
        assert [event["seq"] for event in response.events] == [1, 2]


class _FlakyQueue:
    """Stub ServerQueue: overloads for the first N admissions."""

    def __init__(self, reject_first: int):
        self.reject_first = reject_first
        self.admitted: list[str] = []

    def process(self, kind: str) -> float:
        if self.reject_first > 0:
            self.reject_first -= 1
            raise ServerOverloadedError("full")
        self.admitted.append(kind)
        return 0.0


class TestIdempotency:
    def test_replay_does_not_double_apply(self):
        scenario = _scenario()
        server_id = scenario.store_replica_ids(0)[0]
        api = _api(scenario)
        first = _request(api, "set-weight", server_id, value=3, token="tok")
        replay = _request(api, "set-weight", server_id, value=3, token="tok")
        assert first.ok and replay.ok
        assert replay.replayed and not first.replayed
        assert replay.seq == first.seq
        # Applied exactly once; the replay is audited separately.
        assert len(api.plane.applied) == 1
        assert [r.outcome for r in api.audit.records] == ["applied", "replayed"]

    def test_conflicts_are_terminal_and_replayed(self):
        scenario = _scenario(replicas=2)
        first, second = scenario.store_replica_ids(0)
        api = _api(scenario)
        _request(api, "drain", first, token="t-1")
        lost = _request(api, "drain", second, token="t-2")
        assert lost.error == "conflict"
        # Even after the state changes, the retry replays the conflict
        # instead of racing it.
        _request(api, "undrain", first, token="t-3")
        retried = _request(api, "drain", second, token="t-2")
        assert retried.error == "conflict"
        assert retried.replayed

    def test_queue_overload_is_unavailable_and_not_cached(self):
        scenario = _scenario()
        server_id = scenario.store_replica_ids(0)[0]
        api = _api(scenario, contend_for_queue=True)
        queue = _FlakyQueue(reject_first=1)
        scenario.federation.servers[server_id].queue = queue
        busy = _request(api, "drain", server_id, token="tok")
        assert busy.error == "unavailable"
        retried = _request(api, "drain", server_id, token="tok")
        assert retried.ok
        assert not retried.replayed
        assert queue.admitted == ["control"]


class TestAuditArbitration:
    def test_seq_is_monotonic_across_two_consoles_sharing_one_log(self):
        scenario = _scenario(replicas=2)
        first, second = scenario.store_replica_ids(0)
        log = AuditLog()
        plane = ControlPlane(scenario.federation)
        alice_reg = PrincipalRegistry()
        alice_reg.register("alice", ALL_PERMISSIONS)
        bob_reg = PrincipalRegistry()
        bob_reg.register("bob", ALL_PERMISSIONS)
        alice = OperatorApi(
            federation=scenario.federation, principals=alice_reg, audit=log, plane=plane
        )
        bob = OperatorApi(
            federation=scenario.federation, principals=bob_reg, audit=log, plane=plane
        )
        won = _request(alice, "drain", first, principal="alice", token="a-1")
        lost = _request(bob, "drain", second, principal="bob", token="b-1")
        # The shared log's sequence arbitrates: first writer wins, the
        # loser's record shows the conflict that resolved it.
        assert won.ok and lost.error == "conflict"
        assert won.seq < lost.seq
        assert [r.outcome for r in log.records] == ["applied", "rejected"]
        assert log.records[1].principal == "bob"
        # Exactly one of the group's replicas was drained; the loser kept
        # its positive weight.
        weights = [scenario.federation.srv_of(sid)[1] for sid in (first, second)]
        assert weights[0] == 0 and weights[1] > 0


class TestReplayDeterminism:
    """Satellite: replaying the audit log through a fresh API reproduces
    the identical final SRV state (and state digest)."""

    def _drive(self, api):
        scenario_ids = sorted(api.federation.servers)
        a, b = scenario_ids[0], scenario_ids[1]
        _request(api, "drain", a, token="t-1", now=10.0)
        _request(api, "set-weight", b, value=7, token="t-2", now=11.0)
        _request(api, "promote", b, value=1, token="t-3", now=12.0)
        _request(api, "drain", a, token="t-1", now=13.0)  # replayed
        _request(api, "drain", "ghost", token="t-4", now=14.0)  # unavailable
        _request(api, "park", a, token="t-5", now=15.0)
        _request(api, "health", b, value=1, token="t-6", now=16.0)
        _request(api, "undrain", a, token="t-7", now=17.0)  # parked, still ok
        _request(api, "events", value=3, token="t-8", now=18.0)

    def test_replay_reproduces_state_and_digest(self):
        original = _api(_scenario())
        self._drive(original)
        digest = state_digest(original.federation)

        fresh = _api(_scenario())
        assert state_digest(fresh.federation) != digest
        count = replay_audit(original.audit.records, fresh)
        assert count == len(original.audit) - 1  # events route skipped
        assert state_digest(fresh.federation) == digest
        # The replayed log tells the same story, outcome for outcome.
        originals = [(r.action, r.outcome, r.error) for r in original.audit.records if r.action != "events"]
        replays = [(r.action, r.outcome, r.error) for r in fresh.audit.records]
        assert replays == originals

    def test_state_digest_distinguishes_operator_visible_state(self):
        scenario = _scenario()
        server_id = scenario.store_replica_ids(0)[0]
        before = state_digest(scenario.federation)
        scenario.federation.set_srv(server_id, weight=0)
        after_drain = state_digest(scenario.federation)
        assert after_drain != before
        scenario.federation.park_map_server(server_id)
        assert state_digest(scenario.federation) not in (before, after_drain)


class TestNetworkedClient:
    def _client(self, scenario, **kwargs) -> OperatorClient:
        api = _api(scenario)
        defaults = dict(
            transport="network",
            endpoint_id=scenario.federation.discovery_authority_id,
            timeout_ms=400.0,
            jitter_rng=random.Random(99),
        )
        defaults.update(kwargs)
        return OperatorClient(api=api, principal="ops", **defaults)

    def test_direct_transport_charges_nothing(self):
        scenario = _scenario()
        server_id = scenario.store_replica_ids(0)[0]
        client = self._client(scenario, transport="direct", jitter_rng=None)
        network = scenario.federation.network
        before = network.clock.now()
        result = client.request("drain", server_id)
        assert result.response.ok and result.arrived
        assert network.clock.now() == before
        assert "control.request" not in network.stats.messages_by_kind

    def test_network_transport_pays_the_control_hop(self):
        scenario = _scenario()
        server_id = scenario.store_replica_ids(0)[0]
        client = self._client(scenario)
        network = scenario.federation.network
        before = network.clock.now()
        result = client.request("drain", server_id)
        assert result.response.ok
        elapsed_ms = (network.clock.now() - before) * 1000.0
        assert elapsed_ms == pytest.approx(2.0 * network.latency.operator_to_control_ms)
        assert network.stats.messages_by_kind["control.request"] == 1
        assert result.latency_ms == pytest.approx(elapsed_ms)

    def test_device_jitter_stream_is_restored_around_the_exchange(self):
        scenario = _scenario()
        server_id = scenario.store_replica_ids(0)[0]
        client = self._client(scenario)
        network = scenario.federation.network
        sentinel = random.Random(1234)
        network.set_jitter_stream(sentinel)
        client.request("drain", server_id)
        assert network.current_jitter_stream() is sentinel

    def test_unreachable_endpoint_times_out_then_a_token_retry_lands_once(self):
        scenario = _scenario()
        server_id = scenario.store_replica_ids(0)[0]
        client = self._client(scenario)
        network = scenario.federation.network
        faults = network.fault_state()
        faults.block(client.endpoint_id)
        before = network.clock.now()
        token = client.next_token()
        lost = client.request("drain", server_id, token=token)
        assert not lost.arrived
        assert lost.response.error == "unavailable"
        # The full patience was charged, and the API never saw it.
        assert (network.clock.now() - before) * 1000.0 == pytest.approx(client.timeout_ms)
        assert len(client.api.audit) == 0
        faults.unblock(client.endpoint_id)
        landed = client.request("drain", server_id, token=token)
        assert landed.arrived and landed.response.ok
        assert [r.outcome for r in client.api.audit.records] == ["applied"]
        assert client.counters["unreachable"] == 1

    def test_partition_is_evaluated_from_the_operators_region(self):
        scenario = _scenario()
        server_id = scenario.store_replica_ids(0)[0]
        client = self._client(scenario, region=1)
        network = scenario.federation.network
        faults = network.fault_state()
        faults.active_region = 0
        faults.block(client.endpoint_id, regions=(1,))
        cut_off = client.request("drain", server_id)
        assert not cut_off.arrived
        # The fleet's region context is restored afterwards.
        assert faults.active_region == 0
        other_side = self._client(scenario, region=0)
        other_side.api = client.api
        assert other_side.request("drain", server_id).arrived

    def test_lossy_control_hop_retransmits_and_sometimes_times_out(self):
        scenario = _scenario()
        server_id = scenario.store_replica_ids(0)[0]
        client = self._client(scenario, jitter_rng=random.Random(7))
        network = scenario.federation.network
        faults = network.fault_state()
        faults.set_gray(
            client.endpoint_id, GrayFailure(loss_probability=0.9)
        )
        outcomes = [client.request("health", server_id, value=1).arrived for _ in range(12)]
        assert network.stats.retransmissions > 0
        assert client.counters["timeouts"] > 0
        assert client.counters["timeouts"] == outcomes.count(False)


class _EngineScenarios:
    STEP_SECONDS = 20.0

    def _run(self, operator=None, clients=12, steps=10, seed_scenario=None):
        scenario = seed_scenario or _scenario()
        drained = scenario.store_replica_ids(0)[0]
        tape = ControlSchedule.from_events(
            [ControlEvent(2 * self.STEP_SECONDS, ControlEventKind.DRAIN, drained)]
        )
        engine = WorkloadEngine(
            scenario,
            WorkloadConfig(
                clients=clients,
                steps=steps,
                seed=7,
                step_seconds=self.STEP_SECONDS,
                control=tape,
                operator=operator,
            ),
        )
        return engine, engine.run()


class TestEngineIntegration(_EngineScenarios):
    def test_direct_transport_is_byte_identical_modulo_operator_keys(self):
        _, plain = self._run(operator=None)
        engine, routed = self._run(operator=OperatorConfig(transport="direct"))
        plain_snapshot = plain.snapshot()
        routed_snapshot = {
            key: value
            for key, value in routed.snapshot().items()
            if not key.startswith("operator.")
        }
        assert routed_snapshot == plain_snapshot
        # And the operator keys exist, reporting the tape's trip through
        # the API.
        stats = routed.operator_stats
        assert stats["requests"] == stats["delivered"] == 1.0
        assert stats["audit_records"] == 1.0
        # Direct lag is round quantization only (the tape instant waits
        # for the next CONTROL event), never a full extra round.
        assert 0.0 <= stats["delivery_lag_mean"] < self.STEP_SECONDS
        assert isinstance(engine.control_plane, NetworkedControlPlayer)

    def test_networked_transport_measurably_lags_the_tape(self):
        _, direct = self._run(operator=OperatorConfig(transport="direct"))
        engine, report = self._run(operator=OperatorConfig(transport="network"))
        stats = report.operator_stats
        assert stats["delivered"] >= 1.0
        # The control hop's RTT lands on top of the direct baseline's
        # round-quantization lag.
        assert stats["delivery_lag_mean"] > direct.operator_stats["delivery_lag_mean"]
        assert stats["tape_pending"] == 0.0
        assert report.control_stats["events_applied"] == 1.0
        # A networked drain is still not an outage.
        assert report.failed_requests == 0
        network = engine.scenario.federation.network
        assert network.stats.messages_by_kind.get("control.request", 0) >= 1

    def test_networked_runs_are_deterministic(self):
        def snapshot():
            _, report = self._run(operator=OperatorConfig(transport="network"))
            return report.snapshot()

        assert snapshot() == snapshot()

    def test_operator_free_runs_carry_no_operator_keys(self):
        _, report = self._run(operator=None)
        assert report.operator_stats == {}
        assert not any(key.startswith("operator.") for key in report.snapshot())
