"""Unit tests for the Federation bootstrap and OpenFlameClient wiring."""

from __future__ import annotations

import pytest

from repro.core.config import FederationConfig
from repro.core.errors import FederationConfigError
from repro.core.federation import Federation
from repro.geometry.point import LatLng
from repro.mapserver.auth import Credential
from repro.mapserver.policy import AccessPolicy, ServiceName
from repro.worldgen.indoor import generate_store
from repro.worldgen.outdoor import generate_city

ANCHOR = LatLng(40.44, -79.96)


@pytest.fixture()
def federation() -> Federation:
    return Federation()


class TestFederationLifecycle:
    def test_add_map_server_registers_discovery_records(self, federation: Federation):
        city = generate_city(rows=3, cols=3, seed=1)
        server = federation.add_map_server("city.example", city.map_data, is_world_provider=True)
        assert federation.server_count == 1
        assert federation.world_provider is server
        registration = federation.registration_for("city.example")
        assert registration is not None
        assert registration.record_count > 0
        assert federation.registry.total_records == registration.record_count

    def test_duplicate_server_id_rejected(self, federation: Federation):
        city = generate_city(rows=3, cols=3, seed=1)
        federation.add_map_server("dup.example", city.map_data)
        other = generate_city(rows=3, cols=3, seed=2)
        with pytest.raises(FederationConfigError):
            federation.add_map_server("dup.example", other.map_data)

    def test_remove_map_server_withdraws_records(self, federation: Federation):
        store = generate_store("leaving.example", ANCHOR, seed=4)
        federation.add_map_server("leaving.example", store.map_data)
        assert federation.registry.total_records > 0
        federation.remove_map_server("leaving.example")
        assert federation.server_count == 0
        assert federation.registry.total_records == 0
        # Once deregistered, discovery no longer returns the server.
        client = federation.client()
        result = client.discover(store.entrance, uncertainty_meters=50.0)
        assert "leaving.example" not in result.server_ids

    def test_remove_unknown_server_rejected(self, federation: Federation):
        with pytest.raises(FederationConfigError):
            federation.remove_map_server("ghost.example")

    def test_remove_world_provider_clears_pointer(self, federation: Federation):
        city = generate_city(rows=3, cols=3, seed=1)
        federation.add_map_server("city.example", city.map_data, is_world_provider=True)
        federation.remove_map_server("city.example")
        assert federation.world_provider is None

    def test_custom_policy_attached(self, federation: Federation):
        store = generate_store("locked.example", ANCHOR, seed=5)
        policy = AccessPolicy()
        policy.restrict_to_domain(ServiceName.SEARCH, "owner.com")
        server = federation.add_map_server("locked.example", store.map_data, policy=policy)
        assert server.policy is policy

    def test_custom_config_respected(self):
        config = FederationConfig(discovery_suffix="loc.custom.example", discovery_level=16)
        federation = Federation(config=config)
        assert federation.naming.suffix == "loc.custom.example"
        context = federation.build_context()
        assert context.discoverer.query_level == 16

    def test_new_server_discoverable_immediately(self, federation: Federation):
        client = federation.client()
        store = generate_store("popup.example", ANCHOR, seed=6)
        before = client.discover(store.entrance, uncertainty_meters=50.0)
        assert "popup.example" not in before.server_ids
        federation.add_map_server("popup.example", store.map_data)
        # The same client instance sees the new server (subject only to any
        # negative-cache TTL, which we skip past).
        federation.network.clock.advance(120.0)
        after = client.discover(store.entrance, uncertainty_meters=50.0)
        assert "popup.example" in after.server_ids


class TestClientWiring:
    def test_client_shares_network_with_federation(self, federation: Federation):
        city = generate_city(rows=3, cols=3, seed=1)
        federation.add_map_server("city.example", city.map_data, is_world_provider=True)
        client = federation.client()
        before = federation.network.stats.messages_sent
        client.discover(city.bounds.center, uncertainty_meters=40.0)
        assert federation.network.stats.messages_sent > before
        assert client.network_messages == federation.network.stats.messages_sent

    def test_client_credential_passed_to_context(self, federation: Federation):
        credential = Credential(user_id="alice", email="alice@campus.edu")
        client = federation.client(credential)
        assert client.context.credential.user_id == "alice"

    def test_world_provider_used_by_geocoder(self, federation: Federation):
        city = generate_city(rows=3, cols=3, seed=1)
        federation.add_map_server("city.example", city.map_data, is_world_provider=True)
        client = federation.client()
        assert client.geocoder.world_provider is federation.world_provider

    def test_reset_network_stats(self, federation: Federation):
        city = generate_city(rows=3, cols=3, seed=1)
        federation.add_map_server("city.example", city.map_data)
        client = federation.client()
        client.discover(city.bounds.center, uncertainty_meters=40.0)
        federation.reset_network_stats()
        assert federation.network.stats.messages_sent == 0

    def test_map_servers_default_to_contraction_routing(self, federation: Federation):
        city = generate_city(rows=3, cols=3, seed=1)
        server = federation.add_map_server("city.example", city.map_data)
        assert server.routing_algorithm == "contraction"
        assert server.routing_service.algorithm == "contraction"

    def test_resolver_pools_share_namespace_with_own_caches(self, federation: Federation):
        city = generate_city(rows=3, cols=3, seed=1)
        federation.add_map_server("city.example", city.map_data)
        pools = federation.resolver_pool(3)
        assert len(pools) == 3
        assert pools[0] is federation.stub_resolver  # pool 0 = default resolver
        assert pools[1].recursive is not pools[2].recursive
        # Asking again returns the same pools (no cache state is thrown away).
        assert federation.resolver_pool(2) == pools[:2]
        # Both pools resolve over the same namespace.
        client_a = federation.client(stub_resolver=pools[1])
        client_b = federation.client(stub_resolver=pools[2])
        location = city.bounds.center
        found_a = client_a.discover(location, uncertainty_meters=40.0)
        found_b = client_b.discover(location, uncertainty_meters=40.0)
        assert found_a.server_ids == found_b.server_ids
        # Each pool warmed its own cache, not the other's.
        assert pools[1].recursive.cache.stats.misses > 0
        assert pools[2].recursive.cache.stats.misses > 0
