"""Tests for RFC 2782 replica load balancing and pool-shared health.

Covers the weighted-selection mechanics (distribution, priority tiers,
zero-weight records), the SRV priority/weight plumbing from
``add_replica_group`` through the registry into discovery answers, the
endpoint-shadow guard, the shared-health gossip layer (board TTLs and the
one-timeout-spares-the-pool end-to-end property), the ``replica_load_cv``
balance metric, and the long commuter traces that outlive registration TTLs.
"""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.churn import (
    FIRST_HEALTHY,
    WEIGHTED,
    ReplicaGroup,
    ReplicaHealth,
    RetryPolicy,
    SharedHealthBoard,
    rfc2782_order,
)
from repro.core.config import FederationConfig
from repro.core.errors import FederationConfigError
from repro.core.federation import Federation
from repro.dns.records import SrvData
from repro.geometry.point import LatLng
from repro.simulation.clock import SimulatedClock
from repro.simulation.queueing import ServiceTimeModel, load_cv
from repro.workload import CommuterTrace, WorkloadConfig, WorkloadEngine
from repro.worldgen.indoor import generate_store
from repro.worldgen.scenario import build_scenario

ANCHOR = LatLng(40.4410, -79.9570)


# ----------------------------------------------------------------------
# RFC 2782 ordering mechanics
# ----------------------------------------------------------------------
class TestRfc2782Order:
    def test_weighted_distribution_three_to_one(self):
        """Weights 3:1 put the heavy replica first ~75% of 10k seeded draws."""
        srv = {"heavy": (0, 3), "light": (0, 1)}
        rng = random.Random(42)
        first = Counter(rfc2782_order(["heavy", "light"], srv, rng)[0] for _ in range(10_000))
        assert first["heavy"] + first["light"] == 10_000
        assert first["heavy"] / 10_000 == pytest.approx(0.75, abs=0.02)

    def test_every_order_is_a_permutation(self):
        srv = {"a": (0, 5), "b": (0, 2), "c": (0, 1)}
        rng = random.Random(7)
        for _ in range(100):
            assert sorted(rfc2782_order(["a", "b", "c"], srv, rng)) == ["a", "b", "c"]

    def test_priority_tiers_are_strict(self):
        """Every tier-0 candidate precedes every tier-1 candidate, always."""
        srv = {"p0a": (0, 1), "p0b": (0, 100), "p1a": (1, 1000), "p1b": (1, 1)}
        rng = random.Random(3)
        for _ in range(500):
            order = rfc2782_order(["p1a", "p0a", "p1b", "p0b"], srv, rng)
            assert {order[0], order[1]} == {"p0a", "p0b"}
            assert {order[2], order[3]} == {"p1a", "p1b"}

    def test_zero_weight_records_are_last_resort(self):
        """A zero-weight record is never picked while weighted ones exist,
        but stays in the chain (RFC 2782's 'no chance unless nothing else')."""
        srv = {"w": (0, 1), "z1": (0, 0), "z2": (0, 0)}
        rng = random.Random(5)
        for _ in range(200):
            order = rfc2782_order(["z1", "w", "z2"], srv, rng)
            assert order[0] == "w"
            assert order[1:] == ["z1", "z2"]  # deterministic id order

    def test_unknown_ids_default_to_tier0_weight0(self):
        rng = random.Random(1)
        assert rfc2782_order(["x", "y"], {}, rng) == ["x", "y"]

    def test_deterministic_per_stream(self):
        srv = {"a": (0, 1), "b": (0, 1), "c": (0, 1)}
        orders = [rfc2782_order(["a", "b", "c"], srv, random.Random(9)) for _ in range(3)]
        assert orders[0] == orders[1] == orders[2]


class TestReplicaGroupWeights:
    def test_defaults_are_equal_positive_weights(self):
        group = ReplicaGroup(group_id="g", server_ids=("r0.g", "r1.g"))
        assert group.weights == (1, 1)
        assert group.priorities == (0, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ReplicaGroup(group_id="g", server_ids=("r0.g", "r1.g"), weights=(1,))
        with pytest.raises(ValueError):
            ReplicaGroup(group_id="g", server_ids=("r0.g", "r1.g"), weights=(-1, 1))
        with pytest.raises(ValueError):
            ReplicaGroup(group_id="g", server_ids=("r0.g", "r1.g"), weights=(0, 0))
        with pytest.raises(ValueError):
            ReplicaGroup(group_id="g", server_ids=("r0.g", "r0.g"))

    def test_weight_and_priority_lookup(self):
        group = ReplicaGroup(
            group_id="g", server_ids=("r0.g", "r1.g"), weights=(3, 1), priorities=(0, 1)
        )
        assert group.weight_of("r1.g") == 1
        assert group.priority_of("r1.g") == 1


# ----------------------------------------------------------------------
# SRV emission and the shadow guard
# ----------------------------------------------------------------------
class TestSrvEmission:
    def test_replica_records_carry_weights(self):
        federation = Federation()
        store = generate_store("shop.example", ANCHOR, seed=4)
        group = federation.add_replica_group(
            "shop.example", store.map_data, replica_count=2, weights=(3, 1)
        )
        registration = federation.registration_for("r0.shop.example")
        assert registration is not None and registration.weight == 3
        by_target = {}
        for cell in registration.cells:
            for record in federation.registry.records_for_cell(cell):
                srv = SrvData.decode(record.data)
                by_target[srv.target] = (srv.priority, srv.weight)
        assert by_target["r0.shop.example"] == (0, 3)
        assert by_target["r1.shop.example"] == (0, 1)
        assert group.weights == (3, 1)

    def test_weights_survive_crash_and_revival(self):
        federation = Federation()
        store = generate_store("shop.example", ANCHOR, seed=4)
        federation.add_replica_group(
            "shop.example", store.map_data, replica_count=2, weights=(3, 1)
        )
        federation.crash_map_server("r0.shop.example")
        federation.expire_registration("r0.shop.example")
        federation.revive_map_server("r0.shop.example")
        registration = federation.registration_for("r0.shop.example")
        assert registration is not None and registration.weight == 3

    def test_srv_data_validation(self):
        with pytest.raises(ValueError):
            SrvData(target="s", weight=-1)
        with pytest.raises(ValueError):
            SrvData(target="s", priority=-1)
        with pytest.raises(ValueError):
            SrvData(target="")
        assert SrvData(target="s", port=80).endpoint == ("s", 80)

    def test_mismatched_weight_count_rejected(self):
        federation = Federation()
        store = generate_store("shop.example", ANCHOR, seed=4)
        with pytest.raises(FederationConfigError):
            federation.add_replica_group(
                "shop.example", store.map_data, replica_count=3, weights=(1, 1)
            )

    def test_duplicate_endpoint_cannot_shadow(self):
        """Two registrations for one host:port at a shared spatial name are
        a deployment error, not a bigger replica group."""
        federation = Federation()
        store = generate_store("shop.example", ANCHOR, seed=4)
        federation.add_map_server("shop.example", store.map_data)
        registration = federation.registration_for("shop.example")
        assert registration is not None
        with pytest.raises(ValueError, match="shadow"):
            # A second registration advertising the same host:port at the
            # shared names must be refused, not published as a shadow...
            federation.registry.register_covering(
                "shop-clone.example", list(registration.cells), target="shop.example"
            )
        # ...while a genuinely different endpoint (another port on the same
        # host) registers fine — that really is a second backend.
        federation.registry.register_covering(
            "shop-alt.example", list(registration.cells), target="shop.example", port=8443
        )


# ----------------------------------------------------------------------
# Shared health board
# ----------------------------------------------------------------------
class TestSharedHealthBoard:
    def test_entry_expires_after_ttl(self):
        clock = SimulatedClock()
        board = SharedHealthBoard(clock=clock, ttl_seconds=10.0)
        board.report_failure("r0")
        assert board.is_suspect("r0")
        clock.advance(11.0)
        assert not board.is_suspect("r0")

    def test_recovery_clears_entry_for_whole_pool(self):
        clock = SimulatedClock()
        board = SharedHealthBoard(clock=clock, ttl_seconds=60.0)
        board.report_failure("r0")
        board.report_recovery("r0")
        assert not board.is_suspect("r0")
        assert board.recoveries == 1

    def test_epoch_increments_per_outage(self):
        clock = SimulatedClock()
        board = SharedHealthBoard(clock=clock, ttl_seconds=5.0)
        board.report_failure("r0")
        assert board.epoch("r0") == 1
        board.report_failure("r0")  # same outage: refreshes, same epoch
        assert board.epoch("r0") == 1
        clock.advance(6.0)
        board.report_failure("r0")  # new outage after expiry
        assert board.epoch("r0") == 2

    def test_overload_sheds_are_not_gossiped_as_dead(self):
        """A shed request on a live-but-busy replica demotes it for THIS
        device only; the pool board records dead-server timeouts exclusively,
        so backpressure never reads as pool-wide death (or pollutes the
        time-to-detect accounting)."""
        clock = SimulatedClock()
        board = SharedHealthBoard(clock=clock, ttl_seconds=30.0)
        health = ReplicaHealth(clock=clock, cooldown_seconds=30.0, board=board)
        health.record_failure("busy")  # overload shed: dead=False default
        assert not health.is_healthy("busy")  # own demotion holds
        assert not board.is_suspect("busy")  # but no gossip
        health.record_failure("gone", dead=True)  # real timeout
        assert board.is_suspect("gone")

    def test_recovery_racing_ttl_expiry_counts_once_at_most(self):
        """A recovery reported just before the TTL lapses counts; one
        reported after the entry already lapsed must not — the entry expired
        on its own and there is nothing left to recover."""
        clock = SimulatedClock()
        board = SharedHealthBoard(clock=clock, ttl_seconds=10.0)
        board.report_failure("r0")
        clock.advance(9.9)
        board.report_recovery("r0")  # races the expiry, wins
        assert board.recoveries == 1
        board.report_failure("r0")
        clock.advance(10.1)  # entry lapses silently (nobody consulted it)
        board.report_recovery("r0")  # loses the race: no recovery happened
        assert board.recoveries == 1
        assert not board.is_suspect("r0")

    def test_epoch_is_monotone_across_revive_cycles(self):
        """Epochs only ever grow, through any sequence of outage / recovery /
        expiry cycles — a device can always order two pieces of news."""
        clock = SimulatedClock()
        board = SharedHealthBoard(clock=clock, ttl_seconds=5.0)
        observed = []
        for cycle in range(4):
            board.report_failure("r0")
            observed.append(board.epoch("r0"))
            if cycle % 2 == 0:
                board.report_recovery("r0")  # explicit recovery
            else:
                clock.advance(6.0)  # silent TTL expiry
                assert not board.is_suspect("r0")
        assert observed == sorted(observed)
        assert len(set(observed)) == len(observed)
        assert board.epoch("r0") == 4

    def test_suspected_at_tracks_the_live_entry_only(self):
        clock = SimulatedClock()
        board = SharedHealthBoard(clock=clock, ttl_seconds=10.0)
        assert board.suspected_at("r0") is None
        board.report_failure("r0")
        assert board.suspected_at("r0") == clock.now()
        clock.advance(4.0)
        board.report_failure("r0")  # renewal re-stamps the entry
        assert board.suspected_at("r0") == clock.now()
        clock.advance(11.0)
        assert board.suspected_at("r0") is None  # lapsed with the entry

    def test_shared_health_toggling_mid_run_splits_cleanly(self):
        """Devices built while ``shared_health`` gossip is on share the
        board; devices built without it neither read nor write it — a
        mid-run mix of both configurations never cross-contaminates."""
        clock = SimulatedClock()
        board = SharedHealthBoard(clock=clock, ttl_seconds=30.0)
        gossiping = ReplicaHealth(clock=clock, cooldown_seconds=30.0, board=board)
        solo = ReplicaHealth(clock=clock, cooldown_seconds=30.0, board=None)
        gossiping.record_failure("r0", dead=True)
        assert board.is_suspect("r0")
        # The solo device is deaf to the board...
        assert solo.is_healthy("r0")
        # ...and mute toward it: its own timeout posts nothing new.
        epoch_before = board.epoch("r1")
        solo.record_failure("r1", dead=True)
        assert not board.is_suspect("r1")
        assert board.epoch("r1") == epoch_before
        # A solo success must not clear the pool's entry either.
        solo.record_success("r0")
        assert board.is_suspect("r0")
        # A late joiner attached to the board inherits the pool view.
        joiner = ReplicaHealth(clock=clock, cooldown_seconds=30.0, board=board)
        assert not joiner.is_healthy("r0")

    def test_member_health_consults_board(self):
        clock = SimulatedClock()
        board = SharedHealthBoard(clock=clock, ttl_seconds=30.0)
        reporter = ReplicaHealth(clock=clock, cooldown_seconds=30.0, board=board)
        listener = ReplicaHealth(clock=clock, cooldown_seconds=30.0, board=board)
        reporter.record_failure("r0", dead=True)
        # The listener never saw r0 fail, yet holds it unhealthy via gossip.
        assert not listener.is_healthy("r0")
        # The gossip win is classified exactly once per outage epoch.
        from repro.churn.health import KNOWN_DEAD, SHARED_NEWS

        assert listener.consult("r0") == SHARED_NEWS
        assert listener.consult("r0") == KNOWN_DEAD


class TestOwnSuccessOverridesStaleSuspicion:
    """Regression: first-hand success must outrank stale pool gossip.

    Under the engine's concurrent-round clock a pool mate's dead-server
    timeout can be *posted* after this device's success yet stamped at an
    earlier-or-equal simulated instant.  The board consult in ``sort_key`` /
    ``consult`` / ``is_healthy`` used to demote the replica anyway; now a
    device whose own last success is at least as fresh as the board entry
    keeps trusting its own evidence.
    """

    def _pair(self, ttl=30.0):
        clock = SimulatedClock()
        board = SharedHealthBoard(clock=clock, ttl_seconds=ttl)
        device = ReplicaHealth(clock=clock, cooldown_seconds=30.0, board=board)
        mate = ReplicaHealth(clock=clock, cooldown_seconds=30.0, board=board)
        return clock, board, device, mate

    def test_fresh_success_overrides_equal_or_older_board_entry(self):
        clock, board, device, mate = self._pair()
        clock.advance(10.0)
        device.record_success("r0")
        # The mate's timeout lands at the same simulated instant (the
        # concurrent-round race): the entry is not fresher than the success.
        mate.record_failure("r0", dead=True)
        assert board.is_suspect("r0")  # pool-wide view: suspect...
        assert device.is_healthy("r0")  # ...but not for this device
        assert device.consult("r0") == "healthy"
        assert device.sort_key("r0")[0] == 0  # sorts with the healthy
        # The mate itself has no such evidence and honours the board.
        assert not mate.is_healthy("r0")

    def test_board_news_fresher_than_success_still_wins(self):
        clock, board, device, mate = self._pair()
        device.record_success("r0")
        clock.advance(1.0)
        mate.record_failure("r0", dead=True)  # strictly newer than success
        assert not device.is_healthy("r0")

    def test_renewed_entry_after_override_lands_as_shared_news(self):
        """An override must not acknowledge the epoch: when the entry is
        re-posted *after* the success, it is genuine news — and counts as a
        zero-cost shared detection exactly once."""
        from repro.churn.health import KNOWN_DEAD, SHARED_NEWS

        clock, board, device, mate = self._pair()
        clock.advance(5.0)
        device.record_success("r0")
        mate.record_failure("r0", dead=True)  # same instant: overridden
        assert device.consult("r0") == "healthy"
        clock.advance(2.0)
        mate.record_failure("r0", dead=True)  # renewal, now fresher
        assert device.consult("r0") == SHARED_NEWS
        assert device.consult("r0") == KNOWN_DEAD

    def test_own_failure_discards_the_success_evidence(self):
        clock, board, device, _ = self._pair()
        clock.advance(10.0)
        device.record_success("r0")
        device.record_failure("r0")  # newer first-hand failure
        clock.advance(31.0)  # own cooldown lapses...
        board.report_failure("r0")  # ...but fresh board news arrives
        # The stale success from t=10 must not override the t=41 entry.
        assert not device.is_healthy("r0")


class TestSharedHealthEndToEnd:
    def build(self, shared: bool) -> tuple[Federation, object]:
        config = FederationConfig(
            retry_policy=RetryPolicy.exponential(base_delay_ms=5.0, dead_server_timeout_ms=150.0),
            shared_health=shared,
            shared_health_ttl_seconds=45.0,
        )
        federation = Federation(config=config)
        store = generate_store("shop.example", ANCHOR, seed=4)
        federation.add_replica_group("shop.example", store.map_data, replica_count=2)
        return federation, store

    def crash_first_pick(self, federation: Federation) -> str:
        probe = federation.client(selection_seed=1)
        victim = probe.context.targets(["r0.shop.example", "r1.shop.example"])[0].candidate_ids[0]
        federation.crash_map_server(victim)
        return victim

    def pool_timeouts(self, federation: Federation, store, devices: int) -> tuple[int, list]:
        clients = [federation.client(selection_seed=1 + i) for i in range(devices)]
        for client in clients:
            client.search("milk", near=store.entrance, radius_meters=150.0)
        timeouts = federation.network.stats.messages_by_kind.get("mapserver.timeout", 0)
        return timeouts, clients

    def test_one_timeout_spares_the_pool(self):
        """With shared health, one device's dead-server timeout teaches the
        whole resolver pool; without it, every unlucky device pays its own."""
        shared_fed, store = self.build(shared=True)
        self.crash_first_pick(shared_fed)
        shared_timeouts, shared_clients = self.pool_timeouts(shared_fed, store, devices=8)

        solo_fed, store = self.build(shared=False)
        self.crash_first_pick(solo_fed)
        solo_timeouts, _ = self.pool_timeouts(solo_fed, store, devices=8)

        assert shared_timeouts == 1
        assert solo_timeouts > shared_timeouts

        own = sum(c.context.failover.dead_detections_own for c in shared_clients)
        gossiped = sum(c.context.failover.dead_detections_shared for c in shared_clients)
        assert own == 1
        assert gossiped >= 1
        # Mean time-to-detect across the pool is far below one timeout.
        detections = [
            ms for c in shared_clients for ms in c.context.failover.detect_ms
        ]
        assert sum(detections) / len(detections) < 150.0

    def test_board_ttl_lets_revived_replica_win_traffic_back(self):
        federation, store = self.build(shared=True)
        victim = self.crash_first_pick(federation)
        self.pool_timeouts(federation, store, devices=2)
        board = federation.shared_health_board()
        assert board.is_suspect(victim)
        federation.revive_map_server(victim)
        federation.network.clock.advance(46.0)  # past the 45s entry TTL
        assert not board.is_suspect(victim)
        late = federation.client(selection_seed=99)
        result = late.search("milk", near=store.entrance, radius_meters=150.0)
        assert len(result) > 0
        assert late.context.failover.stale_attempts == 0


# ----------------------------------------------------------------------
# Balance metric and engine integration
# ----------------------------------------------------------------------
class TestLoadCv:
    def test_uniform_is_zero(self):
        assert load_cv([0.2, 0.2, 0.2, 0.2]) == 0.0

    def test_funnel_is_sqrt3(self):
        assert load_cv([0.8, 0.0, 0.0, 0.0]) == pytest.approx(3**0.5)

    def test_degenerate_inputs(self):
        assert load_cv([]) == 0.0
        assert load_cv([0.5]) == 0.0
        assert load_cv([0.0, 0.0]) == 0.0


class TestEngineBalance:
    def engine(self, mode: str) -> WorkloadEngine:
        config = FederationConfig(
            service_times=ServiceTimeModel(default_ms=2.0),
            retry_policy=RetryPolicy.utilization_aware(),
            replica_selection=mode,
        )
        scenario = build_scenario(
            store_count=1, city_rows=4, city_cols=4, config=config, seed=21,
            store_replicas=4, reuse_worlds=True,
        )
        return WorkloadEngine(
            scenario, WorkloadConfig(clients=16, steps=4, seed=3, step_seconds=5.0)
        )

    def test_weighted_spreads_and_first_healthy_funnels(self):
        weighted = self.engine(WEIGHTED).run()
        funneled = self.engine(FIRST_HEALTHY).run()
        assert weighted.replica_load_cv < 0.4
        assert funneled.replica_load_cv > 1.5  # one replica serves, three idle
        served = [
            weighted.server_stats[sid]["served"]
            for sid in weighted.replica_groups["store-0.maps.example"]
        ]
        assert all(count > 0 for count in served)

    def test_balance_lands_in_snapshot(self):
        report = self.engine(WEIGHTED).run()
        snapshot = report.snapshot()
        assert snapshot["balance.replica_load_cv"] == report.replica_load_cv
        assert "balance.store-0.maps.example.util_cv" in snapshot


# ----------------------------------------------------------------------
# Commuter traces longer than the TTLs
# ----------------------------------------------------------------------
class TestCommuterTrace:
    STOPS = [ANCHOR, ANCHOR.destination(90.0, 500.0), ANCHOR.destination(0.0, 400.0)]

    def test_dwell_then_travel_loop(self):
        trace = CommuterTrace(list(self.STOPS), dwell_steps=2, step_meters=300.0)
        rng = random.Random(0)
        start = trace.reset(rng)
        assert trace.step(rng) == start  # dwelling
        assert trace.step(rng) == start
        moved = trace.step(rng)
        assert moved.distance_to(start) > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CommuterTrace([ANCHOR])
        with pytest.raises(ValueError):
            CommuterTrace(list(self.STOPS), dwell_steps=-1)

    def test_journey_outlives_registration_ttl(self):
        """A commuter's circuit spans multiple TTLs: caches lapse mid-journey
        and the device keeps getting service through re-discovery."""
        config = FederationConfig(
            registration_ttl_seconds=90.0,
            device_discovery_cache_ttl_seconds=90.0,
            retry_policy=RetryPolicy.exponential(),
        )
        scenario = build_scenario(
            store_count=2, city_rows=4, city_cols=4, config=config, seed=21,
            reuse_worlds=True,
        )
        engine = WorkloadEngine(
            scenario,
            WorkloadConfig(
                clients=6, steps=12, seed=3, step_seconds=30.0,
                long_traces=True, trace_dwell_steps=2,
            ),
        )
        assert any(
            isinstance(device.mobility, CommuterTrace) for device in engine.fleet
        )
        report = engine.run()
        # The run spans 12 x 30s = 360s of simulated time: several 90s device
        # cache lifetimes and multiple 90s record TTLs.
        assert report.simulated_seconds > 3 * config.registration_ttl_seconds
        assert report.requests > 0
        assert report.failed_requests == 0
        # Device caches lapsed and were refilled: misses keep accruing after
        # the warm-up round, so the hit rate stays strictly below a
        # never-expiring cache's.
        assert 0.0 < report.discovery_cache_hit_rate < 0.95

    def test_long_trace_run_is_deterministic(self):
        def one_run():
            config = FederationConfig(device_discovery_cache_ttl_seconds=30.0)
            scenario = build_scenario(
                store_count=2, city_rows=4, city_cols=4, config=config, seed=21,
                reuse_worlds=True,
            )
            engine = WorkloadEngine(
                scenario,
                WorkloadConfig(clients=5, steps=6, seed=8, step_seconds=30.0, long_traces=True),
            )
            return engine.run().snapshot()

        assert one_run() == one_run()
