"""Tests for the workload engine: traffic, mobility and determinism."""

from __future__ import annotations

import random

import pytest

from repro.core.config import FederationConfig
from repro.geometry.bbox import BoundingBox
from repro.simulation.network import LatencyModel
from repro.workload import (
    AisleWalk,
    CommuterHandoff,
    RandomWaypoint,
    RequestKind,
    RequestMix,
    WorkloadConfig,
    WorkloadEngine,
    ZipfSampler,
    zipf_weights,
)
from repro.worldgen.scenario import build_scenario


def _workload_scenario(cached: bool, seed: int = 21):
    config = FederationConfig(
        device_discovery_cache_ttl_seconds=120.0 if cached else 0.0,
        client_tile_cache_entries=128 if cached else 0,
    )
    return build_scenario(store_count=2, city_rows=4, city_cols=4, config=config, seed=seed)


class TestZipf:
    def test_weights_normalized_and_decreasing(self):
        weights = zipf_weights(10, exponent=1.0)
        assert sum(weights) == pytest.approx(1.0)
        assert weights == sorted(weights, reverse=True)
        assert weights[0] > weights[-1]

    def test_exponent_zero_is_uniform(self):
        weights = zipf_weights(4, exponent=0.0)
        assert all(weight == pytest.approx(0.25) for weight in weights)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(3, exponent=-1.0)
        with pytest.raises(ValueError):
            ZipfSampler([])

    def test_sampler_deterministic_and_skewed(self):
        sampler = ZipfSampler(list("abcdefgh"), exponent=1.2)
        first = [sampler.sample(random.Random(5)) for _ in range(1)]
        second = [sampler.sample(random.Random(5)) for _ in range(1)]
        assert first == second
        rng = random.Random(0)
        draws = [sampler.sample(rng) for _ in range(500)]
        assert draws.count("a") > draws.count("h")


class TestRequestMix:
    def test_sampling_covers_all_kinds(self):
        mix = RequestMix()
        rng = random.Random(3)
        kinds = {mix.sample(rng) for _ in range(300)}
        assert kinds == set(RequestKind)

    def test_zero_weight_kind_never_sampled(self):
        mix = RequestMix(search=1.0, route=0.0, tiles=0.0, localize=0.0)
        rng = random.Random(3)
        assert all(mix.sample(rng) == RequestKind.SEARCH for _ in range(50))

    def test_invalid_mixes(self):
        with pytest.raises(ValueError):
            RequestMix(search=-0.1)
        with pytest.raises(ValueError):
            RequestMix(search=0.0, route=0.0, tiles=0.0, localize=0.0)


class TestMobility:
    BOUNDS = BoundingBox(40.40, -80.00, 40.46, -79.92)

    def test_random_waypoint_stays_in_bounds(self):
        model = RandomWaypoint(self.BOUNDS, step_meters=200.0)
        rng = random.Random(8)
        position = model.reset(rng)
        roomy = self.BOUNDS.expanded(10.0)
        for _ in range(100):
            position = model.step(rng)
            assert roomy.contains(position)

    def test_random_waypoint_deterministic(self):
        first = RandomWaypoint(self.BOUNDS)
        second = RandomWaypoint(self.BOUNDS)
        rng_a, rng_b = random.Random(4), random.Random(4)
        first.reset(rng_a)
        second.reset(rng_b)
        for _ in range(30):
            assert first.step(rng_a) == second.step(rng_b)

    def test_aisle_walk_stays_near_store(self, store):
        model = AisleWalk(store)
        rng = random.Random(2)
        position = model.reset(rng)
        assert position == store.entrance
        footprint = store.map_data.bounding_box().expanded(10.0)
        for _ in range(60):
            assert footprint.contains(model.step(rng))

    def test_commuter_walks_between_stops_and_returns(self):
        start = self.BOUNDS.south_west
        end = start.destination(45.0, 400.0)
        model = CommuterHandoff([start, end], step_meters=90.0)
        rng = random.Random(1)
        model.reset(rng)
        visited_far = visited_home = False
        for _ in range(30):
            position = model.step(rng)
            if position.distance_to(end) < 1.0:
                visited_far = True
            if visited_far and position.distance_to(start) < 1.0:
                visited_home = True
        assert visited_far and visited_home

    def test_commuter_requires_two_stops(self):
        with pytest.raises(ValueError):
            CommuterHandoff([self.BOUNDS.south_west])


class TestWorkloadEngine:
    @pytest.fixture(scope="class")
    def cached_report(self):
        scenario = _workload_scenario(cached=True)
        engine = WorkloadEngine(scenario, WorkloadConfig(clients=9, steps=4, seed=3))
        return engine.run()

    def test_fixed_seed_gives_identical_snapshots(self):
        snapshots = []
        for _ in range(2):
            scenario = _workload_scenario(cached=True)
            engine = WorkloadEngine(scenario, WorkloadConfig(clients=6, steps=3, seed=11))
            snapshots.append(engine.run().snapshot())
        assert snapshots[0] == snapshots[1]

    def test_all_requests_recorded(self, cached_report):
        skipped = sum(
            counter.value
            for name, counter in cached_report.metrics.counters.items()
            if name.startswith("skipped.")
        )
        assert cached_report.requests + skipped + cached_report.errors == 9 * 4
        assert cached_report.requests > 0
        latency = cached_report.metrics.histogram("latency_ms.all")
        assert latency.count == cached_report.requests
        per_kind = sum(
            cached_report.metrics.histogram(f"latency_ms.{kind.value}").count
            for kind in RequestKind
        )
        assert per_kind == cached_report.requests

    def test_no_zero_latency_route_observations(self, cached_report):
        """Regression: skipped no-op routes must not dilute the tail percentiles."""
        route_latency = cached_report.metrics.histograms.get("latency_ms.route")
        if route_latency is not None and route_latency.count:
            lengths = cached_report.metrics.histogram("route.length_meters")
            assert all(length >= 1.0 for length in lengths.values)

    def test_latency_percentiles_does_not_mutate_snapshot(self, cached_report):
        """Regression: querying an unseen service must not grow the registry."""
        before = cached_report.snapshot()
        cached_report.latency_percentiles("never-issued-service")
        assert cached_report.snapshot() == before
        assert cached_report.latency_percentiles("never-issued-service") == {
            "p50": 0.0,
            "p95": 0.0,
            "p99": 0.0,
        }

    def test_tail_percentiles_ordered(self, cached_report):
        tail = cached_report.latency_percentiles()
        assert 0.0 < tail["p50"] <= tail["p95"] <= tail["p99"]

    def test_cached_fleet_beats_uncached_hit_rate(self, cached_report):
        scenario = _workload_scenario(cached=False)
        engine = WorkloadEngine(scenario, WorkloadConfig(clients=9, steps=4, seed=3))
        uncached = engine.run()
        assert uncached.discovery_cache_hit_rate == 0.0
        assert cached_report.discovery_cache_hit_rate > uncached.discovery_cache_hit_rate
        assert cached_report.tile_cache_hit_rate > 0.0

    def test_simulated_time_advances_with_pacing(self, cached_report):
        assert cached_report.simulated_seconds >= 4 * 2.0  # steps * step_seconds

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            WorkloadConfig(clients=0)
        with pytest.raises(ValueError):
            WorkloadConfig(steps=0)
        with pytest.raises(ValueError):
            WorkloadConfig(step_seconds=-1.0)
        with pytest.raises(ValueError):
            WorkloadConfig(resolver_pools=0)


class TestResolverPools:
    def test_fleet_shards_across_pools_and_reports_hit_rates(self):
        scenario = _workload_scenario(cached=False)
        engine = WorkloadEngine(
            scenario, WorkloadConfig(clients=8, steps=3, seed=5, resolver_pools=3)
        )
        report = engine.run()
        assert len(report.dns_pool_hit_rates) == 3
        # Every pool served some fraction of the fleet, so each has traffic.
        pools = scenario.federation.resolver_pool(3)
        assert all(
            pool.recursive.cache.stats.hits + pool.recursive.cache.stats.misses > 0
            for pool in pools
        )
        # The aggregate rate is a weighted combination, bounded by the pools.
        assert min(report.dns_pool_hit_rates) <= report.dns_cache_hit_rate
        assert report.dns_cache_hit_rate <= max(report.dns_pool_hit_rates)
        # Per-pool rates land in the deterministic snapshot.
        snapshot = report.snapshot()
        assert "dns_pool.0.hit_rate" in snapshot
        assert "dns_pool.2.hit_rate" in snapshot

    def test_single_pool_matches_default_resolver(self):
        scenario = _workload_scenario(cached=False)
        engine = WorkloadEngine(scenario, WorkloadConfig(clients=4, steps=2, seed=5))
        report = engine.run()
        assert report.dns_pool_hit_rates == (
            scenario.federation.resolver.cache.stats.hit_rate,
        )

    def test_sharded_pools_warm_slower_than_one_shared_pool(self):
        """More pools = colder caches: aggregate hit rate cannot improve."""
        def run(pools: int) -> float:
            scenario = _workload_scenario(cached=False)
            engine = WorkloadEngine(
                scenario, WorkloadConfig(clients=8, steps=3, seed=5, resolver_pools=pools)
            )
            return engine.run().dns_cache_hit_rate

        assert run(4) <= run(1)


class TestJitteredFleet:
    def test_jittered_run_is_deterministic_and_differs_from_fixed(self):
        def run(sigma: float) -> dict[str, float]:
            config = FederationConfig(latency=LatencyModel(jitter_sigma=sigma))
            scenario = build_scenario(store_count=2, city_rows=4, city_cols=4, config=config, seed=21)
            engine = WorkloadEngine(scenario, WorkloadConfig(clients=6, steps=3, seed=11))
            return engine.run().snapshot()

        jittered = run(0.4)
        assert jittered == run(0.4)  # same seed, same draws
        fixed = run(0.0)
        assert jittered["latency_ms.all.p99"] != fixed["latency_ms.all.p99"]
